"""Drive the SeeSaw service layer the way the browser UI would.

The paper's deployment puts a server (the "query aligner") between the UI and
the index (Figure 3).  This example exercises that layer: register datasets,
start a session, page through result batches, and send box feedback, all
through the request/response API.

Run with:  python examples/service_demo.py
"""

from __future__ import annotations

from repro.config import SeeSawConfig
from repro.data import load_dataset
from repro.embedding import SyntheticClip
from repro.server import BoxPayload, FeedbackRequest, SeeSawService, StartSessionRequest


def main() -> None:
    service = SeeSawService(SeeSawConfig())
    for name in ("objectnet", "bdd"):
        dataset = load_dataset(name, seed=1, size_scale=0.12)
        embedding = SyntheticClip.for_dataset(dataset, dim=128, seed=1)
        service.register_dataset(dataset, embedding, preprocess=False)
    print(f"registered datasets: {', '.join(service.dataset_names)}")

    info = service.start_session(
        StartSessionRequest(dataset="objectnet", text_query="a dustpan", batch_size=4)
    )
    print(f"started {info.session_id} for query '{info.text_query}'")

    dataset = load_dataset("objectnet", seed=1, size_scale=0.12)
    for round_number in range(1, 4):
        response = service.next_results(info.session_id)
        print(f"\nround {round_number}: {len(response.items)} results")
        for item in response.items:
            boxes = dataset.image(item.image_id).ground_truth_boxes("dustpan")
            relevant = bool(boxes)
            print(
                f"  image {item.image_id:4d} score={item.score:.3f} "
                f"-> {'relevant, sending box' if relevant else 'not relevant'}"
            )
            service.give_feedback(
                FeedbackRequest(
                    session_id=info.session_id,
                    image_id=item.image_id,
                    relevant=relevant,
                    boxes=[
                        BoxPayload(box.x, box.y, box.width, box.height) for box in boxes
                    ],
                )
            )
    summary = service.session_info(info.session_id)
    print(
        f"\nsession summary: {summary.positives_found} relevant images found "
        f"in {summary.total_shown} shown over {summary.rounds} feedback rounds"
    )


if __name__ == "__main__":
    main()
