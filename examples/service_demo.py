"""Drive the real SeeSaw HTTP service end-to-end, the way Figure 3 deploys it.

The script demonstrates all three layers of the service subsystem:

1. **Cold start (process 1, this one):** register two datasets with an
   on-disk index cache — every index is built once and persisted.
2. **Warm start (process 2):** re-exec this script in ``--serve`` mode with
   the same cache directory.  The child process loads every index from disk
   (zero re-embedding, verified via the cache-hit counters in ``/healthz``)
   and exposes the JSON API on an ephemeral port.
3. **Concurrent traffic:** 8 client threads each run a full interactive
   session (start → next → feedback → next) against the child server through
   the typed `/v1` :class:`HTTPClient` — capability discovery up front,
   chunked NDJSON streaming for the first batch, idempotency keys on every
   feedback call (each one is retried once to prove replays are free), and
   a legacy :class:`ServiceClient` round at the end showing the unversioned
   routes still serve pre-`/v1` callers unchanged.

Run with:  python examples/service_demo.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.config import SeeSawConfig
from repro.data import load_dataset
from repro.embedding import SyntheticClip
from repro.server import (
    BoxPayload,
    FeedbackRequest,
    HTTPClient,
    SeeSawApp,
    SeeSawService,
    ServiceClient,
    SessionManager,
    StartSessionRequest,
    serve_in_background,
)

DATASETS = ("objectnet", "bdd")
QUERIES = ("a dustpan", "a wheelchair")
SIZE_SCALE = 0.1
SEED = 1
CONCURRENT_SESSIONS = 8
ROUNDS_PER_SESSION = 2


def build_service(cache_dir: str) -> SeeSawService:
    """Register every demo dataset, building or cache-loading its index.

    The demo serves the full scaled topology: each index's store is
    partitioned into two image-aligned shards and concurrent ``/next``
    requests coalesce into fused batch-engine cohorts within a 2 ms window —
    the 8 concurrent sessions below actually exercise both paths.
    """
    service = SeeSawService(
        SeeSawConfig(index_cache_dir=cache_dir, n_shards=2, batch_window_ms=2.0)
    )
    for name in DATASETS:
        dataset = load_dataset(name, seed=SEED, size_scale=SIZE_SCALE)
        embedding = SyntheticClip.for_dataset(dataset, dim=128, seed=SEED)
        service.register_dataset(dataset, embedding, preprocess=True)
    return service


def serve(cache_dir: str, ready_file: str) -> None:
    """Child-process entry: warm-start the service and publish the port."""
    start = time.perf_counter()
    service = build_service(cache_dir)
    startup_seconds = time.perf_counter() - start
    app = SeeSawApp(SessionManager(service))
    with serve_in_background(app) as server:
        # Write-then-rename so the polling parent never reads a partial file.
        staging = Path(ready_file + ".tmp")
        staging.write_text(
            json.dumps(
                {
                    "url": server.url,
                    "startup_seconds": startup_seconds,
                    "cache_hits": service.cache_hits,
                    "cache_misses": service.cache_misses,
                }
            ),
            encoding="utf-8",
        )
        staging.replace(ready_file)
        # Serve until the parent kills us.
        while True:
            time.sleep(0.5)


def run_one_session(base_url: str, worker: int) -> "tuple[str, int, int]":
    """One simulated user driving the `/v1` protocol end to end.

    Round 1 renders incrementally off the chunked NDJSON stream; later
    rounds use the single-shot path.  Every feedback call carries an
    idempotency key and is sent twice — the replay returns the recorded
    result without double-applying, which is what makes client-side retry
    loops safe against timeouts.
    """
    client = HTTPClient(base_url, client_id=f"demo-worker-{worker}")
    dataset_name = DATASETS[worker % len(DATASETS)]
    query = QUERIES[worker % len(QUERIES)]
    dataset = load_dataset(dataset_name, seed=SEED, size_scale=SIZE_SCALE)
    category = query.split()[-1]
    info = client.start_session(
        StartSessionRequest(dataset=dataset_name, text_query=query, batch_size=3)
    )
    for round_index in range(ROUNDS_PER_SESSION):
        if round_index == 0:
            items = list(client.stream_next_results(info.session_id))
        else:
            items = list(client.next_results(info.session_id).items)
        for item in items:
            boxes = dataset.image(item.image_id).ground_truth_boxes(category)
            feedback = FeedbackRequest(
                session_id=info.session_id,
                image_id=item.image_id,
                relevant=bool(boxes),
                boxes=[
                    BoxPayload(box.x, box.y, box.width, box.height)
                    for box in boxes
                ],
            )
            key = f"{info.session_id}-r{round_index}-i{item.image_id}"
            first = client.give_feedback(feedback, idempotency_key=key)
            replay = client.give_feedback(feedback, idempotency_key=key)
            assert replay == first, "idempotent replay must not re-apply"
    summary = client.session_info(info.session_id)
    client.close_session(info.session_id)
    return summary.session_id, summary.total_shown, summary.positives_found


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="seesaw-cache-") as cache_dir:
        # ------------------------------------------------------------------
        # 1. Cold start: build every index once and persist it.
        # ------------------------------------------------------------------
        start = time.perf_counter()
        service = build_service(cache_dir)
        cold_seconds = time.perf_counter() - start
        print(
            f"[cold ] process 1 built {service.cache_misses} indexes "
            f"in {cold_seconds:.2f}s and persisted them to {cache_dir}"
        )
        assert service.cache_misses == len(DATASETS), "cold start should build"

        # ------------------------------------------------------------------
        # 2. Warm start: a *second process* serves from the on-disk cache.
        # ------------------------------------------------------------------
        ready_file = str(Path(cache_dir) / "server-ready.json")
        child = subprocess.Popen(
            [sys.executable, __file__, "--serve", cache_dir, ready_file]
        )
        try:
            deadline = time.monotonic() + 60.0
            while not Path(ready_file).exists():
                if child.poll() is not None:
                    raise RuntimeError("server process exited before becoming ready")
                if time.monotonic() > deadline:
                    raise RuntimeError("server process did not become ready in time")
                time.sleep(0.05)
            ready = json.loads(Path(ready_file).read_text(encoding="utf-8"))
            if ready["cache_misses"] != 0 or ready["cache_hits"] != len(DATASETS):
                raise RuntimeError(
                    f"warm start re-built indexes: {ready}"
                )
            print(
                f"[warm ] process 2 loaded {ready['cache_hits']} indexes from disk "
                f"in {ready['startup_seconds']:.3f}s "
                f"({cold_seconds / max(ready['startup_seconds'], 1e-9):.0f}x faster, "
                f"no re-embedding) and listens on {ready['url']}"
            )

            # --------------------------------------------------------------
            # 3. Concurrent traffic: 8 sessions in parallel over /v1.
            # --------------------------------------------------------------
            client = HTTPClient(ready["url"], client_id="demo-main")
            capabilities = client.capabilities()
            print(
                f"[v1   ] protocol {capabilities['protocol']['version']} "
                f"rev {capabilities['protocol']['revision']}, features on: "
                + ", ".join(
                    sorted(
                        name
                        for name, enabled in capabilities["features"].items()
                        if enabled
                    )
                )
            )
            print(f"[v1   ] healthz: {client.healthz()}")
            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=CONCURRENT_SESSIONS) as pool:
                outcomes = list(
                    pool.map(
                        lambda worker: run_one_session(ready["url"], worker),
                        range(CONCURRENT_SESSIONS),
                    )
                )
            elapsed = time.perf_counter() - start
            for session_id, shown, positives in outcomes:
                print(
                    f"[v1   ]   {session_id}: {positives} relevant "
                    f"of {shown} shown"
                )
            print(
                f"[v1   ] {len(outcomes)} concurrent sessions completed "
                f"without error in {elapsed:.2f}s "
                f"(streamed first rounds, idempotent feedback replays)"
            )

            # --------------------------------------------------------------
            # 4. Back-compat: the pre-/v1 client drives the same server and
            #    the same session space, unchanged.
            # --------------------------------------------------------------
            legacy = ServiceClient(ready["url"])
            legacy_info = legacy.start_session(
                StartSessionRequest(
                    dataset=DATASETS[0], text_query=QUERIES[0], batch_size=2
                )
            )
            listed = [
                entry.info.session_id for entry in client.iter_sessions(page_size=4)
            ]
            assert legacy_info.session_id in listed, "legacy session not listed in /v1"
            legacy.close_session(legacy_info.session_id)
            print(
                "[compat] legacy unversioned routes still served; their "
                "sessions appear in GET /v1/sessions"
            )
        finally:
            child.terminate()
            child.wait(timeout=10.0)


if __name__ == "__main__":
    if len(sys.argv) == 4 and sys.argv[1] == "--serve":
        serve(sys.argv[2], sys.argv[3])
    else:
        main()
