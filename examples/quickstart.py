"""Quickstart: index a dataset, start a search, and give SeeSaw box feedback.

Run with:  python examples/quickstart.py

The script builds a small BDD-like synthetic dataset, preprocesses it into a
SeeSaw index (multiscale patch embeddings + vector store + kNN graph + the
DB-alignment matrix), and then runs the interactive loop of the paper's
Listing 1 for the query "a dog", using the dataset's ground-truth
boxes to play the role of the user.

Preprocessing here runs from scratch each time; to persist it across runs,
set ``SeeSawConfig(index_cache_dir="...")`` (or pass ``cache_dir=`` to
``SeeSawService.register_dataset``) and the built index is cached on disk
keyed by dataset/embedding/config content — see ``examples/service_demo.py``.
"""

from __future__ import annotations

from repro.config import SeeSawConfig
from repro.core import SearchSession, SeeSawIndex, SeeSawSearchMethod
from repro.data import load_dataset
from repro.embedding import SyntheticClip


def main() -> None:
    # 1. Load (generate) a dataset and its embedding model.  With real data
    #    you would swap SyntheticClip for a CLIP wrapper; everything else in
    #    the library only sees unit vectors.
    dataset = load_dataset("bdd", seed=0, size_scale=0.2)
    embedding = SyntheticClip.for_dataset(dataset, dim=128, seed=0)
    print(f"dataset: {dataset.name} with {len(dataset)} images, "
          f"{len(dataset.categories)} categories")

    # 2. One-time preprocessing (§2.4): multiscale patch embedding, vector
    #    store, kNN graph, DB-alignment matrix.
    config = SeeSawConfig()
    index = SeeSawIndex.build(dataset, embedding, config)
    report = index.build_report
    print(f"index: {report.vector_count} vectors "
          f"({report.vectors_per_image:.1f} per image), "
          f"built in {report.embedding_seconds + report.graph_seconds:.2f}s")

    # 3. Interactive search (Listing 1).  The "user" here is the dataset's
    #    ground truth: relevant images get their annotation boxes as feedback.
    category = "dog"
    session = SearchSession(
        index=index,
        method=SeeSawSearchMethod(config),
        text_query=dataset.category(category).prompt,
        batch_size=3,
    )
    found = 0
    while len(session.history) < 30 and found < 5:
        batch = session.next_batch()
        if not batch:
            break
        for result in batch:
            image = dataset.image(result.image_id)
            boxes = image.ground_truth_boxes(category)
            relevant = bool(boxes)
            found += int(relevant)
            marker = "+" if relevant else " "
            print(f"  [{marker}] image {result.image_id:4d}  score={result.score:.3f}")
            session.give_feedback(result.image_id, relevant, boxes)

    print(f"found {found} relevant images after inspecting {len(session.history)} images")
    print(f"mean system latency per round: {session.stats.seconds_per_round * 1000:.1f} ms")


if __name__ == "__main__":
    main()
