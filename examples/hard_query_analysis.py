"""Analyse where zero-shot CLIP struggles and how much feedback methods help.

The script reproduces, on a small scale, the analysis behind Figures 1 and 5
and Table 3: it measures zero-shot AP for every category of a dataset,
identifies the hard subset (AP < .5), and compares Rocchio and SeeSaw on it.

Run with:  python examples/hard_query_analysis.py [dataset]
where dataset is one of coco, lvis, objectnet, bdd (default: objectnet).
"""

from __future__ import annotations

import sys

from repro.baselines import RocchioMethod, ZeroShotClipMethod
from repro.bench import BenchmarkSettings, build_bundle
from repro.bench.reporting import format_table
from repro.bench.runner import run_query_set
from repro.bench.suite import ExperimentScale
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.metrics import hard_subset, mean_average_precision


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "objectnet"
    scale = ExperimentScale(size_scale=0.25, max_queries_per_dataset=15)
    bundle = build_bundle(dataset_name, scale)
    queries = bundle.queries(scale)
    settings = BenchmarkSettings()
    print(f"dataset: {dataset_name}  queries: {len(queries)}")

    index = bundle.multiscale_index
    zero = run_query_set(bundle.coarse_index, ZeroShotClipMethod, queries, settings)
    rocchio = run_query_set(index, RocchioMethod, queries, settings)
    seesaw = run_query_set(
        index, lambda: SeeSawSearchMethod(bundle.config), queries, settings
    )

    zero_ap = {key: outcome.average_precision for key, outcome in zero.items()}
    hard = hard_subset(zero_ap)
    print(f"hard queries (zero-shot AP < .5): {len(hard)} of {len(queries)}\n")

    rows = []
    for key in sorted(zero_ap, key=zero_ap.get):
        rows.append(
            [
                key.split("/", 1)[1],
                "hard" if key in hard else "easy",
                zero[key].average_precision,
                rocchio[key].average_precision,
                seesaw[key].average_precision,
            ]
        )
    print(format_table(["query", "subset", "zero-shot", "rocchio", "seesaw"], rows))

    for name, outcomes in [("zero-shot", zero), ("rocchio", rocchio), ("seesaw", seesaw)]:
        hard_map = mean_average_precision(
            [outcomes[key].average_precision for key in hard]
        )
        all_map = mean_average_precision(
            [outcome.average_precision for outcome in outcomes.values()]
        )
        print(f"{name:>10s}:  mAP all = {all_map:.2f}   mAP hard = {hard_map:.2f}")


if __name__ == "__main__":
    main()
