"""Build a training set for a rare-object detector with SeeSaw.

This is the scenario from the paper's introduction: an engineer at an
autonomous-vehicle company wants examples of a rare
class (here: dogs on the road) to extend an object detector.  The script compares how many labelled examples per
inspected image a zero-shot CLIP search collects versus SeeSaw with box
feedback, and then exports the collected crops as a training-set manifest.

Run with:  python examples/detector_training_set.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.baselines import ZeroShotClipMethod
from repro.config import SeeSawConfig
from repro.core import SearchSession, SeeSawIndex, SeeSawSearchMethod
from repro.core.interfaces import SearchMethod
from repro.data import load_dataset
from repro.embedding import SyntheticClip

TARGET_EXAMPLES = 8
INSPECTION_BUDGET = 60
CATEGORY = "dog"


def collect_examples(index: SeeSawIndex, method: SearchMethod, label: str) -> list[dict]:
    """Run one search session and collect the ground-truth boxes it surfaces."""
    dataset = index.dataset
    session = SearchSession(
        index=index,
        method=method,
        text_query=dataset.category(CATEGORY).prompt,
        batch_size=1,
    )
    collected: list[dict] = []
    while len(session.history) < INSPECTION_BUDGET and len(collected) < TARGET_EXAMPLES:
        batch = session.next_batch()
        if not batch:
            break
        result = batch[0]
        image = dataset.image(result.image_id)
        boxes = image.ground_truth_boxes(CATEGORY)
        session.give_feedback(result.image_id, bool(boxes), boxes)
        for box in boxes:
            collected.append(
                {
                    "image_id": result.image_id,
                    "category": CATEGORY,
                    "x": box.x,
                    "y": box.y,
                    "width": box.width,
                    "height": box.height,
                }
            )
    print(
        f"{label:>10s}: {len(collected)} labelled boxes "
        f"from {len(session.history)} inspected images"
    )
    return collected


def main() -> None:
    dataset = load_dataset("bdd", seed=3, size_scale=0.3)
    embedding = SyntheticClip.for_dataset(dataset, dim=128, seed=3)
    config = SeeSawConfig()
    index = SeeSawIndex.build(dataset, embedding, config)
    print(f"indexed {len(dataset)} driving scenes "
          f"({dataset.positive_count(CATEGORY)} contain a {CATEGORY})\n")

    collect_examples(index, ZeroShotClipMethod(), "zero-shot")
    crops = collect_examples(index, SeeSawSearchMethod(config), "seesaw")

    manifest = Path("dog_training_set.json")
    manifest.write_text(json.dumps(crops, indent=2), encoding="utf-8")
    print(f"\nwrote {len(crops)} crops to {manifest}")


if __name__ == "__main__":
    main()
