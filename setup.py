"""Setuptools shim so the package installs in environments without PEP 517 tooling."""

from setuptools import setup

setup()
