"""Figure 4: ideal (best-fit) query vector AP vs the initial text query AP."""

from repro.bench.experiments import figure4_ideal_vs_initial


def test_figure4_ideal_vs_initial(benchmark, bundles, scale, save_report):
    result = benchmark.pedantic(
        lambda: figure4_ideal_vs_initial(bundles["objectnet"], scale), rounds=1, iterations=1
    )
    save_report("figure4_ideal_vs_initial", result.format_text())
    # Reproduction target: concept locality is high (ideal vectors are nearly
    # perfect) while the initial text queries lag far behind.
    assert result.median_ideal > 0.85
    assert result.median_ideal > result.median_initial + 0.1
