"""Table 7: SeeSaw accuracy under hyperparameter settings spanning an order of magnitude."""

import numpy as np

from repro.bench.experiments import DEFAULT_HYPERPARAMETER_GRID, table7_hyperparameters


def test_table7_hyperparameters(benchmark, bundles, scale, settings, save_report):
    result = benchmark.pedantic(
        lambda: table7_hyperparameters(
            bundles, scale, grid=DEFAULT_HYPERPARAMETER_GRID, settings=settings
        ),
        rounds=1,
        iterations=1,
    )
    save_report("table7_hyperparams", result.format_text())
    averages = []
    for setting in result.grid:
        per_dataset = result.results[setting]
        averages.append(float(np.mean(list(per_dataset.values()))))
    # Reproduction target: accuracy is stable (within a small band) while the
    # hyperparameters vary by an order of magnitude.
    assert max(averages) - min(averages) < 0.12
