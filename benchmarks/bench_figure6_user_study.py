"""Figure 6: simulated end-to-end time to find 10 examples, baseline vs SeeSaw."""

import numpy as np

from repro.bench.experiments import figure6_user_study
from repro.bench.suite import ExperimentScale, build_bundle


def test_figure6_user_study(benchmark, scale, save_report):
    # The time-to-complete comparison needs a dataset large enough that a
    # poorly-ranked query cannot simply exhaust every image within the six
    # minute budget, so this experiment builds its own BDD-like bundle at a
    # larger scale than the shared quick-run bundles.
    study_scale = ExperimentScale(
        size_scale=max(scale.size_scale, 0.5),
        max_queries_per_dataset=scale.max_queries_per_dataset,
        seed=scale.seed,
    )
    bundle = build_bundle("bdd", study_scale)
    result = benchmark.pedantic(
        lambda: figure6_user_study(bundle, users_per_system=5, seed=0),
        rounds=1,
        iterations=1,
    )
    save_report("figure6_user_study", result.format_text())
    by_system_difficulty: dict[tuple[str, str], list[float]] = {}
    completion: dict[tuple[str, str], list[float]] = {}
    for study in result.results:
        key = (study.system, study.query.difficulty)
        by_system_difficulty.setdefault(key, []).append(study.median_seconds)
        completion.setdefault(key, []).append(study.completion_rate)
    # Reproduction targets: on hard queries SeeSaw completes at least as often
    # as the CLIP-only baseline and is not substantially slower overall; on
    # easy queries both systems finish quickly, with the baseline slightly
    # faster because SeeSaw's box feedback costs extra seconds per image.
    assert np.mean(completion[("seesaw", "hard")]) >= np.mean(
        completion[("clip_only", "hard")]
    )
    hard_baseline = float(np.mean(by_system_difficulty[("clip_only", "hard")]))
    hard_seesaw = float(np.mean(by_system_difficulty[("seesaw", "hard")]))
    assert hard_seesaw <= hard_baseline + 60.0
    easy_baseline = float(np.mean(by_system_difficulty[("clip_only", "easy")]))
    easy_seesaw = float(np.mean(by_system_difficulty[("seesaw", "easy")]))
    assert easy_baseline < 200.0
    assert easy_seesaw < 250.0
