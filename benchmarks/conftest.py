"""Shared fixtures for the benchmark suite.

Each ``bench_*.py`` file regenerates one table or figure of the paper.  By
default the benchmarks run at a reduced scale (smaller synthetic datasets and
a subsample of queries) so the whole suite completes in a few minutes; set
``REPRO_FULL_BENCH=1`` to run at full paper scale.  Every benchmark writes its
paper-style text report to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.runner import BenchmarkSettings
from repro.bench.suite import ExperimentScale, build_bundles
from repro.server import SeeSawApp, SeeSawService, SessionManager, serve_in_background

RESULTS_DIR = Path(__file__).parent / "results"


def _bench_scale() -> ExperimentScale:
    if os.environ.get("REPRO_FULL_BENCH", "") not in ("", "0", "false", "False"):
        return ExperimentScale(size_scale=1.0, max_queries_per_dataset=10_000)
    return ExperimentScale(size_scale=0.15, max_queries_per_dataset=10)


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale used by every benchmark in this run."""
    return _bench_scale()


@pytest.fixture(scope="session")
def settings() -> BenchmarkSettings:
    """The paper's task cutoffs: find 10 relevant images within 60 shown."""
    return BenchmarkSettings()


@pytest.fixture(scope="session")
def bundles(scale: ExperimentScale):
    """Dataset bundles for all four evaluation datasets (built once)."""
    return build_bundles(scale)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """benchmarks/results/, created on first use (JSONL artifacts land here)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def traffic_server(bundles):
    """One live HTTP server over the cached bdd bundle, shared by every
    traffic scenario — the open-loop harness reuses the same synthetic
    dataset the table benchmarks already built instead of growing its own."""
    bundle = bundles["bdd"]
    service = SeeSawService(bundle.config)
    service.register_dataset(bundle.dataset, bundle.embedding, preprocess=True)
    with serve_in_background(SeeSawApp(SessionManager(service))) as server:
        yield server


@pytest.fixture(scope="session")
def traffic_queries(bundles, scale) -> "tuple[str, ...]":
    """The text-query pool traffic sessions draw from (the bdd prompts)."""
    return tuple(query.prompt for query in bundles["bdd"].queries(scale))


@pytest.fixture(scope="session")
def live_traffic_server(bundles):
    """A separate HTTP server with the mutable dataset tier enabled.

    The live-ingest scenario upserts into (and force-merges) its bdd
    dataset, so it gets its own service instead of mutating the read-only
    ``traffic_server`` the other scenarios share.
    """
    bundle = bundles["bdd"]
    service = SeeSawService(bundle.config.with_overrides(live_datasets=True))
    service.register_dataset(bundle.dataset, bundle.embedding, preprocess=True)
    with serve_in_background(SeeSawApp(SessionManager(service))) as server:
        yield server
    service.live.close()


@pytest.fixture(scope="session")
def traffic_categories(bundles) -> "tuple[str, ...]":
    """The bdd category catalog — the pool live-ingest upserts draw from."""
    return tuple(info.name for info in bundles["bdd"].dataset.categories)


@pytest.fixture(scope="session")
def save_report():
    """Write a benchmark's text report under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[report saved to {path}]")

    return _save
