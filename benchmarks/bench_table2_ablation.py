"""Table 2: ablation of SeeSaw's components (multiscale, few-shot, alignments)."""

import numpy as np

from repro.bench.experiments import table2_ablation


def _row_average(row: dict) -> float:
    return float(np.nanmean(list(row.values())))


def test_table2_ablation(benchmark, bundles, scale, settings, save_report):
    result = benchmark.pedantic(
        lambda: table2_ablation(bundles, scale, settings), rounds=1, iterations=1
    )
    save_report("table2_ablation", result.format_text())
    all_rows = result.all_queries
    hard_rows = result.hard_queries
    # Reproduction targets (shape, not absolute numbers):
    # the full system beats plain zero-shot CLIP on all queries and by a
    # larger margin on the hard subset.
    assert _row_average(all_rows["+DB align"]) > _row_average(all_rows["zero-shot CLIP"])
    assert _row_average(hard_rows["+DB align"]) > _row_average(hard_rows["zero-shot CLIP"]) + 0.05
    # Query alignment is the biggest single contributor over few-shot.
    assert _row_average(hard_rows["+Query align"]) >= _row_average(hard_rows["+few-shot CLIP"]) - 0.02
