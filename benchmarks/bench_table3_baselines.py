"""Table 3: SeeSaw vs zero-shot, few-shot, ENS, and Rocchio (no multiscale)."""

import numpy as np

from repro.bench.experiments import table3_baselines


def _row_average(row: dict) -> float:
    return float(np.nanmean(list(row.values())))


def test_table3_baselines(benchmark, bundles, scale, settings, save_report):
    result = benchmark.pedantic(
        lambda: table3_baselines(bundles, scale, settings), rounds=1, iterations=1
    )
    save_report("table3_baselines", result.format_text())
    all_rows = result.all_queries
    hard_rows = result.hard_queries
    # Reproduction targets: on the hard subset SeeSaw is the best method and
    # ENS does not beat zero-shot; on all queries SeeSaw does not regress.
    assert _row_average(hard_rows["this work"]) >= _row_average(hard_rows["Rocchio"]) - 0.03
    assert _row_average(hard_rows["this work"]) > _row_average(hard_rows["zero-shot CLIP"])
    assert _row_average(hard_rows["ENS"]) <= _row_average(hard_rows["this work"])
    assert _row_average(all_rows["this work"]) >= _row_average(all_rows["zero-shot CLIP"])
    assert _row_average(all_rows["ENS"]) <= _row_average(all_rows["zero-shot CLIP"]) + 0.02
