"""Table 5: per-image annotation time of the simulated users."""

from repro.bench.experiments import table5_annotation_time


def test_table5_annotation_time(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: table5_annotation_time(samples=2000, seed=0), rounds=1, iterations=1
    )
    save_report("table5_annotation_time", result.format_text())
    # Reproduction targets: marking takes longer than skipping, and SeeSaw's
    # box feedback adds roughly 1-2 extra seconds to marked images.
    assert result.baseline_mark[0] > result.baseline_skip[0]
    assert result.seesaw_mark[0] > result.baseline_mark[0] + 0.5
    assert result.seesaw_skip[0] > result.baseline_skip[0] - 0.5
