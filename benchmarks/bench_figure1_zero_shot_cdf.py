"""Figure 1: CDF of zero-shot CLIP AP per dataset, with the AP < .5 fraction."""

from repro.bench.experiments import figure1_zero_shot_cdf


def test_figure1_zero_shot_cdf(benchmark, bundles, scale, settings, save_report):
    result = benchmark.pedantic(
        lambda: figure1_zero_shot_cdf(bundles, scale, settings), rounds=1, iterations=1
    )
    save_report("figure1_zero_shot_cdf", result.format_text())
    # Reproduction target: a long left tail — some datasets have a sizeable
    # fraction of queries below AP .5 while COCO-like stays close to zero.
    fractions = {
        name: dist.fraction_below(0.5) for name, dist in result.distributions.items()
    }
    assert fractions["coco"] <= 0.25
    assert max(fractions.values()) >= 0.15
