"""Open-loop traffic scoreboard: steady, burst, and chaos over real HTTP.

These are the CI-gated rows of the scenario pack (the remaining shapes
run in the integration smoke suite).  Each run fires a Poisson arrival
schedule at a live socket server, writes its JSONL artifact under
``benchmarks/results/`` — the scoreboard the async-serving and
scatter-gather roadmap items will diff their tails against — and asserts
the scenario's tail gates: p99/p999 latency and the achieved/offered
throughput floor, never means.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.scenarios import TrafficScenario, get_scenario
from repro.bench.traffic import TrafficSummary, assert_tail_gates, run_and_report
from repro.server import HTTPClient


def _bench_scenario(name: str) -> TrafficScenario:
    scenario = get_scenario(name)
    if os.environ.get("REPRO_FULL_BENCH", "") not in ("", "0", "false", "False"):
        return scenario
    return scenario.scaled(duration_seconds=2.0, rate_rps=20.0, session_count=6)


def _format(summary: TrafficSummary) -> str:
    lines = [
        f"traffic scenario '{summary.scenario}' over {summary.transport}",
        f"  arrivals            {summary.arrivals} in {summary.duration_seconds:.2f}s "
        f"(offered {summary.offered_rps:.1f} rps)",
        f"  achieved            {summary.achieved_rps:.1f} rps "
        f"(ratio {summary.achieved_ratio:.2f})",
        f"  requests            {summary.requests} "
        f"({summary.ok_requests} ok / {summary.failed_requests} failed)",
        f"  latency (open-loop) p50 {summary.p50_ms:.1f}ms  "
        f"p99 {summary.p99_ms:.1f}ms  p999 {summary.p999_ms:.1f}ms  "
        f"max {summary.max_ms:.1f}ms",
        f"  error taxonomy      {dict(summary.error_taxonomy) or '{}'}",
    ]
    return "\n".join(lines)


@pytest.mark.parametrize("name", ["steady", "burst"])
def test_traffic_scenario_gates(
    benchmark, name, traffic_server, traffic_queries, results_dir, save_report
):
    scenario = _bench_scenario(name)
    client = HTTPClient(traffic_server.url, client_id=f"bench-traffic-{name}")
    summary = benchmark.pedantic(
        lambda: run_and_report(
            client,
            scenario,
            dataset="bdd",
            queries=traffic_queries,
            results_dir=results_dir,
            transport="http",
        ),
        rounds=1,
        iterations=1,
    )
    save_report(f"traffic_{name}", _format(summary))
    # The taxonomy must be exactly what the scenario declares (for these
    # two shapes: empty), and the tails must clear the scenario's gates.
    assert summary.unexpected_errors == 0, summary.error_taxonomy
    assert_tail_gates(summary, scenario.gates)


def test_traffic_live_ingest_gates(
    benchmark,
    live_traffic_server,
    traffic_categories,
    traffic_queries,
    results_dir,
    save_report,
):
    """Live-ingest row: queries racing upserts across forced merge swaps.

    A fifth of the arrivals upsert fresh images into the live delta
    segment while the rest keep querying, and two forced merges rebuild
    and atomically swap the sealed generation mid-run.  The gates assert
    the mutable tier's zero-downtime contract: the only tolerated error
    is the delta-cap 503 (typed backpressure when ingest outruns
    merging); a query failing mid-swap or a stale-generation crash is
    exactly what trips the unexpected-errors gate.
    """
    scenario = _bench_scenario("live_ingest")
    client = HTTPClient(live_traffic_server.url, client_id="bench-traffic-live")
    summary = benchmark.pedantic(
        lambda: run_and_report(
            client,
            scenario,
            dataset="bdd",
            queries=traffic_queries,
            results_dir=results_dir,
            transport="http",
            mutation_categories=traffic_categories,
        ),
        rounds=1,
        iterations=1,
    )
    save_report("traffic_live_ingest", _format(summary))
    assert summary.unexpected_errors == 0, summary.error_taxonomy
    assert_tail_gates(summary, scenario.gates)


def test_traffic_chaos_gates(
    benchmark, traffic_server, traffic_queries, results_dir, save_report
):
    """Fault-injection row: the chaos scenario against a live socket server.

    The scenario arms a deterministic ``FaultyClient`` over the workload
    client and opens a mid-run fault window (latency, typed errors,
    connection resets, truncated NDJSON streams, skewed deadlines).  The
    gates assert the resilience contract rather than raw speed: every
    failure must land in the scenario's declared taxonomy (typed errors
    only — no raw tracebacks), and traffic scheduled after the window
    closes must recover under the scenario's ``recovery_p99_ms`` gate.
    """
    scenario = _bench_scenario("chaos")
    client = HTTPClient(traffic_server.url, client_id="bench-traffic-chaos")
    summary = benchmark.pedantic(
        lambda: run_and_report(
            client,
            scenario,
            dataset="bdd",
            queries=traffic_queries,
            results_dir=results_dir,
            transport="http",
        ),
        rounds=1,
        iterations=1,
    )
    recovery = (
        f"{summary.recovery_p99_ms:.1f}ms"
        if summary.recovery_p99_ms is not None
        else "undefined"
    )
    save_report(
        "traffic_chaos",
        _format(summary) + f"\n  recovery p99        {recovery}",
    )
    assert summary.unexpected_errors == 0, summary.error_taxonomy
    assert_tail_gates(summary, scenario.gates)
