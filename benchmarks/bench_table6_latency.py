"""Table 6: per-iteration system latency vs database size for each method."""

from repro.bench.experiments import (
    table6_ann_recall_latency,
    table6_dtype_throughput,
    table6_engine_latency,
    table6_latency,
    table6_protocol_streaming,
    table6_service_latency,
    table6_sharded_latency,
    table6_telemetry_overhead,
)


def test_table6_latency(benchmark, bundles, scale, settings, save_report):
    result = benchmark.pedantic(
        lambda: table6_latency(bundles, scale, settings, queries_per_index=2),
        rounds=1,
        iterations=1,
    )
    save_report("table6_latency", result.format_text())
    # Reproduction targets: SeeSaw's per-round latency stays far below the
    # full label-propagation variant on the largest (multiscale) indexes.
    largest = result.rows[-1]
    assert largest["SeeSaw"] <= largest["prop."] * 1.5
    # Zero-shot CLIP (no model update) is the cheapest method everywhere.
    for row in result.rows:
        assert row["CLIP"] <= row["SeeSaw"] + 0.05


def test_table6_engine_vs_legacy(benchmark, bundles, save_report):
    """Engine rows: per-round latency of the columnar engine vs the legacy
    object path, on the exact and forest stores."""
    result = benchmark.pedantic(
        lambda: table6_engine_latency(bundles["bdd"]),
        rounds=1,
        iterations=1,
    )
    save_report("table6_engine_latency", result.format_text())
    by_store = {row["store"]: row for row in result.rows}
    assert set(by_store) == {"exact", "forest"}
    # The columnar rewrite must be a measurable win where the engine owns
    # the whole path (exact store: mask once, reduceat pool, argpartition —
    # a multi-x margin, safe to gate strictly).
    exact = by_store["exact"]
    assert exact["engine_ms"] < exact["legacy_ms"], (
        f"engine slower than legacy on exact store: "
        f"{exact['engine_ms']:.3f}ms vs {exact['legacy_ms']:.3f}ms"
    )
    # The forest row is dominated by shared candidate gathering, so the
    # engine's edge is small (~1.1x); allow scheduler noise in the gate.
    forest = by_store["forest"]
    assert forest["engine_ms"] < forest["legacy_ms"] * 1.15, (
        f"engine regressed vs legacy on forest store: "
        f"{forest['engine_ms']:.3f}ms vs {forest['legacy_ms']:.3f}ms"
    )


def test_table6_sharded_latency(benchmark, bundles, save_report):
    """Scaling rows: sharded bulk scoring and fused multi-session batching."""
    # min-of-5 repeats: these are sub-millisecond timing gates and CI
    # runners are noisy; the margins below are ~3x locally, so the repeats
    # plus headroom keep scheduler spikes from flaking the build.
    result = benchmark.pedantic(
        lambda: table6_sharded_latency(bundles["bdd"], repeats=5),
        rounds=1,
        iterations=1,
    )
    save_report("table6_sharded_latency", result.format_text())
    fused = result.fused_by_sessions()
    sequential = result.sequential_by_sessions()
    assert set(fused) == set(sequential) == {1, 4, 8, 16}
    # The acceptance gate: fused per-session latency must *improve* as
    # concurrency grows — the fixed per-round dispatch cost amortizes over
    # the cohort while each session still gets its own selection.
    assert fused[16] < fused[1], (
        f"fused per-session latency did not improve with concurrency: "
        f"Q=1 {fused[1]:.3f}ms vs Q=16 {fused[16]:.3f}ms"
    )
    # At high concurrency the fused path must not lose to Q sequential
    # rounds (same work minus the per-session kernel dispatches; generous
    # scheduler-noise headroom, the real margin is ~3x).
    assert fused[16] < sequential[16] * 1.25, (
        f"fused path regressed vs sequential at Q=16: "
        f"{fused[16]:.3f}ms vs {sequential[16]:.3f}ms"
    )


def test_table6_dtype_throughput(benchmark, bundles, save_report, tmp_path):
    """Storage & compute tier rows: float64 vs float32 vs int8+rerank
    scoring, and compressed vs mmap cold index loads."""
    result = benchmark.pedantic(
        lambda: table6_dtype_throughput(bundles["bdd"], cache_dir=str(tmp_path)),
        rounds=1,
        iterations=1,
    )
    save_report("table6_dtype_throughput", result.format_text())
    scoring = result.scoring_ms()
    assert set(scoring) == {"float64", "float32", "int8+rerank"}
    # The acceptance gate: halving the bytes per score must buy measurable
    # per-round latency (the real margin is ~2x; the headroom absorbs CI
    # scheduler noise without ever letting a regression to parity pass).
    assert scoring["float32"] < scoring["float64"] * 0.9, (
        f"float32 scoring did not beat float64: "
        f"{scoring['float32']:.3f}ms vs {scoring['float64']:.3f}ms"
    )
    loads = result.load_ms()
    # Second gate: mapping raw .npy artifacts must beat decompressing the
    # legacy npz on a cold service start (mmap reads pages straight through
    # the OS page cache while npz pays inflate + a private copy).
    assert loads["npy-mmap"] < loads["npz-compressed"], (
        f"mmap cold load did not beat compressed: "
        f"{loads['npy-mmap']:.3f}ms vs {loads['npz-compressed']:.3f}ms"
    )


def test_table6_ann_recall_latency(benchmark, save_report):
    """Graph-ANN tier rows: recall@k vs per-round latency as the ``ef`` beam
    widens, with the exact scan as both the recall oracle and the latency
    bar.  The corpus is a seeded clustered unit-sphere mixture (the
    image-embedding regime the tier targets); one graph build serves the
    whole sweep because ``ef`` is a search-time knob."""
    result = benchmark.pedantic(
        lambda: table6_ann_recall_latency(repeats=5),
        rounds=1,
        iterations=1,
    )
    save_report("table6_ann_recall_latency", result.format_text())
    # The acceptance gate, restated from the experiment's own assertion:
    # some swept ef must hold recall@k >= 0.95 *while* beating the exact
    # store's per-round latency — the tier must have a real operating point,
    # not a recall knob that only works at brute-force cost.
    passing = result.passing(min_recall=0.95)
    assert passing, "no ef with recall >= 0.95 under the exact-scan latency"
    best = passing[0]
    assert float(best["speedup_vs_exact"]) > 1.0
    # And the curve must be a curve: recall is monotone non-decreasing in ef
    # (a wider beam never loses candidates on a deterministic descent).
    recalls = [float(row["recall_at_k"]) for row in result.rows]
    assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:])), (
        f"recall not monotone in ef: {recalls}"
    )


def test_table6_protocol_streaming(benchmark, bundles, save_report):
    """Protocol rows: `/v1` next-batch delivery, chunked NDJSON streaming vs
    single-shot JSON, over real HTTP.  Item parity between the two delivery
    modes is asserted inside the experiment; the gates here are about wire
    behaviour, with generous headroom — these are millisecond-scale localhost
    timings and the win being measured (first paint before the full body
    lands) only grows with batch size and real network latency."""
    result = benchmark.pedantic(
        lambda: table6_protocol_streaming(bundles["bdd"], repeats=5),
        rounds=1,
        iterations=1,
    )
    save_report("table6_protocol_streaming", result.format_text())
    streaming = result.by_mode("ndjson")
    single = result.by_mode("json")
    assert set(streaming) == set(single) and streaming
    largest = max(streaming)
    # Streaming must deliver the first decodable item no later than (a
    # generous multiple of) the single-shot body — the whole point of the
    # NDJSON path is that first paint does not wait for the last byte.
    assert streaming[largest]["first_item_ms"] <= single[largest]["total_ms"] * 1.5, (
        f"streaming first item slower than the whole single-shot body: "
        f"{streaming[largest]['first_item_ms']:.3f}ms vs "
        f"{single[largest]['total_ms']:.3f}ms"
    )
    # And line framing must not make the full batch materially slower.
    assert streaming[largest]["total_ms"] <= single[largest]["total_ms"] * 2.0, (
        f"streaming total regressed vs single-shot: "
        f"{streaming[largest]['total_ms']:.3f}ms vs "
        f"{single[largest]['total_ms']:.3f}ms"
    )


def test_table6_telemetry_overhead(benchmark, bundles, save_report):
    """Observability row: per-round engine latency with tracing spans
    enabled vs disabled (interleaved min-of-repeats)."""
    result = benchmark.pedantic(
        lambda: table6_telemetry_overhead(bundles["bdd"], repeats=5),
        rounds=1,
        iterations=1,
    )
    save_report("table6_telemetry_overhead", result.format_text())
    # Enabled mode actually traced the hot path (score/pool/select spans).
    assert result.spans_recorded > 0
    # The acceptance gate: enabled telemetry costs < 5% per round.  These
    # are sub-millisecond timings, so a small absolute epsilon (50µs)
    # absorbs scheduler jitter that a pure ratio would amplify at this
    # scale without ever letting a real per-span regression through.
    assert result.enabled_ms <= result.disabled_ms * 1.05 + 0.05, (
        f"telemetry overhead above 5%: enabled {result.enabled_ms:.3f}ms vs "
        f"disabled {result.disabled_ms:.3f}ms ({result.overhead_pct:+.1f}%)"
    )


def test_table6_service_roundtrip(benchmark, bundles, save_report, tmp_path):
    """Service-layer row: HTTP start+next latency, warm vs cold index cache."""
    result = benchmark.pedantic(
        lambda: table6_service_latency(bundles["bdd"], str(tmp_path / "cache")),
        rounds=1,
        iterations=1,
    )
    save_report("table6_service_latency", result.format_text())
    cold, warm = result.rows
    # The warm phase must come entirely from the on-disk cache...
    assert cold["cache_hits"] == 0
    assert warm["cache_hits"] == 1
    # ...which makes its start-up dramatically cheaper than preprocessing.
    assert warm["startup_s"] < cold["startup_s"]
