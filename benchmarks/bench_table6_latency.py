"""Table 6: per-iteration system latency vs database size for each method."""

from repro.bench.experiments import table6_latency


def test_table6_latency(benchmark, bundles, scale, settings, save_report):
    result = benchmark.pedantic(
        lambda: table6_latency(bundles, scale, settings, queries_per_index=2),
        rounds=1,
        iterations=1,
    )
    save_report("table6_latency", result.format_text())
    # Reproduction targets: SeeSaw's per-round latency stays far below the
    # full label-propagation variant on the largest (multiscale) indexes.
    largest = result.rows[-1]
    assert largest["SeeSaw"] <= largest["prop."] * 1.5
    # Zero-shot CLIP (no model update) is the cheapest method everywhere.
    for row in result.rows:
        assert row["CLIP"] <= row["SeeSaw"] + 0.05
