"""Table 6: per-iteration system latency vs database size for each method."""

from repro.bench.experiments import (
    table6_engine_latency,
    table6_latency,
    table6_service_latency,
)


def test_table6_latency(benchmark, bundles, scale, settings, save_report):
    result = benchmark.pedantic(
        lambda: table6_latency(bundles, scale, settings, queries_per_index=2),
        rounds=1,
        iterations=1,
    )
    save_report("table6_latency", result.format_text())
    # Reproduction targets: SeeSaw's per-round latency stays far below the
    # full label-propagation variant on the largest (multiscale) indexes.
    largest = result.rows[-1]
    assert largest["SeeSaw"] <= largest["prop."] * 1.5
    # Zero-shot CLIP (no model update) is the cheapest method everywhere.
    for row in result.rows:
        assert row["CLIP"] <= row["SeeSaw"] + 0.05


def test_table6_engine_vs_legacy(benchmark, bundles, save_report):
    """Engine rows: per-round latency of the columnar engine vs the legacy
    object path, on the exact and forest stores."""
    result = benchmark.pedantic(
        lambda: table6_engine_latency(bundles["bdd"]),
        rounds=1,
        iterations=1,
    )
    save_report("table6_engine_latency", result.format_text())
    by_store = {row["store"]: row for row in result.rows}
    assert set(by_store) == {"exact", "forest"}
    # The columnar rewrite must be a measurable win where the engine owns
    # the whole path (exact store: mask once, reduceat pool, argpartition —
    # a multi-x margin, safe to gate strictly).
    exact = by_store["exact"]
    assert exact["engine_ms"] < exact["legacy_ms"], (
        f"engine slower than legacy on exact store: "
        f"{exact['engine_ms']:.3f}ms vs {exact['legacy_ms']:.3f}ms"
    )
    # The forest row is dominated by shared candidate gathering, so the
    # engine's edge is small (~1.1x); allow scheduler noise in the gate.
    forest = by_store["forest"]
    assert forest["engine_ms"] < forest["legacy_ms"] * 1.15, (
        f"engine regressed vs legacy on forest store: "
        f"{forest['engine_ms']:.3f}ms vs {forest['legacy_ms']:.3f}ms"
    )


def test_table6_service_roundtrip(benchmark, bundles, save_report, tmp_path):
    """Service-layer row: HTTP start+next latency, warm vs cold index cache."""
    result = benchmark.pedantic(
        lambda: table6_service_latency(bundles["bdd"], str(tmp_path / "cache")),
        rounds=1,
        iterations=1,
    )
    save_report("table6_service_latency", result.format_text())
    cold, warm = result.rows
    # The warm phase must come entirely from the on-disk cache...
    assert cold["cache_hits"] == 0
    assert warm["cache_hits"] == 1
    # ...which makes its start-up dramatically cheaper than preprocessing.
    assert warm["startup_s"] < cold["startup_s"]
