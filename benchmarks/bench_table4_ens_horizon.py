"""Table 4: ENS sensitivity to the reward horizon and to score calibration."""

from repro.bench.experiments import table4_ens_horizon


def test_table4_ens_horizon(benchmark, bundles, scale, settings, save_report):
    horizons = (1, 2, 10, 60)
    result = benchmark.pedantic(
        lambda: table4_ens_horizon(bundles, scale, horizons=horizons, settings=settings),
        rounds=1,
        iterations=1,
    )
    save_report("table4_ens_horizon", result.format_text())
    # Reproduction targets: calibrated priors never hurt, and long horizons
    # with raw (uncalibrated) priors are the weakest configuration.
    for horizon in horizons:
        assert result.calibrated[horizon] >= result.raw[horizon] - 0.05
    assert result.raw[60] <= result.raw[1] + 0.02
