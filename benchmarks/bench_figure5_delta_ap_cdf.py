"""Figure 5: CDF of the change in AP of SeeSaw over zero-shot CLIP."""

import numpy as np

from repro.bench.experiments import figure5_delta_ap
from repro.metrics import mean_average_precision


def test_figure5_delta_ap_cdf(benchmark, bundles, scale, settings, save_report):
    result = benchmark.pedantic(
        lambda: figure5_delta_ap(bundles, scale, settings), rounds=1, iterations=1
    )
    save_report("figure5_delta_ap_cdf", result.format_text())
    # Reproduction targets: most queries improve or stay the same, and the
    # average improvement on the hard subset is clearly positive.
    improvement_fractions = [result.improvement_fraction(name) for name in result.delta_all]
    assert float(np.mean(improvement_fractions)) >= 0.7
    hard_deltas = [
        delta for per_dataset in result.delta_hard.values() for delta in per_dataset.values()
    ]
    if hard_deltas:
        assert mean_average_precision(hard_deltas) > 0.0
