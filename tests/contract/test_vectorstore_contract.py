"""Cross-backend contract suite: every VectorStore obeys the same invariants.

One parametrized suite, run against the exact store, the random-projection
forest, the int8-quantized re-ranking store, the navigable-graph ANN store,
and the sharded wrapper around each — with the exact, quantized, and graph
backends additionally run in the float32 compute tier.  A new backend (or tier) earns the whole suite by
adding one line to ``BACKENDS`` — the invariants below are the interface
the query engine (and everything above it) is written against:

* ``search`` is exactly the hit-object adapter over ``search_arrays``;
* returned scores are true inner products of the returned vectors;
* results come back best-first with deterministic ordering;
* exclusions (mask or legacy id set) are honored absolutely;
* edge cases (k > n, everything excluded, bad k, bad dimensions) are
  handled identically everywhere;
* ``score_all`` / ``score_many`` agree with a manual scan.

Approximate backends may return *fewer or different* candidates than an
exact scan — the contract never asserts recall — but whatever they return
must satisfy every invariant above.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.geometry import BoundingBox
from repro.exceptions import VectorStoreError
from repro.vectorstore import (
    ExactVectorStore,
    GraphANNVectorStore,
    QuantizedVectorStore,
    RandomProjectionForest,
    ShardedVectorStore,
    VectorRecord,
)

DIM = 24


def _atol(store) -> float:
    """Score-comparison tolerance matched to the store's compute tier.

    float64 backends are held to the historical 1e-12; the float32 tier
    carries ~1e-7 relative rounding, checked against float64 references.
    """
    return 1e-5 if store.compute_dtype == np.float32 else 1e-12


def _corpus(seed: int = 11, image_count: int = 30):
    """A multiscale-shaped corpus: images contribute 1-4 patch vectors."""
    rng = np.random.default_rng(seed)
    records: "list[VectorRecord]" = []
    vector_id = 0
    for image_id in range(image_count):
        for patch in range(int(rng.integers(1, 5))):
            records.append(
                VectorRecord(
                    vector_id=vector_id,
                    image_id=image_id,
                    box=BoundingBox(0.0, 0.0, 32.0, 32.0),
                    scale_level=0 if patch == 0 else 1,
                )
            )
            vector_id += 1
    vectors = rng.standard_normal((vector_id, DIM))
    return vectors, records


BACKENDS = {
    "exact": lambda v, r: ExactVectorStore(v, r),
    "exact-f32": lambda v, r: ExactVectorStore(v, r, compute_dtype="float32"),
    "forest": lambda v, r: RandomProjectionForest(v, r, tree_count=4, leaf_size=8, seed=3),
    "quantized": lambda v, r: QuantizedVectorStore(v, r),
    "quantized-f32": lambda v, r: QuantizedVectorStore(v, r, compute_dtype="float32"),
    "sharded-exact": lambda v, r: ShardedVectorStore(v, r, n_shards=3),
    "sharded-exact-f32": lambda v, r: ShardedVectorStore(
        v, r, n_shards=3, compute_dtype="float32"
    ),
    "sharded-forest": lambda v, r: ShardedVectorStore.wrap(
        RandomProjectionForest(v, r, tree_count=4, leaf_size=8, seed=3), 2
    ),
    "sharded-quantized": lambda v, r: ShardedVectorStore.wrap(
        QuantizedVectorStore(v, r), 3
    ),
    "graph": lambda v, r: GraphANNVectorStore(v, r, graph_degree=8, ef=32, seed=3),
    "graph-f32": lambda v, r: GraphANNVectorStore(
        v, r, graph_degree=8, ef=32, seed=3, compute_dtype="float32"
    ),
    "sharded-graph": lambda v, r: ShardedVectorStore.wrap(
        GraphANNVectorStore(v, r, graph_degree=8, ef=32, seed=3), 3
    ),
}


@pytest.fixture(scope="module", params=sorted(BACKENDS))
def store(request):
    vectors, records = _corpus()
    return BACKENDS[request.param](vectors, records)


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(99)
    return rng.standard_normal((5, DIM))


class TestSearchContract:
    def test_search_is_the_adapter_over_search_arrays(self, store, queries):
        for query in queries:
            ids, scores = store.search_arrays(query, k=7)
            hits = store.search(query, k=7)
            assert [hit.vector_id for hit in hits] == ids.tolist()
            assert np.allclose([hit.score for hit in hits], scores)
            for hit in hits:
                assert hit.record is store.record(hit.vector_id)

    def test_scores_are_true_inner_products(self, store, queries):
        for query in queries:
            ids, scores = store.search_arrays(query, k=9)
            expected = np.asarray(store.vectors, dtype=np.float64)[ids] @ query
            assert np.allclose(scores, expected, rtol=0, atol=_atol(store))

    def test_results_sorted_best_first(self, store, queries):
        for query in queries:
            _, scores = store.search_arrays(query, k=12)
            assert np.all(np.diff(scores) <= 1e-15)

    def test_result_ids_unique_and_in_range(self, store, queries):
        for query in queries:
            ids, _ = store.search_arrays(query, k=15)
            assert np.unique(ids).size == ids.size
            assert ids.min() >= 0 and ids.max() < len(store)

    def test_search_is_deterministic(self, store, queries):
        for query in queries:
            first = store.search_arrays(query, k=10)
            second = store.search_arrays(query, k=10)
            assert np.array_equal(first[0], second[0])
            assert np.array_equal(first[1], second[1])


class TestExclusions:
    def test_exclusion_mask_honored(self, store, queries):
        rng = np.random.default_rng(5)
        for query in queries:
            mask = rng.random(len(store)) < 0.5
            ids, _ = store.search_arrays(query, k=len(store), exclude_mask=mask)
            assert not mask[ids].any()

    def test_legacy_id_set_agrees_with_mask(self, store, queries):
        excluded = set(range(0, len(store), 3))
        mask = np.zeros(len(store), dtype=bool)
        mask[list(excluded)] = True
        for query in queries:
            from_mask, _ = store.search_arrays(query, k=8, exclude_mask=mask)
            from_set = [hit.vector_id for hit in store.search(query, 8, excluded)]
            assert from_mask.tolist() == from_set

    def test_everything_excluded_returns_empty(self, store, queries):
        mask = np.ones(len(store), dtype=bool)
        ids, scores = store.search_arrays(queries[0], k=4, exclude_mask=mask)
        assert ids.size == 0 and scores.size == 0
        assert ids.dtype == np.int64

    def test_out_of_range_ids_in_legacy_set_are_dropped(self, store, queries):
        hits = store.search(queries[0], 3, {-5, len(store) + 100})
        assert len(hits) == 3


class TestEdgeCases:
    def test_k_larger_than_store_caps_at_store_size(self, store, queries):
        ids, _ = store.search_arrays(queries[0], k=len(store) + 50)
        assert ids.size <= len(store)

    def test_k_below_one_raises(self, store, queries):
        with pytest.raises(VectorStoreError, match="k must be >= 1"):
            store.search_arrays(queries[0], k=0)

    def test_dimension_mismatch_raises(self, store):
        with pytest.raises(VectorStoreError, match="dimension"):
            store.search_arrays(np.zeros(DIM + 1), k=1)
        with pytest.raises(VectorStoreError, match="dimension"):
            store.score_all(np.zeros(DIM - 1))

    def test_unknown_vector_id_raises(self, store):
        with pytest.raises(VectorStoreError, match="Unknown vector id"):
            store.record(len(store) + 1)
        with pytest.raises(VectorStoreError, match="Unknown vector id"):
            store.vector(-1)


class TestBulkScoring:
    def test_score_all_matches_manual_scan(self, store, queries):
        matrix = np.asarray(store.vectors, dtype=np.float64)
        for query in queries:
            assert np.allclose(
                store.score_all(query), matrix @ query, rtol=0, atol=_atol(store)
            )

    def test_score_many_rows_match_score_all(self, store, queries):
        batch = store.score_many(queries)
        assert batch.shape == (queries.shape[0], len(store))
        for row, query in enumerate(queries):
            assert np.allclose(
                batch[row], store.score_all(query), rtol=0, atol=_atol(store)
            )

    def test_score_many_rejects_bad_shapes(self, store):
        with pytest.raises(VectorStoreError, match="queries"):
            store.score_many(np.zeros((2, DIM + 1)))


class TestStructure:
    def test_records_aligned_with_row_index(self, store):
        for vector_id, record in enumerate(store.records):
            assert record.vector_id == vector_id

    def test_vectors_are_unit_norm_and_read_only(self, store):
        norms = np.linalg.norm(store.vectors, axis=1)
        assert np.allclose(norms, 1.0)
        with pytest.raises(ValueError):
            store.vectors[0, 0] = 1.0

    def test_compute_dtype_carried_by_every_score_array(self, store, queries):
        # The tier contract: scores leave the store in its compute dtype, so
        # the engine's pooling/selection kernels inherit the tier without
        # conversions.  Stored vectors live in the same dtype.
        dtype = store.compute_dtype
        assert dtype in (np.dtype(np.float64), np.dtype(np.float32))
        assert store.vectors.dtype == dtype
        assert store.score_all(queries[0]).dtype == dtype
        assert store.score_many(queries).dtype == dtype
        _, scores = store.search_arrays(queries[0], k=5)
        assert scores.dtype == dtype

    def test_exhaustive_flag_matches_backend_kind(self, store):
        # Exhaustive means the engine may full-scan via score_all; a sharded
        # store is exhaustive exactly when every shard is.
        if isinstance(store, ShardedVectorStore):
            expected = all(inner.exhaustive for inner in store.shard_stores)
        else:
            expected = isinstance(store, ExactVectorStore)
        assert store.exhaustive == expected
