"""Dual-transport contract suite for :class:`SeeSawClientProtocol`.

Every test here runs twice — once through :class:`InProcessClient` (direct
``SessionManager`` calls) and once through :class:`HTTPClient` (the `/v1`
wire protocol over a real socket) — against the *same* service.  The suite
is the guarantee the redesign exists for: a caller programming against the
protocol observes identical results, identical typed errors, and identical
validation through either transport.

The final test drives the same scenario script through both transports and
compares the normalized transcripts event by event.
"""

from __future__ import annotations

import pytest

from repro.config import SeeSawConfig
from repro.exceptions import (
    IdempotencyConflictError,
    ReproError,
    SessionError,
    TransportError,
    UnknownResourceError,
)
from repro.server import (
    FeedbackRequest,
    HTTPClient,
    InProcessClient,
    SeeSawApp,
    SeeSawService,
    SessionManager,
    StartSessionRequest,
    serve_in_background,
)
from repro.server.codec import MAX_RESULT_COUNT

TRANSPORTS = ("inprocess", "http")


@pytest.fixture(scope="module")
def stack(tiny_dataset, tiny_clip):
    """One service + manager + live HTTP server shared by the whole module."""
    service = SeeSawService(SeeSawConfig(embedding_dim=64, seed=7))
    service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
    manager = SessionManager(service)
    app = SeeSawApp(manager)
    with serve_in_background(app) as server:
        yield manager, server.url


@pytest.fixture(scope="module")
def make_client(stack):
    manager, url = stack

    def _make(kind: str):
        if kind == "inprocess":
            return InProcessClient(manager)
        return HTTPClient(url, client_id=f"contract-{kind}")

    return _make


@pytest.fixture(params=TRANSPORTS)
def client(request, make_client):
    return make_client(request.param)


@pytest.fixture(autouse=True)
def clean_sessions(stack):
    """Each test starts from an empty session registry."""
    manager, _ = stack
    yield
    for entry in list(InProcessClient(manager).iter_sessions()):
        manager.close_session(entry.info.session_id)


def start(client, query: str = "a cat_easy", batch_size: int = 2):
    return client.start_session(
        StartSessionRequest(dataset="tiny", text_query=query, batch_size=batch_size)
    )


def label_all(client, session_id: str, items, relevant: bool = False):
    for item in items:
        client.give_feedback(
            FeedbackRequest(
                session_id=session_id, image_id=item.image_id, relevant=relevant
            )
        )


# ---------------------------------------------------------------------------
# per-transport behaviour (each test runs under both transports)
# ---------------------------------------------------------------------------
class TestDiscovery:
    def test_capabilities_and_health(self, client):
        capabilities = client.capabilities()
        assert capabilities["protocol"]["version"] == "v1"
        assert capabilities["features"]["idempotent_feedback"] is True
        assert capabilities["limits"]["max_count"] == MAX_RESULT_COUNT
        assert client.healthz()["status"] == "ok"

    def test_capabilities_identical_across_transports(self, make_client):
        assert (
            make_client("inprocess").capabilities()
            == make_client("http").capabilities()
        )


class TestSearchLoop:
    def test_full_session(self, client):
        info = start(client)
        assert info.rounds == 0
        for _ in range(2):
            batch = client.next_results(info.session_id)
            assert len(batch.items) == 2
            label_all(client, info.session_id, batch.items)
        summary = client.session_info(info.session_id)
        assert summary.total_shown == 4
        assert summary.rounds == 2
        client.close_session(info.session_id)
        with pytest.raises(UnknownResourceError):
            client.session_info(info.session_id)

    def test_streaming_equals_single_shot(self, client):
        single = start(client, batch_size=3)
        streamed = start(client, batch_size=3)
        expected = client.next_results(single.session_id).items
        received = list(client.stream_next_results(streamed.session_id))
        assert [
            (item.image_id, item.score, item.box_x, item.box_y) for item in received
        ] == [
            (item.image_id, item.score, item.box_x, item.box_y) for item in expected
        ]

    def test_batch_next_partial_failure(self, client):
        info = start(client)
        outcomes = client.batch_next(
            [("no-such-session", None), (info.session_id, 2), ("also-missing", 1)]
        )
        assert isinstance(outcomes[0], UnknownResourceError)
        assert not isinstance(outcomes[1], ReproError)
        assert len(outcomes[1].items) == 2
        assert isinstance(outcomes[2], UnknownResourceError)

    def test_pending_batch_blocks_next(self, client):
        info = start(client)
        client.next_results(info.session_id)
        with pytest.raises(SessionError, match="unlabelled"):
            client.next_results(info.session_id)


class TestValidationParity:
    def test_unknown_session_raises_typed_404(self, client):
        with pytest.raises(UnknownResourceError, match="no-such"):
            client.session_info("no-such-session")

    def test_unknown_dataset_raises_typed_404(self, client):
        with pytest.raises(UnknownResourceError, match="not registered"):
            client.start_session(
                StartSessionRequest(dataset="missing", text_query="a cat")
            )

    @pytest.mark.parametrize("count", [0, -1, MAX_RESULT_COUNT + 1])
    def test_count_bounds_rejected(self, client, count):
        info = start(client)
        with pytest.raises(TransportError, match="count"):
            client.next_results(info.session_id, count=count)

    @pytest.mark.parametrize("count", [0, MAX_RESULT_COUNT + 1])
    def test_batch_count_bounds_rejected(self, client, count):
        info = start(client)
        with pytest.raises(TransportError, match="count"):
            client.batch_next([(info.session_id, count)])

    def test_bad_cursor_rejected(self, client):
        with pytest.raises(TransportError, match="cursor"):
            client.list_sessions(cursor="!!not-a-cursor!!")

    def test_feedback_for_unshown_image_rejected(self, client):
        info = start(client)
        client.next_results(info.session_id)
        with pytest.raises(SessionError, match="not awaiting"):
            client.give_feedback(
                FeedbackRequest(
                    session_id=info.session_id, image_id=999_999, relevant=True
                )
            )


class TestIdempotencyParity:
    def test_replay_is_exact_and_single_apply(self, client):
        info = start(client)
        batch = client.next_results(info.session_id)
        request = FeedbackRequest(
            session_id=info.session_id,
            image_id=batch.items[0].image_id,
            relevant=True,
        )
        first = client.give_feedback(request, idempotency_key="retry-1")
        replay = client.give_feedback(request, idempotency_key="retry-1")
        assert replay == first
        assert client.session_info(info.session_id).positives_found == 1

    def test_key_reuse_with_different_payload_conflicts(self, client):
        info = start(client)
        batch = client.next_results(info.session_id)
        client.give_feedback(
            FeedbackRequest(
                session_id=info.session_id,
                image_id=batch.items[0].image_id,
                relevant=True,
            ),
            idempotency_key="retry-1",
        )
        with pytest.raises(IdempotencyConflictError, match="retry-1"):
            client.give_feedback(
                FeedbackRequest(
                    session_id=info.session_id,
                    image_id=batch.items[1].image_id,
                    relevant=False,
                ),
                idempotency_key="retry-1",
            )


class TestListingParity:
    def test_cursor_walk_sees_every_session(self, client):
        ids = [start(client).session_id for _ in range(5)]
        walked = [entry.info.session_id for entry in client.iter_sessions(page_size=2)]
        assert walked == ids
        page = client.list_sessions(limit=2)
        assert len(page.sessions) == 2
        assert page.next_cursor is not None

    def test_entries_carry_info_and_telemetry(self, client):
        info = start(client)
        batch = client.next_results(info.session_id)
        label_all(client, info.session_id, batch.items)
        [entry] = client.list_sessions().sessions
        assert entry.info.session_id == info.session_id
        assert entry.info.rounds == 1
        assert entry.lookup_seconds > 0.0
        assert entry.update_seconds > 0.0
        assert entry.idle_seconds >= 0.0
        assert entry.seconds_per_round > 0.0


class TestMetricsParity:
    def test_both_expositions_available_on_each_transport(self, client):
        info = start(client)  # make sure the registry has seen traffic
        client.next_results(info.session_id)
        text = client.metrics_text()
        assert "# TYPE seesaw_requests_total counter" in text
        assert "seesaw_stage_seconds_bucket" in text
        payload = client.metrics_json()
        names = {metric["name"] for metric in payload["metrics"]}
        assert "seesaw_requests_total" in names
        assert "seesaw_request_seconds" in names
        assert "seesaw_active_sessions" in names

    def test_metric_families_identical_across_transports(self, make_client):
        make_client("http").healthz()  # ensure request families exist
        families = {}
        for kind in TRANSPORTS:
            families[kind] = {
                metric["name"]: metric["type"]
                for metric in make_client(kind).metrics_json()["metrics"]
            }
        assert families["inprocess"] == families["http"]


# ---------------------------------------------------------------------------
# transcript parity: the same scenario script through both transports
# ---------------------------------------------------------------------------
def run_scenario(client) -> "list[object]":
    """A full interactive scenario, recorded as a normalized transcript.

    Session ids are transport-run specific (they encode creation order), so
    events record only transport-independent facts: item identities and
    scores, progress counters, and the types of raised errors.
    """
    transcript: "list[object]" = []
    info = start(client, query="a cat_hard", batch_size=3)
    transcript.append(("started", info.dataset, info.text_query, info.rounds))
    for round_index in range(3):
        batch = client.next_results(info.session_id)
        transcript.append(
            (
                "batch",
                round_index,
                [(item.image_id, item.score) for item in batch.items],
                batch.total_shown,
            )
        )
        label_all(client, info.session_id, batch.items, relevant=round_index == 0)
    streamed = list(client.stream_next_results(info.session_id, count=4))
    transcript.append(("streamed", [(item.image_id, item.score) for item in streamed]))
    label_all(client, info.session_id, streamed)
    try:
        client.next_results(info.session_id, count=0)
    except ReproError as exc:
        transcript.append(("bad-count", type(exc).__name__))
    summary = client.session_info(info.session_id)
    transcript.append(("summary", summary.total_shown, summary.positives_found, summary.rounds))
    outcomes = client.batch_next([(info.session_id, 2), ("ghost", None)])
    transcript.append(
        (
            "batch-next",
            [
                type(outcome).__name__
                if isinstance(outcome, ReproError)
                else len(outcome.items)
                for outcome in outcomes
            ],
        )
    )
    client.close_session(info.session_id)
    try:
        client.session_info(info.session_id)
    except ReproError as exc:
        transcript.append(("after-close", type(exc).__name__))
    return transcript


def test_scenario_transcripts_identical_across_transports(make_client, stack):
    manager, _ = stack
    transcripts = {}
    for kind in TRANSPORTS:
        transcripts[kind] = run_scenario(make_client(kind))
        for entry in list(InProcessClient(manager).iter_sessions()):
            manager.close_session(entry.info.session_id)
    assert transcripts["inprocess"] == transcripts["http"]
