"""The resilience layer's state machines, under fake clocks.

Deadline arithmetic and propagation, the retry policy's backoff/budget
rules, the per-host circuit breaker, admission control's bounded in-flight
gauge with its degradation hysteresis, and the coalescer's deadline-derived
waiter bound — every timing-sensitive transition driven by a manually
advanced clock so the assertions are exact, never sleep-and-hope.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import SeeSawConfig
from repro.exceptions import (
    CircuitOpenError,
    ConnectionFailedError,
    DeadlineExceededError,
    InternalServiceError,
    RateLimitedError,
    ServiceOverloadedError,
    TransportError,
    UnknownResourceError,
)
from repro.obs import MetricsRegistry
from repro.server.batching import NextBatchCoalescer
from repro.server.deadlines import (
    DEADLINE_HEADER,
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
    parse_deadline_header,
)
from repro.server.middleware import (
    AdmissionControlMiddleware,
    DeadlineMiddleware,
    InFlightTracker,
    Request,
    Response,
)
from repro.server.retry import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    RetryPolicy,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeRng:
    """uniform() always returns the top of the range — worst-case jitter."""

    def uniform(self, low: float, high: float) -> float:
        return high


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
class TestDeadline:
    def test_budget_counts_down_on_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(250.0, clock=clock)
        assert deadline.remaining_ms() == pytest.approx(250.0)
        clock.advance(0.2)
        assert deadline.remaining_ms() == pytest.approx(50.0)
        assert not deadline.expired
        clock.advance(0.1)
        assert deadline.expired
        assert deadline.remaining_ms() < 0

    def test_check_raises_typed_with_stage_name(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        deadline.check("dispatch")  # still alive
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError, match="before dispatch"):
            deadline.check("dispatch")

    def test_bound_wait_never_negative(self):
        clock = FakeClock()
        deadline = Deadline(100.0, clock=clock)
        assert deadline.bound_wait(60.0) == pytest.approx(0.1)
        assert deadline.bound_wait(0.05) == pytest.approx(0.05)
        clock.advance(1.0)
        assert deadline.bound_wait(60.0) == 0.0

    def test_parse_header_values(self):
        assert parse_deadline_header("1500").budget_ms == 1500.0
        # Zero and negative budgets are *expired*, not malformed: the
        # clock-skewed client gets the typed 504 downstream, not a 400.
        assert parse_deadline_header("0").expired
        assert parse_deadline_header("-20").expired

    @pytest.mark.parametrize("raw", ["soon", "", "nan", "inf", "-inf"])
    def test_parse_header_malformed_is_transport_error(self, raw):
        with pytest.raises(TransportError, match=DEADLINE_HEADER):
            parse_deadline_header(raw)

    def test_scope_binds_and_restores(self):
        assert current_deadline() is None
        with deadline_scope(500.0) as outer:
            assert current_deadline() is outer
            with deadline_scope(None):
                # None clears the inherited deadline (background work).
                assert current_deadline() is None
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_check_deadline_is_noop_without_scope(self):
        assert check_deadline("anything") is None


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
def _policy(clock: FakeClock, sleeps: "list[float]", **kwargs) -> RetryPolicy:
    defaults = dict(
        max_attempts=3,
        base_ms=100.0,
        max_ms=400.0,
        clock=clock,
        sleep=sleeps.append,
        rng=FakeRng(),
        registry=MetricsRegistry(),
    )
    defaults.update(kwargs)
    return RetryPolicy(**defaults)


class TestRetryPolicy:
    def test_success_passthrough_no_sleep(self):
        sleeps: "list[float]" = []
        policy = _policy(FakeClock(), sleeps)
        assert policy.call(lambda: 42) == 42
        assert sleeps == []

    def test_retryable_rejection_retried_with_exponential_backoff(self):
        sleeps: "list[float]" = []
        policy = _policy(FakeClock(), sleeps)
        attempts = 0

        def flaky() -> str:
            nonlocal attempts
            attempts += 1
            if attempts < 3:
                raise ServiceOverloadedError("shed")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert attempts == 3
        # FakeRng draws the cap: min(max_ms, base * 2**n) for n = 0, 1.
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_backoff_capped_at_max_ms(self):
        sleeps: "list[float]" = []
        policy = _policy(FakeClock(), sleeps, max_attempts=5)
        assert policy.backoff_seconds(10) == pytest.approx(0.4)  # capped

    def test_retry_after_hint_floors_the_draw(self):
        sleeps: "list[float]" = []
        policy = _policy(FakeClock(), sleeps)
        calls = 0

        def limited() -> str:
            nonlocal calls
            calls += 1
            if calls == 1:
                raise RateLimitedError("slow down", retry_after_seconds=3.0)
            return "ok"

        assert policy.call(limited) == "ok"
        assert sleeps == [pytest.approx(3.0)]  # hint > jittered cap

    def test_attempt_budget_exhausts_with_original_error(self):
        sleeps: "list[float]" = []
        policy = _policy(FakeClock(), sleeps, max_attempts=2)

        def always_shed() -> None:
            raise ServiceOverloadedError("shed")

        with pytest.raises(ServiceOverloadedError):
            policy.call(always_shed)
        assert len(sleeps) == 1  # one retry, then surfaced

    def test_non_retryable_never_retried(self):
        sleeps: "list[float]" = []
        policy = _policy(FakeClock(), sleeps)
        calls = 0

        def missing() -> None:
            nonlocal calls
            calls += 1
            raise UnknownResourceError("no such session")

        with pytest.raises(UnknownResourceError):
            policy.call(missing)
        assert calls == 1 and sleeps == []

    @pytest.mark.parametrize(
        "exc,idempotent,expected",
        [
            (ServiceOverloadedError("x"), False, True),
            (RateLimitedError("x"), False, True),
            (ConnectionFailedError("x", request_sent=False), False, True),
            (ConnectionFailedError("x", request_sent=True), False, False),
            (ConnectionFailedError("x", request_sent=True), True, True),
            (InternalServiceError("x"), False, False),
            (InternalServiceError("x"), True, True),
            (DeadlineExceededError("x"), True, False),
            (CircuitOpenError("x"), True, False),
            (UnknownResourceError("x"), True, False),
        ],
    )
    def test_retryability_matrix(self, exc, idempotent, expected):
        assert RetryPolicy.is_retryable(exc, idempotent) is expected

    def test_deadline_vetoes_a_sleep_that_outlives_the_budget(self):
        clock = FakeClock()
        sleeps: "list[float]" = []
        policy = _policy(clock, sleeps)  # first backoff draw = 100ms

        def shed() -> None:
            raise ServiceOverloadedError("shed")

        with deadline_scope(Deadline(50.0, clock=clock)):
            with pytest.raises(ServiceOverloadedError):
                policy.call(shed)
        assert sleeps == []  # the veto surfaced the original error instead

    def test_deadline_with_room_allows_the_retry(self):
        clock = FakeClock()
        sleeps: "list[float]" = []
        policy = _policy(clock, sleeps)
        calls = 0

        def flaky() -> str:
            nonlocal calls
            calls += 1
            if calls == 1:
                raise ServiceOverloadedError("shed")
            return "ok"

        with deadline_scope(Deadline(5000.0, clock=clock)):
            assert policy.call(flaky) == "ok"
        assert len(sleeps) == 1

    def test_retries_counted_by_operation_and_error(self):
        registry = MetricsRegistry()
        sleeps: "list[float]" = []
        policy = _policy(FakeClock(), sleeps, registry=registry)
        calls = 0

        def flaky() -> str:
            nonlocal calls
            calls += 1
            if calls == 1:
                raise ServiceOverloadedError("shed")
            return "ok"

        policy.call(flaky, operation="next")
        counter = registry.counter(
            "seesaw_retries_total", "", labels=("operation", "error")
        )
        assert counter.labels("next", "ServiceOverloadedError").value == 1.0

    def test_from_config_reads_the_knobs(self):
        config = SeeSawConfig(
            retry_max_attempts=7,
            retry_base_ms=10.0,
            retry_max_ms=80.0,
            breaker_failure_threshold=2,
            breaker_reset_s=1.5,
        )
        policy = RetryPolicy.from_config(config)
        assert policy.max_attempts == 7
        assert policy.base_ms == 10.0
        assert policy.max_ms == 80.0
        assert policy.breaker_failure_threshold == 2
        assert policy.breaker_reset_s == 1.5


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, clock: FakeClock, **kwargs) -> CircuitBreaker:
        defaults = dict(
            failure_threshold=3,
            reset_seconds=5.0,
            clock=clock,
            registry=MetricsRegistry(),
        )
        defaults.update(kwargs)
        return CircuitBreaker("example:9000", **defaults)

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == STATE_OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after_seconds == pytest.approx(5.0)

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED  # streak broken, never hit 3

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.1)
        breaker.allow()  # admitted as the probe
        assert breaker.state == STATE_HALF_OPEN
        # Concurrent call while the probe is in flight fails fast.
        with pytest.raises(CircuitOpenError, match="half-open"):
            breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        breaker.allow()  # and traffic flows again

    def test_half_open_probe_failure_restarts_cooldown(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.1)
        breaker.allow()
        breaker.record_failure()  # the probe also failed
        assert breaker.state == STATE_OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock.advance(5.1)
        breaker.allow()  # next probe window
        assert breaker.state == STATE_HALF_OPEN

    def test_policy_trips_breaker_only_on_connection_failures(self):
        clock = FakeClock()
        sleeps: "list[float]" = []
        policy = _policy(
            clock, sleeps, max_attempts=1, breaker_failure_threshold=2
        )

        def dead() -> None:
            raise ConnectionFailedError("refused", request_sent=False)

        for _ in range(2):
            with pytest.raises(ConnectionFailedError):
                policy.call(dead, host="h:1")
        assert policy.breaker_for("h:1").state == STATE_OPEN
        # Typed server answers prove liveness: they never trip the breaker.
        policy2 = _policy(
            clock, sleeps, max_attempts=1, breaker_failure_threshold=2
        )

        def answered() -> None:
            raise RateLimitedError("429")

        for _ in range(5):
            with pytest.raises(RateLimitedError):
                policy2.call(answered, host="h:2")
        assert policy2.breaker_for("h:2").state == STATE_CLOSED

    def test_open_breaker_fails_fast_without_calling(self):
        clock = FakeClock()
        sleeps: "list[float]" = []
        policy = _policy(
            clock, sleeps, max_attempts=1, breaker_failure_threshold=1
        )
        with pytest.raises(ConnectionFailedError):
            policy.call(
                lambda: (_ for _ in ()).throw(ConnectionFailedError("x")),
                host="h:3",
            )
        calls = 0

        def should_not_run() -> None:
            nonlocal calls
            calls += 1

        with pytest.raises(CircuitOpenError):
            policy.call(should_not_run, host="h:3")
        assert calls == 0


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestInFlightTracker:
    def test_admits_until_the_bound(self):
        tracker = InFlightTracker(limit=2)
        assert tracker.try_enter() and tracker.try_enter()
        assert not tracker.try_enter()
        tracker.release()
        assert tracker.try_enter()

    def test_zero_limit_is_unbounded(self):
        tracker = InFlightTracker(limit=0)
        for _ in range(1000):
            assert tracker.try_enter()

    def test_overload_hysteresis(self):
        flips: "list[bool]" = []
        tracker = InFlightTracker(limit=4, on_overload=flips.append)
        for _ in range(4):
            tracker.try_enter()
        assert not tracker.try_enter()  # shed -> overload fires once
        assert not tracker.try_enter()  # still shedding, no second flip
        assert flips == [True]
        tracker.release()  # 3 in flight: above the 0.5*4 resume floor
        assert flips == [True]
        tracker.release()  # 2 in flight: at the floor -> recovery fires
        assert flips == [True, False]
        tracker.release()
        tracker.release()
        assert flips == [True, False]  # no repeat on further drain

    def test_release_never_goes_negative(self):
        tracker = InFlightTracker(limit=1)
        tracker.release()
        assert tracker.count == 0


def _request(target: str) -> Request:
    return Request(method="GET", target=target)


class TestAdmissionControlMiddleware:
    def _handler(self, request: Request) -> Response:
        return Response(status=200, payload={})

    def test_sheds_past_the_bound_with_retry_hint(self):
        registry = MetricsRegistry()
        tracker = InFlightTracker(limit=1)
        middleware = AdmissionControlMiddleware(
            tracker, registry=registry, retry_after_hint_s=2.0
        )
        tracker.try_enter()  # someone else is in flight
        with pytest.raises(ServiceOverloadedError) as excinfo:
            middleware(_request("/v1/sessions/abc/next"), self._handler)
        assert excinfo.value.retry_after_seconds == 2.0
        shed = registry.counter("seesaw_shed_total", "", labels=("reason",))
        assert shed.labels("in_flight").value == 1.0

    def test_releases_on_success_and_on_error(self):
        tracker = InFlightTracker(limit=1)
        middleware = AdmissionControlMiddleware(tracker, registry=MetricsRegistry())
        middleware(_request("/v1/sessions/abc/next"), self._handler)
        assert tracker.count == 0

        def boom(request: Request) -> Response:
            raise InternalServiceError("boom")

        with pytest.raises(InternalServiceError):
            middleware(_request("/v1/sessions/abc/next"), boom)
        assert tracker.count == 0

    @pytest.mark.parametrize(
        "target", ["/healthz", "/v1/healthz", "/v1/metrics", "/v1/capabilities"]
    )
    def test_probe_routes_exempt_even_at_the_bound(self, target):
        tracker = InFlightTracker(limit=1)
        middleware = AdmissionControlMiddleware(tracker, registry=MetricsRegistry())
        tracker.try_enter()
        response = middleware(_request(target), self._handler)
        assert response.status == 200

    def test_in_flight_gauge_tracks_the_count(self):
        registry = MetricsRegistry()
        tracker = InFlightTracker(limit=4)
        AdmissionControlMiddleware(tracker, registry=registry)
        tracker.try_enter()
        tracker.try_enter()
        payload = registry.to_json()
        gauge = next(
            metric
            for metric in payload["metrics"]
            if metric["name"] == "seesaw_in_flight"
        )
        assert gauge["series"][0]["value"] == 2.0


class TestDeadlineMiddleware:
    def test_header_binds_the_scope(self):
        middleware = DeadlineMiddleware(default_deadline_ms=0.0)
        seen: "list[object]" = []

        def handler(request: Request) -> Response:
            seen.append(current_deadline())
            return Response(status=200, payload={})

        middleware(
            Request(method="GET", target="/v1/x", headers={DEADLINE_HEADER: "800"}),
            handler,
        )
        assert seen[0] is not None and seen[0].budget_ms == 800.0
        assert current_deadline() is None  # scope restored

    def test_expired_header_rejected_before_routing(self):
        middleware = DeadlineMiddleware()

        def handler(request: Request) -> Response:  # pragma: no cover
            raise AssertionError("dead request must not be routed")

        with pytest.raises(DeadlineExceededError, match="before routing"):
            middleware(
                Request(
                    method="GET", target="/v1/x", headers={DEADLINE_HEADER: "-5"}
                ),
                handler,
            )

    def test_default_budget_applies_without_header(self):
        middleware = DeadlineMiddleware(default_deadline_ms=1234.0)
        seen: "list[object]" = []

        def handler(request: Request) -> Response:
            seen.append(current_deadline())
            return Response(status=200, payload={})

        middleware(_request("/v1/x"), handler)
        assert seen[0].budget_ms == 1234.0

    def test_no_header_no_default_is_passthrough(self):
        middleware = DeadlineMiddleware(default_deadline_ms=0.0)
        seen: "list[object]" = []

        def handler(request: Request) -> Response:
            seen.append(current_deadline())
            return Response(status=200, payload={})

        middleware(_request("/v1/x"), handler)
        assert seen == [None]


# ----------------------------------------------------------------------
# coalescer deadline handling
# ----------------------------------------------------------------------
class TestCoalescerDeadlines:
    def test_expired_entry_fails_typed_not_overloaded(self):
        dispatched: "list[list[tuple[str, int | None]]]" = []

        def dispatch(entries):
            dispatched.append(list(entries))
            return [None for _ in entries]

        coalescer = NextBatchCoalescer(
            dispatch,
            window_seconds=0.005,
            max_batch_size=8,
            wait_timeout_seconds=5.0,
            registry=MetricsRegistry(),
        )
        clock = FakeClock()
        dead = Deadline(0.0, clock=clock)
        with pytest.raises(DeadlineExceededError):
            coalescer.submit("s1", None, deadline=dead)
        # The leader dropped the dead entry before spending engine work.
        assert dispatched in ([], [[]])

    def test_live_deadline_still_dispatches(self):
        def dispatch(entries):
            return ["ok" for _ in entries]

        coalescer = NextBatchCoalescer(
            dispatch,
            window_seconds=0.001,
            max_batch_size=8,
            wait_timeout_seconds=5.0,
            registry=MetricsRegistry(),
        )
        assert coalescer.submit("s1", None, deadline=Deadline(5000.0)) == "ok"

    def test_waiter_timeout_bounded_by_deadline(self):
        coalescer = NextBatchCoalescer(
            lambda entries: [None for _ in entries],
            window_seconds=0.001,
            max_batch_size=8,
            wait_timeout_seconds=60.0,
            registry=MetricsRegistry(),
        )
        clock = FakeClock()
        entry = type(
            "E", (), {"deadline": Deadline(200.0, clock=clock)}
        )()
        bounded = coalescer._waiter_timeout(entry)
        # budget (0.2 s) plus the small grace, far under the 60 s bound
        assert 0.2 <= bounded <= 0.26
        entry_none = type("E", (), {"deadline": None})()
        assert coalescer._waiter_timeout(entry_none) == 60.0


# ----------------------------------------------------------------------
# config-derived coalescer bound (manager wiring)
# ----------------------------------------------------------------------
class TestManagerCoalescerBound:
    def test_wait_timeout_follows_request_deadline(self, tiny_dataset, tiny_clip):
        from repro.server import SeeSawService, SessionManager

        service = SeeSawService(
            SeeSawConfig(
                embedding_dim=64,
                seed=7,
                batch_window_ms=2.0,
                request_deadline_ms=1500.0,
            ),
            registry=MetricsRegistry(),
        )
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        manager = SessionManager(service)
        assert manager._coalescer.wait_timeout_seconds == pytest.approx(2.5)

    def test_wait_timeout_defaults_to_sixty_seconds(self, tiny_dataset, tiny_clip):
        from repro.server import SeeSawService, SessionManager

        service = SeeSawService(
            SeeSawConfig(embedding_dim=64, seed=7, batch_window_ms=2.0),
            registry=MetricsRegistry(),
        )
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        manager = SessionManager(service)
        assert manager._coalescer.wait_timeout_seconds == 60.0
