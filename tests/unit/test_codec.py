"""Round-trip and validation tests for the service JSON codecs."""

from __future__ import annotations

import pytest

from repro.exceptions import TransportError
from repro.server.api import (
    BoxPayload,
    FeedbackRequest,
    NextResultsResponse,
    ResultItem,
    SessionInfo,
    StartSessionRequest,
)
from repro.server.codec import (
    decode_box_payload,
    decode_feedback_request,
    decode_next_results_response,
    decode_session_info,
    decode_start_session_request,
    encode_box_payload,
    encode_feedback_request,
    encode_next_results_response,
    encode_session_info,
    encode_start_session_request,
    parse_json,
)


class TestRoundTrips:
    def test_start_session_request(self):
        request = StartSessionRequest(
            dataset="bdd", text_query="a wheelchair", batch_size=5, multiscale=False
        )
        assert decode_start_session_request(encode_start_session_request(request)) == request

    def test_start_session_request_defaults(self):
        decoded = decode_start_session_request({"dataset": "bdd", "text_query": "a dog"})
        assert decoded.batch_size == 3
        assert decoded.multiscale is True

    def test_box_payload(self):
        box = BoxPayload(x=1.5, y=2.0, width=10.0, height=20.0)
        assert decode_box_payload(encode_box_payload(box)) == box

    def test_feedback_request(self):
        request = FeedbackRequest(
            session_id="session-9",
            image_id=17,
            relevant=True,
            boxes=(BoxPayload(0.0, 0.0, 5.0, 5.0), BoxPayload(1.0, 2.0, 3.0, 4.0)),
        )
        assert decode_feedback_request(encode_feedback_request(request)) == request

    def test_feedback_request_url_session_id_wins(self):
        encoded = encode_feedback_request(
            FeedbackRequest(session_id="body-id", image_id=3, relevant=False)
        )
        decoded = decode_feedback_request(encoded, session_id="url-id")
        assert decoded.session_id == "url-id"

    def test_next_results_response(self):
        response = NextResultsResponse(
            session_id="session-1",
            items=(
                ResultItem(image_id=4, score=0.75, box_x=0.0, box_y=1.0,
                           box_width=24.0, box_height=48.0),
            ),
            total_shown=12,
            positives_found=3,
        )
        decoded = decode_next_results_response(encode_next_results_response(response))
        assert decoded.session_id == response.session_id
        assert tuple(decoded.items) == tuple(response.items)
        assert decoded.total_shown == response.total_shown
        assert decoded.positives_found == response.positives_found

    def test_session_info(self):
        info = SessionInfo(
            session_id="session-2",
            dataset="coco",
            text_query="a spoon",
            total_shown=6,
            positives_found=1,
            rounds=2,
        )
        assert decode_session_info(encode_session_info(info)) == info


class TestValidation:
    def test_missing_field_names_the_field(self):
        with pytest.raises(TransportError, match="text_query"):
            decode_start_session_request({"dataset": "bdd"})

    def test_wrong_type_rejected(self):
        with pytest.raises(TransportError, match="batch_size"):
            decode_start_session_request(
                {"dataset": "bdd", "text_query": "a dog", "batch_size": "many"}
            )

    def test_bool_is_not_an_int(self):
        with pytest.raises(TransportError, match="image_id"):
            decode_feedback_request(
                {"session_id": "s", "image_id": True, "relevant": False}
            )

    def test_non_object_body_rejected(self):
        with pytest.raises(TransportError, match="JSON object"):
            decode_start_session_request([1, 2, 3])

    def test_boxes_must_be_array(self):
        with pytest.raises(TransportError, match="boxes"):
            decode_feedback_request(
                {"session_id": "s", "image_id": 1, "relevant": True, "boxes": "nope"}
            )

    def test_parse_json_rejects_empty_and_garbage(self):
        with pytest.raises(TransportError):
            parse_json(None)
        with pytest.raises(TransportError):
            parse_json(b"")
        with pytest.raises(TransportError):
            parse_json(b"{not json")

    def test_parse_json_accepts_valid(self):
        assert parse_json(b'{"a": 1}') == {"a": 1}


class TestBatchNextCodec:
    def test_decode_entries_with_and_without_count(self):
        from repro.server.codec import decode_batch_next_request

        entries = decode_batch_next_request(
            {
                "requests": [
                    {"session_id": "session-1", "count": 4},
                    {"session_id": "session-2"},
                    {"session_id": "session-3", "count": None},
                ]
            }
        )
        assert entries == [("session-1", 4), ("session-2", None), ("session-3", None)]

    def test_decode_rejects_bad_bodies(self):
        from repro.server.codec import decode_batch_next_request

        with pytest.raises(TransportError, match="requests"):
            decode_batch_next_request({})
        with pytest.raises(TransportError, match="must not be empty"):
            decode_batch_next_request({"requests": []})
        with pytest.raises(TransportError, match="session_id"):
            decode_batch_next_request({"requests": [{"count": 2}]})
        with pytest.raises(TransportError, match="count"):
            decode_batch_next_request(
                {"requests": [{"session_id": "session-1", "count": 0}]}
            )

    def test_encode_mixes_results_and_errors(self):
        from repro.exceptions import UnknownResourceError
        from repro.server.codec import encode_batch_next_response

        response = NextResultsResponse(
            session_id="session-1",
            items=(ResultItem(image_id=1, score=0.5, box_x=0, box_y=0, box_width=2, box_height=2),),
            total_shown=1,
            positives_found=0,
        )
        payload = encode_batch_next_response(
            [response, UnknownResourceError("Unknown session 'session-9'")]
        )
        ok, bad = payload["results"]
        assert ok["ok"] is True
        assert decode_next_results_response(ok["result"]) == response
        assert bad["ok"] is False
        assert bad["error"]["type"] == "UnknownResourceError"
        assert "session-9" in bad["error"]["message"]
