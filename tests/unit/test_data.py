"""Tests for the data substrate: geometry, images, datasets, generators, catalogs."""

import numpy as np
import pytest

from repro.data.catalogs import DATASET_PROFILES, load_dataset
from repro.data.dataset import CategoryInfo, ImageDataset
from repro.data.generators import CategorySpec, DatasetProfile, SceneGenerator
from repro.data.geometry import BoundingBox
from repro.data.image import ObjectInstance, SyntheticImage, count_category_images
from repro.exceptions import DatasetError


class TestBoundingBox:
    def test_area_and_edges(self):
        box = BoundingBox(10, 20, 30, 40)
        assert box.area == 1200
        assert box.x2 == 40
        assert box.y2 == 60
        assert box.center == (25, 40)

    def test_invalid_size(self):
        with pytest.raises(DatasetError):
            BoundingBox(0, 0, 0, 10)

    def test_intersection_and_iou(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 5, 10, 10)
        assert a.intersection(b) == 25
        assert a.iou(b) == pytest.approx(25 / 175)

    def test_disjoint_boxes(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(20, 20, 5, 5)
        assert a.intersection(b) == 0
        assert not a.overlaps(b)

    def test_overlap_fraction(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(0, 0, 5, 10)
        assert b.overlap_fraction(a) == pytest.approx(1.0)
        assert a.overlap_fraction(b) == pytest.approx(0.5)

    def test_contains_point(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.contains_point(5, 5)
        assert not box.contains_point(15, 5)

    def test_clipped_to(self):
        box = BoundingBox(-5, -5, 20, 20)
        clipped = box.clipped_to(10, 10)
        assert clipped.x == 0 and clipped.y == 0
        assert clipped.width == 10 and clipped.height == 10

    def test_clipped_outside_raises(self):
        with pytest.raises(DatasetError):
            BoundingBox(100, 100, 5, 5).clipped_to(10, 10)

    def test_full_image(self):
        box = BoundingBox.full_image(640, 480)
        assert box.area == 640 * 480


class TestSyntheticImage:
    def test_categories_and_lookup(self, simple_image):
        assert simple_image.categories == {"dog", "chair"}
        assert simple_image.contains_category("dog")
        assert len(simple_image.instances_of("dog")) == 1

    def test_object_outside_image_rejected(self):
        with pytest.raises(DatasetError):
            SyntheticImage(
                image_id=0,
                width=100,
                height=100,
                context="x",
                objects=(ObjectInstance("dog", BoundingBox(90, 90, 50, 50)),),
            )

    def test_objects_in_region(self, simple_image):
        region = BoundingBox(0, 0, 300, 300)
        hits = simple_image.objects_in_region(region)
        assert [instance.category for instance, _ in hits] == ["dog"]
        assert hits[0][1] == pytest.approx(1.0)

    def test_ground_truth_boxes(self, simple_image):
        boxes = simple_image.ground_truth_boxes("chair")
        assert len(boxes) == 1 and boxes[0].width == 150

    def test_count_category_images(self, simple_image):
        assert count_category_images([simple_image], "dog") == 1
        assert count_category_images([simple_image], "zebra") == 0

    def test_invalid_distinctiveness(self):
        with pytest.raises(DatasetError):
            ObjectInstance("dog", BoundingBox(0, 0, 10, 10), distinctiveness=0.0)


class TestImageDataset:
    def test_positive_lookup(self, tiny_dataset):
        category = tiny_dataset.category_names[0]
        positives = tiny_dataset.positive_image_ids(category)
        for image_id in positives:
            assert tiny_dataset.image(image_id).contains_category(category)

    def test_unknown_category_raises(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.positive_image_ids("does-not-exist")

    def test_unknown_image_raises(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.image(10**9)

    def test_statistics(self, tiny_dataset):
        stats = tiny_dataset.statistics()
        assert stats.image_count == len(tiny_dataset)
        assert stats.object_count > 0
        assert set(stats.positives_per_category) == set(tiny_dataset.category_names)

    def test_subset(self, tiny_dataset):
        ids = [image.image_id for image in list(tiny_dataset)[:10]]
        subset = tiny_dataset.subset(ids)
        assert len(subset) == 10

    def test_searchable_categories_respect_minimum(self, tiny_dataset):
        names = tiny_dataset.searchable_categories(min_positives=3)
        for name in names:
            assert tiny_dataset.positive_count(name) >= 3

    def test_duplicate_category_rejected(self, simple_image):
        info = CategoryInfo(name="dog", prompt="a dog")
        chair = CategoryInfo(name="chair", prompt="a chair")
        with pytest.raises(DatasetError):
            ImageDataset("dup", [simple_image], [info, info, chair])


class TestSceneGenerator:
    def test_min_positives_enforced(self, tiny_dataset):
        for name in tiny_dataset.category_names:
            assert tiny_dataset.positive_count(name) >= 3

    def test_determinism(self):
        profile = DATASET_PROFILES["coco"]
        small = DatasetProfile(
            name="coco",
            description="d",
            image_count=40,
            category_count=8,
            image_sizes=profile.image_sizes,
            contexts=profile.contexts,
            objects_per_image=(1, 3),
            object_scale_range=profile.object_scale_range,
            frequency_range=profile.frequency_range,
            rare_fraction=profile.rare_fraction,
            easy_query_fraction=profile.easy_query_fraction,
            hard_deficit_range=profile.hard_deficit_range,
        )
        first = SceneGenerator(small, seed=3).generate()
        second = SceneGenerator(small, seed=3).generate()
        assert [img.categories for img in first] == [img.categories for img in second]

    def test_named_categories_present(self):
        dataset = load_dataset("bdd", seed=0, size_scale=0.08)
        assert "wheelchair" in dataset.category_names
        assert "car" in dataset.category_names

    def test_invalid_profile(self):
        with pytest.raises(DatasetError):
            DatasetProfile(
                name="bad",
                description="",
                image_count=0,
                category_count=5,
                image_sizes=((100, 100),),
                contexts=("a",),
                objects_per_image=(1, 2),
                object_scale_range=(0.1, 0.5),
                frequency_range=(0.1, 0.2),
                rare_fraction=0.1,
                easy_query_fraction=0.5,
                hard_deficit_range=(0.5, 1.0),
            )


class TestCatalogs:
    @pytest.mark.parametrize("name", sorted(DATASET_PROFILES))
    def test_all_profiles_load(self, name):
        dataset = load_dataset(name, seed=1, size_scale=0.05)
        assert len(dataset) >= 20
        assert dataset.name == name

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("imagenet")

    def test_objectnet_images_are_fixed_size(self):
        dataset = load_dataset("objectnet", seed=0, size_scale=0.05)
        assert all(image.width == 224 and image.height == 224 for image in dataset)

    def test_bdd_images_are_large(self):
        dataset = load_dataset("bdd", seed=0, size_scale=0.05)
        assert all(image.width == 1280 for image in dataset)

    def test_size_scale_changes_image_count(self):
        small = load_dataset("coco", seed=0, size_scale=0.05)
        smaller_than_full = DATASET_PROFILES["coco"].image_count
        assert len(small) < smaller_than_full

    def test_category_deficits_have_long_tail(self):
        dataset = load_dataset("lvis", seed=0, size_scale=0.2)
        deficits = np.array(
            [dataset.category(name).alignment_deficit for name in dataset.category_names]
        )
        assert (deficits < 0.2).any(), "some queries should be easy"
        assert (deficits > 0.8).any(), "some queries should be hard"
