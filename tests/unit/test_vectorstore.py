"""Tests for the exact and Annoy-style vector stores."""

import numpy as np
import pytest

from repro.data.geometry import BoundingBox
from repro.exceptions import VectorStoreError
from repro.utils.linalg import normalize_rows
from repro.vectorstore.base import VectorRecord
from repro.vectorstore.exact import ExactVectorStore
from repro.vectorstore.forest import RandomProjectionForest


def make_records(count: int) -> list[VectorRecord]:
    box = BoundingBox(0, 0, 10, 10)
    return [VectorRecord(vector_id=i, image_id=i, box=box) for i in range(count)]


@pytest.fixture()
def store_data(rng):
    vectors = normalize_rows(rng.standard_normal((200, 32)))
    return vectors, make_records(200)


class TestExactVectorStore:
    def test_search_returns_true_top_k(self, store_data):
        vectors, records = store_data
        store = ExactVectorStore(vectors, records)
        query = vectors[17]
        hits = store.search(query, k=5)
        scores = vectors @ query
        expected = set(np.argsort(-scores)[:5].tolist())
        assert {hit.vector_id for hit in hits} == expected
        assert hits[0].vector_id == 17

    def test_scores_are_sorted_descending(self, store_data):
        store = ExactVectorStore(*store_data)
        hits = store.search(store.vectors[0], k=10)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_exclusion(self, store_data):
        vectors, records = store_data
        store = ExactVectorStore(vectors, records)
        hits = store.search(vectors[3], k=3, exclude_vector_ids={3})
        assert 3 not in {hit.vector_id for hit in hits}

    def test_k_larger_than_store(self, store_data):
        vectors, records = store_data
        store = ExactVectorStore(vectors[:5], records[:5])
        assert len(store.search(vectors[0], k=50)) == 5

    def test_dimension_mismatch(self, store_data):
        store = ExactVectorStore(*store_data)
        with pytest.raises(VectorStoreError):
            store.search(np.zeros(7), k=1)

    def test_invalid_k(self, store_data):
        store = ExactVectorStore(*store_data)
        with pytest.raises(VectorStoreError):
            store.search(store.vectors[0], k=0)

    def test_record_lookup(self, store_data):
        store = ExactVectorStore(*store_data)
        assert store.record(4).image_id == 4
        with pytest.raises(VectorStoreError):
            store.record(10_000)

    def test_records_must_match_positions(self, store_data):
        vectors, records = store_data
        bad = list(reversed(records))
        with pytest.raises(VectorStoreError):
            ExactVectorStore(vectors, bad)

    def test_empty_store_rejected(self):
        with pytest.raises(VectorStoreError):
            ExactVectorStore(np.zeros((0, 8)), [])

    def test_vectors_are_read_only(self, store_data):
        store = ExactVectorStore(*store_data)
        with pytest.raises(ValueError):
            store.vectors[0, 0] = 5.0

    def test_score_all(self, store_data):
        vectors, records = store_data
        store = ExactVectorStore(vectors, records)
        scores = store.score_all(vectors[0])
        assert scores.shape == (200,)
        assert scores[0] == pytest.approx(1.0)


class TestRandomProjectionForest:
    def test_high_recall_against_exact(self, store_data):
        vectors, records = store_data
        forest = RandomProjectionForest(vectors, records, tree_count=10, leaf_size=16, seed=0)
        queries = vectors[:20]
        recall = forest.recall_against_exact(queries, k=10)
        assert recall > 0.85

    def test_search_excludes_ids(self, store_data):
        vectors, records = store_data
        forest = RandomProjectionForest(vectors, records, seed=1)
        hits = forest.search(vectors[7], k=5, exclude_vector_ids={7})
        assert 7 not in {hit.vector_id for hit in hits}

    def test_self_query_finds_itself(self, store_data):
        vectors, records = store_data
        forest = RandomProjectionForest(vectors, records, tree_count=10, seed=2)
        hits = forest.search(vectors[42], k=1)
        assert hits and hits[0].vector_id == 42

    def test_invalid_parameters(self, store_data):
        vectors, records = store_data
        with pytest.raises(VectorStoreError):
            RandomProjectionForest(vectors, records, tree_count=0)
        with pytest.raises(VectorStoreError):
            RandomProjectionForest(vectors, records, leaf_size=1)

    def test_handles_duplicate_vectors(self):
        vectors = np.tile(np.array([[1.0, 0.0, 0.0]]), (50, 1))
        forest = RandomProjectionForest(vectors, make_records(50), leaf_size=4, seed=0)
        hits = forest.search(np.array([1.0, 0.0, 0.0]), k=5)
        assert len(hits) == 5
