"""Tests for the exact and Annoy-style vector stores."""

import numpy as np
import pytest

from repro.data.geometry import BoundingBox
from repro.exceptions import VectorStoreError
from repro.utils.linalg import normalize_rows
from repro.vectorstore.base import VectorRecord
from repro.vectorstore.exact import ExactVectorStore
from repro.vectorstore.forest import RandomProjectionForest


def make_records(count: int) -> list[VectorRecord]:
    box = BoundingBox(0, 0, 10, 10)
    return [VectorRecord(vector_id=i, image_id=i, box=box) for i in range(count)]


@pytest.fixture()
def store_data(rng):
    vectors = normalize_rows(rng.standard_normal((200, 32)))
    return vectors, make_records(200)


class TestExactVectorStore:
    def test_search_returns_true_top_k(self, store_data):
        vectors, records = store_data
        store = ExactVectorStore(vectors, records)
        query = vectors[17]
        hits = store.search(query, k=5)
        scores = vectors @ query
        expected = set(np.argsort(-scores)[:5].tolist())
        assert {hit.vector_id for hit in hits} == expected
        assert hits[0].vector_id == 17

    def test_scores_are_sorted_descending(self, store_data):
        store = ExactVectorStore(*store_data)
        hits = store.search(store.vectors[0], k=10)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_exclusion(self, store_data):
        vectors, records = store_data
        store = ExactVectorStore(vectors, records)
        hits = store.search(vectors[3], k=3, exclude_vector_ids={3})
        assert 3 not in {hit.vector_id for hit in hits}

    def test_k_larger_than_store(self, store_data):
        vectors, records = store_data
        store = ExactVectorStore(vectors[:5], records[:5])
        assert len(store.search(vectors[0], k=50)) == 5

    def test_dimension_mismatch(self, store_data):
        store = ExactVectorStore(*store_data)
        with pytest.raises(VectorStoreError):
            store.search(np.zeros(7), k=1)

    def test_invalid_k(self, store_data):
        store = ExactVectorStore(*store_data)
        with pytest.raises(VectorStoreError):
            store.search(store.vectors[0], k=0)

    def test_record_lookup(self, store_data):
        store = ExactVectorStore(*store_data)
        assert store.record(4).image_id == 4
        with pytest.raises(VectorStoreError):
            store.record(10_000)

    def test_records_must_match_positions(self, store_data):
        vectors, records = store_data
        bad = list(reversed(records))
        with pytest.raises(VectorStoreError):
            ExactVectorStore(vectors, bad)

    def test_empty_store_rejected(self):
        with pytest.raises(VectorStoreError):
            ExactVectorStore(np.zeros((0, 8)), [])

    def test_vectors_are_read_only(self, store_data):
        store = ExactVectorStore(*store_data)
        with pytest.raises(ValueError):
            store.vectors[0, 0] = 5.0

    def test_score_all(self, store_data):
        vectors, records = store_data
        store = ExactVectorStore(vectors, records)
        scores = store.score_all(vectors[0])
        assert scores.shape == (200,)
        assert scores[0] == pytest.approx(1.0)


class TestRandomProjectionForest:
    def test_high_recall_against_exact(self, store_data):
        vectors, records = store_data
        forest = RandomProjectionForest(vectors, records, tree_count=10, leaf_size=16, seed=0)
        queries = vectors[:20]
        recall = forest.recall_against_exact(queries, k=10)
        assert recall > 0.85

    def test_search_excludes_ids(self, store_data):
        vectors, records = store_data
        forest = RandomProjectionForest(vectors, records, seed=1)
        hits = forest.search(vectors[7], k=5, exclude_vector_ids={7})
        assert 7 not in {hit.vector_id for hit in hits}

    def test_self_query_finds_itself(self, store_data):
        vectors, records = store_data
        forest = RandomProjectionForest(vectors, records, tree_count=10, seed=2)
        hits = forest.search(vectors[42], k=1)
        assert hits and hits[0].vector_id == 42

    def test_invalid_parameters(self, store_data):
        vectors, records = store_data
        with pytest.raises(VectorStoreError):
            RandomProjectionForest(vectors, records, tree_count=0)
        with pytest.raises(VectorStoreError):
            RandomProjectionForest(vectors, records, leaf_size=1)

    def test_handles_duplicate_vectors(self):
        vectors = np.tile(np.array([[1.0, 0.0, 0.0]]), (50, 1))
        forest = RandomProjectionForest(vectors, make_records(50), leaf_size=4, seed=0)
        hits = forest.search(np.array([1.0, 0.0, 0.0]), k=5)
        assert len(hits) == 5


class TestShardedVectorStore:
    """Construction/validation edges; equivalence lives in the property suite."""

    def test_n_shards_below_one_rejected(self, store_data):
        from repro.vectorstore.sharded import ShardedVectorStore

        vectors, records = store_data
        with pytest.raises(VectorStoreError, match="n_shards"):
            ShardedVectorStore(vectors, records, n_shards=0)

    def test_non_contiguous_image_layout_rejected(self, rng):
        from repro.vectorstore.sharded import ShardedVectorStore

        box = BoundingBox(0, 0, 10, 10)
        # Image 0's vectors are split around image 1's: no contiguous split
        # point can keep images whole.
        records = [
            VectorRecord(vector_id=0, image_id=0, box=box),
            VectorRecord(vector_id=1, image_id=1, box=box),
            VectorRecord(vector_id=2, image_id=0, box=box),
        ]
        with pytest.raises(VectorStoreError, match="contiguously"):
            ShardedVectorStore(rng.standard_normal((3, 8)), records, n_shards=2)

    def test_shard_count_capped_by_image_count(self, rng):
        from repro.vectorstore.sharded import ShardedVectorStore

        box = BoundingBox(0, 0, 10, 10)
        records = [VectorRecord(vector_id=i, image_id=i, box=box) for i in range(4)]
        store = ShardedVectorStore(rng.standard_normal((4, 8)), records, n_shards=99)
        assert store.n_shards <= 4
        assert sum(store.shard_sizes) == 4

    def test_wrap_unknown_store_kind_needs_factory(self, store_data):
        from repro.vectorstore.base import VectorStore
        from repro.vectorstore.sharded import ShardedVectorStore

        vectors, records = store_data

        class OpaqueStore(VectorStore):
            def search_arrays(self, query, k, exclude_mask=None):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(VectorStoreError, match="store_factory"):
            ShardedVectorStore.wrap(OpaqueStore(vectors, records), 2)

    def test_wrap_resharding_a_sharded_store(self, store_data):
        from repro.vectorstore.sharded import ShardedVectorStore

        vectors, records = store_data
        twice = ShardedVectorStore.wrap(
            ShardedVectorStore(vectors, records, n_shards=2), 4
        )
        assert twice.n_shards == 4
        flat = ExactVectorStore(vectors, records)
        query = vectors[3]
        assert np.array_equal(flat.score_all(query), twice.score_all(query))

    def test_close_is_idempotent(self, store_data):
        from repro.vectorstore.sharded import ShardedVectorStore

        vectors, records = store_data
        store = ShardedVectorStore(vectors, records, n_shards=3)
        store.score_all(vectors[0])  # spins up the pool
        store.close()
        store.close()
        # Scoring after close lazily rebuilds the pool.
        assert store.score_all(vectors[1]).shape == (len(store),)

    def test_per_shard_diagnostics_cover_the_global_top(self, store_data):
        from repro.vectorstore.sharded import ShardedVectorStore

        vectors, records = store_data
        store = ShardedVectorStore(vectors, records, n_shards=4)
        query = vectors[11]
        per_shard = store.search_arrays_per_shard(query, k=6)
        assert len(per_shard) == store.n_shards
        local_ids = np.concatenate([ids for ids, _ in per_shard])
        global_ids, _ = store.search_arrays(query, k=6)
        # The exact global top-k is always a subset of the shard-local tops —
        # the invariant the merge's exactness proof rests on.
        assert set(global_ids.tolist()) <= set(local_ids.tolist())

    def test_shards_share_the_wrapper_matrix(self, store_data):
        """Sharding must not double vector memory: inner stores hold views."""
        from repro.vectorstore.sharded import ShardedVectorStore

        vectors, records = store_data
        store = ShardedVectorStore(vectors, records, n_shards=4)
        wrapper_matrix = np.asarray(store.vectors)
        for inner in store.shard_stores:
            assert np.shares_memory(np.asarray(inner.vectors), wrapper_matrix)
