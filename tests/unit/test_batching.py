"""NextBatchCoalescer unit tests against a fake dispatch function."""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import (
    InternalServiceError,
    ServiceOverloadedError,
    UnknownResourceError,
)
from repro.obs import MetricsRegistry
from repro.server.batching import NextBatchCoalescer


class RecordingDispatch:
    """Dispatch stub: records cohorts, returns per-entry outcomes."""

    def __init__(self, outcome_for=None):
        self.cohorts: "list[list[tuple[str, int | None]]]" = []
        self.lock = threading.Lock()
        self.outcome_for = outcome_for or (lambda session_id, count: f"result:{session_id}")

    def __call__(self, entries):
        with self.lock:
            self.cohorts.append(list(entries))
        return [self.outcome_for(session_id, count) for session_id, count in entries]


class TestCoalescer:
    def test_single_request_round_trips(self):
        dispatch = RecordingDispatch()
        coalescer = NextBatchCoalescer(dispatch, window_seconds=0.0)
        assert coalescer.submit("session-1", 3) == "result:session-1"
        assert dispatch.cohorts == [[("session-1", 3)]]

    def test_concurrent_requests_share_a_cohort(self):
        dispatch = RecordingDispatch()
        coalescer = NextBatchCoalescer(
            dispatch, window_seconds=0.05, registry=MetricsRegistry()
        )
        results: "dict[str, object]" = {}
        barrier = threading.Barrier(6, timeout=10.0)

        def run(session_id: str) -> None:
            barrier.wait()
            results[session_id] = coalescer.submit(session_id)

        threads = [
            threading.Thread(target=run, args=(f"session-{i}",)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert results == {f"session-{i}": f"result:session-{i}" for i in range(6)}
        # All six landed in far fewer cohorts than requests (typically one:
        # they all arrived inside one 50 ms window).
        assert len(dispatch.cohorts) < 6
        stats = coalescer.stats()
        assert stats["requests_coalesced"] == 6
        assert stats["largest_batch"] >= 2

    def test_per_request_errors_do_not_poison_the_cohort(self):
        def outcome_for(session_id, count):
            if session_id == "bad":
                return UnknownResourceError("Unknown session 'bad'")
            return f"result:{session_id}"

        dispatch = RecordingDispatch(outcome_for)
        coalescer = NextBatchCoalescer(dispatch, window_seconds=0.02)
        outcomes: "dict[str, object]" = {}

        def run(session_id: str) -> None:
            try:
                outcomes[session_id] = coalescer.submit(session_id)
            except Exception as exc:
                outcomes[session_id] = exc

        threads = [
            threading.Thread(target=run, args=(name,)) for name in ("good", "bad")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert outcomes["good"] == "result:good"
        assert isinstance(outcomes["bad"], UnknownResourceError)

    def test_dispatch_crash_fails_waiters_instead_of_stranding_them(self):
        def exploding(entries):
            raise RuntimeError("dispatch exploded")

        coalescer = NextBatchCoalescer(exploding, window_seconds=0.0)
        with pytest.raises(RuntimeError, match="exploded"):
            coalescer.submit("session-1")

    def test_max_batch_size_splits_cohorts(self):
        dispatch = RecordingDispatch()
        coalescer = NextBatchCoalescer(dispatch, window_seconds=0.05, max_batch_size=4)
        barrier = threading.Barrier(10, timeout=10.0)
        done: "list[object]" = []

        def run(session_id: str) -> None:
            barrier.wait()
            done.append(coalescer.submit(session_id))

        threads = [
            threading.Thread(target=run, args=(f"session-{i}",)) for i in range(10)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(done) == 10
        assert all(len(cohort) <= 4 for cohort in dispatch.cohorts)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            NextBatchCoalescer(lambda entries: [], window_seconds=-1.0)
        with pytest.raises(ValueError):
            NextBatchCoalescer(lambda entries: [], window_seconds=0.0, max_batch_size=0)

    def test_short_outcome_list_fails_tail_waiters_instead_of_stranding(self):
        """Regression: a dispatch returning fewer outcomes than entries used
        to leave the tail waiters' events unset, hanging them for the full
        wait timeout.  They must fail fast with a typed internal error."""

        def short_dispatch(entries):
            return ["result:first"]  # one outcome for the whole cohort

        coalescer = NextBatchCoalescer(
            short_dispatch,
            window_seconds=0.05,
            wait_timeout_seconds=5.0,
            registry=MetricsRegistry(),
        )
        barrier = threading.Barrier(2, timeout=10.0)
        outcomes: "dict[str, object]" = {}

        def run(session_id: str) -> None:
            barrier.wait()
            try:
                outcomes[session_id] = coalescer.submit(session_id)
            except Exception as exc:
                outcomes[session_id] = exc

        threads = [
            threading.Thread(target=run, args=(name,)) for name in ("s-a", "s-b")
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        elapsed = time.perf_counter() - started
        assert not any(thread.is_alive() for thread in threads), "stranded waiter"
        # Positional prefix is trusted, the unmatched tail gets the typed error.
        values = list(outcomes.values())
        assert "result:first" in values
        internal = [value for value in values if isinstance(value, InternalServiceError)]
        assert len(internal) == 1
        assert "1 outcomes for a cohort of 2" in str(internal[0])
        # The tail waiter failed promptly, not after the 5s wait timeout.
        assert elapsed < 3.0
        assert int(coalescer._dispatch_mismatches.value) == 1

    def test_surplus_outcomes_are_dropped_not_misassigned(self):
        def long_dispatch(entries):
            return [f"result:{sid}" for sid, _ in entries] + ["surplus"]

        coalescer = NextBatchCoalescer(long_dispatch, window_seconds=0.0)
        assert coalescer.submit("session-1") == "result:session-1"

    def test_full_cohort_wakes_leader_before_window_expires(self):
        """Regression: the leader used to sleep the entire window even when
        the queue already held max_batch_size entries, adding the full
        window to p99 under bursts for no extra fusion."""
        window = 2.0
        dispatch = RecordingDispatch()
        coalescer = NextBatchCoalescer(
            dispatch, window_seconds=window, max_batch_size=4
        )
        barrier = threading.Barrier(4, timeout=10.0)
        done: "list[object]" = []
        lock = threading.Lock()

        def run(session_id: str) -> None:
            barrier.wait()
            result = coalescer.submit(session_id)
            with lock:
                done.append(result)

        threads = [
            threading.Thread(target=run, args=(f"session-{i}",)) for i in range(4)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        elapsed = time.perf_counter() - started
        assert len(done) == 4
        # Well under the 2s window: the full-cohort event fired early.
        assert elapsed < window / 2, f"leader slept the window: {elapsed:.2f}s"
        assert any(len(cohort) == 4 for cohort in dispatch.cohorts)

    def test_partial_cohort_still_waits_out_the_window(self):
        """The early wake must not fire for partial cohorts: a lone request
        still pays the window so followers can coalesce behind it."""
        window = 0.2
        dispatch = RecordingDispatch()
        coalescer = NextBatchCoalescer(
            dispatch, window_seconds=window, max_batch_size=64
        )
        started = time.perf_counter()
        assert coalescer.submit("session-1") == "result:session-1"
        elapsed = time.perf_counter() - started
        assert elapsed >= window * 0.75, f"window skipped for partial cohort: {elapsed:.3f}s"

    def test_wedged_dispatch_times_out_followers(self):
        """A follower gives up with 503 instead of blocking forever."""
        started = threading.Event()
        block = threading.Event()

        def stuck(entries):
            started.set()
            block.wait(timeout=30.0)
            return ["late"] * len(entries)

        coalescer = NextBatchCoalescer(
            stuck, window_seconds=0.01, wait_timeout_seconds=0.1
        )
        leader = threading.Thread(target=lambda: coalescer.submit("leader"))
        leader.start()
        assert started.wait(timeout=10.0)
        # The leader is inside the wedged dispatch; this follower enqueues
        # behind it and must time out cleanly.
        with pytest.raises(ServiceOverloadedError, match="Timed out"):
            coalescer.submit("follower")
        block.set()
        leader.join(timeout=10.0)
