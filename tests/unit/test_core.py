"""Tests for core SeeSaw pieces: multiscale, feedback, propagation, aligner, indexing, session."""

import numpy as np
import pytest

from repro.config import MultiscaleConfig, SeeSawConfig
from repro.core.aligner import SeeSawQueryAligner
from repro.core.feedback import BoxFeedback, FeedbackMap
from repro.core.indexing import SeeSawIndex
from repro.core.interfaces import SearchContext
from repro.core.multiscale import COARSE_LEVEL, FINE_LEVEL, generate_patches, pool_image_scores
from repro.core.propagation import (
    compute_db_alignment_matrix,
    propagate_labels,
    smoothness_penalty,
)
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.core.session import SearchSession
from repro.data.geometry import BoundingBox
from repro.exceptions import SessionError
from repro.knng.graph import build_knn_graph
from repro.config import KnnGraphConfig
from repro.utils.linalg import cosine_similarity, normalize_rows, normalize_vector


class TestMultiscale:
    def test_small_image_only_coarse(self):
        patches = generate_patches(224, 224)
        assert len(patches) == 1
        assert patches[0][1] == COARSE_LEVEL

    def test_large_image_gets_fine_patches(self):
        patches = generate_patches(896, 896)
        levels = [level for _, level in patches]
        assert levels.count(COARSE_LEVEL) == 1
        assert levels.count(FINE_LEVEL) >= 9

    def test_paper_example_448_gives_ten_vectors(self):
        # §4.3: a 448x448 image maps to 1 coarse + 9 fine patches.
        patches = generate_patches(448, 448)
        assert len(patches) == 10

    def test_disabled_multiscale(self):
        patches = generate_patches(2000, 2000, MultiscaleConfig(enabled=False))
        assert len(patches) == 1

    def test_patches_stay_inside_image(self):
        for box, _ in generate_patches(1280, 720):
            assert box.x >= 0 and box.y >= 0
            assert box.x2 <= 1280 and box.y2 <= 720

    def test_wide_image_adds_patches_along_width(self):
        wide = generate_patches(1280, 720)
        square = generate_patches(720, 720)
        assert len(wide) > len(square)

    def test_pool_image_scores_takes_max(self):
        scores = pool_image_scores(np.array([0.1, 0.9, 0.5]), np.array([7, 7, 8]))
        assert scores[7] == pytest.approx(0.9)
        assert scores[8] == pytest.approx(0.5)


class TestFeedback:
    def test_positive_requires_boxes(self):
        with pytest.raises(SessionError):
            BoxFeedback(image_id=1, relevant=True, boxes=())

    def test_negative_must_not_have_boxes(self):
        with pytest.raises(SessionError):
            BoxFeedback(image_id=1, relevant=False, boxes=(BoundingBox(0, 0, 1, 1),))

    def test_map_counts(self):
        feedback = FeedbackMap()
        feedback.update(BoxFeedback.positive(1, [BoundingBox(0, 0, 5, 5)]))
        feedback.update(BoxFeedback.negative(2))
        assert feedback.positive_count == 1
        assert feedback.negative_count == 1
        assert 1 in feedback and 3 not in feedback

    def test_update_overwrites(self):
        feedback = FeedbackMap()
        feedback.update(BoxFeedback.negative(1))
        feedback.update(BoxFeedback.positive(1, [BoundingBox(0, 0, 5, 5)]))
        assert feedback.positive_count == 1
        assert len(feedback) == 1

    def test_patch_labels_from_boxes(self, tiny_index):
        dataset = tiny_index.dataset
        category = "cat_easy"
        image_id = next(iter(dataset.positive_image_ids(category)))
        image = dataset.image(image_id)
        boxes = image.ground_truth_boxes(category)
        feedback = FeedbackMap()
        feedback.update(BoxFeedback.positive(image_id, boxes))
        features, labels, vector_ids = feedback.to_patch_labels(tiny_index)
        assert features.shape[0] == labels.shape[0] == vector_ids.shape[0]
        assert labels.max() == 1.0
        # Every labelled vector belongs to the image that received feedback.
        for vector_id in vector_ids:
            assert tiny_index.store.record(int(vector_id)).image_id == image_id

    def test_negative_image_gives_all_zero_labels(self, tiny_index):
        image_id = tiny_index.dataset.images[0].image_id
        feedback = FeedbackMap()
        feedback.update(BoxFeedback.negative(image_id))
        _, labels, _ = feedback.to_patch_labels(tiny_index)
        assert labels.max() == 0.0

    def test_empty_map_gives_empty_training_set(self, tiny_index):
        features, labels, ids = FeedbackMap().to_patch_labels(tiny_index)
        assert features.shape == (0, tiny_index.store.dim)
        assert labels.size == 0 and ids.size == 0


class TestPropagation:
    @pytest.fixture()
    def two_cluster_graph(self, rng):
        centers = normalize_rows(rng.standard_normal((2, 16)))
        cluster_a = normalize_rows(centers[0] + 0.05 * rng.standard_normal((30, 16)))
        cluster_b = normalize_rows(centers[1] + 0.05 * rng.standard_normal((30, 16)))
        vectors = np.vstack([cluster_a, cluster_b])
        return vectors, build_knn_graph(vectors, KnnGraphConfig(k=5))

    def test_labels_spread_within_cluster(self, two_cluster_graph):
        _, graph = two_cluster_graph
        scores = propagate_labels(graph, {0: 1.0, 30: 0.0}, iterations=50)
        assert scores[:30].mean() > 0.7
        assert scores[30:].mean() < 0.3

    def test_labeled_nodes_are_clamped(self, two_cluster_graph):
        _, graph = two_cluster_graph
        scores = propagate_labels(graph, {0: 1.0, 30: 0.0})
        assert scores[0] == pytest.approx(1.0)
        assert scores[30] == pytest.approx(0.0)

    def test_out_of_range_label_rejected(self, two_cluster_graph):
        from repro.exceptions import IndexingError

        _, graph = two_cluster_graph
        with pytest.raises(IndexingError):
            propagate_labels(graph, {10**6: 1.0})

    def test_db_matrix_shape_and_symmetry(self, two_cluster_graph):
        vectors, graph = two_cluster_graph
        matrix = compute_db_alignment_matrix(vectors, graph)
        assert matrix.shape == (16, 16)
        assert np.allclose(matrix, matrix.T)

    def test_smoothness_prefers_cluster_center_direction(self, two_cluster_graph, rng):
        vectors, graph = two_cluster_graph
        matrix = compute_db_alignment_matrix(vectors, graph)
        center = normalize_vector(vectors[:30].mean(axis=0))
        random_direction = normalize_vector(rng.standard_normal(16))
        # The quadratic form penalises directions that vary rapidly across
        # dense graph regions; a cluster-center direction should not be worse
        # than an arbitrary one on average.
        assert smoothness_penalty(matrix, center) <= smoothness_penalty(matrix, random_direction) * 2

    def test_mismatched_vector_count_rejected(self, two_cluster_graph):
        from repro.exceptions import IndexingError

        vectors, graph = two_cluster_graph
        with pytest.raises(IndexingError):
            compute_db_alignment_matrix(vectors[:-1], graph)


class TestAligner:
    def test_no_feedback_keeps_text_vector(self, rng):
        query = normalize_vector(rng.standard_normal(16))
        aligner = SeeSawQueryAligner(query, config=SeeSawConfig(embedding_dim=16))
        result = aligner.align(np.zeros((0, 16)), np.zeros(0))
        assert np.allclose(result.query_vector, query)

    def test_alignment_moves_toward_positives(self, rng):
        dim = 16
        concept = normalize_vector(rng.standard_normal(dim))
        query = normalize_vector(concept + rng.standard_normal(dim))
        positives = normalize_rows(concept + 0.05 * rng.standard_normal((5, dim)))
        negatives = normalize_rows(rng.standard_normal((5, dim)))
        features = np.vstack([positives, negatives])
        labels = np.array([1.0] * 5 + [0.0] * 5)
        aligner = SeeSawQueryAligner(query, config=SeeSawConfig(embedding_dim=dim))
        result = aligner.align(features, labels)
        assert cosine_similarity(result.query_vector, concept) > cosine_similarity(query, concept)

    def test_result_is_unit_norm(self, rng):
        dim = 8
        query = normalize_vector(rng.standard_normal(dim))
        features = normalize_rows(rng.standard_normal((6, dim)))
        labels = np.array([1, 0, 1, 0, 0, 1], dtype=float)
        aligner = SeeSawQueryAligner(query, config=SeeSawConfig(embedding_dim=dim))
        result = aligner.align(features, labels)
        assert np.linalg.norm(result.query_vector) == pytest.approx(1.0)

    def test_reset_restores_text_vector(self, rng):
        dim = 8
        query = normalize_vector(rng.standard_normal(dim))
        aligner = SeeSawQueryAligner(query, config=SeeSawConfig(embedding_dim=dim))
        aligner.align(normalize_rows(rng.standard_normal((4, dim))), np.array([1.0, 0, 0, 1]))
        aligner.reset()
        assert np.allclose(aligner.current_query_vector, query)

    def test_zero_query_vector_rejected(self):
        from repro.exceptions import OptimizationError

        with pytest.raises(OptimizationError):
            SeeSawQueryAligner(np.zeros(8))

    def test_clip_alignment_keeps_query_closer_to_text(self, rng):
        dim = 16
        query = normalize_vector(rng.standard_normal(dim))
        features = normalize_rows(rng.standard_normal((8, dim)))
        labels = (rng.random(8) < 0.5).astype(float)
        labels[0] = 1.0
        labels[1] = 0.0
        anchored = SeeSawQueryAligner(
            query, config=SeeSawConfig(embedding_dim=dim)
        ).align(features, labels)
        free_config = SeeSawConfig(embedding_dim=dim, use_clip_alignment=False, use_db_alignment=False)
        free = SeeSawQueryAligner(query, config=free_config).align(features, labels)
        assert cosine_similarity(anchored.query_vector, query) >= cosine_similarity(
            free.query_vector, query
        ) - 1e-9


class TestIndexing:
    def test_index_counts(self, tiny_index, tiny_dataset):
        assert tiny_index.vector_count == len(tiny_index.store)
        assert set(tiny_index.image_ids) == {image.image_id for image in tiny_dataset}
        assert tiny_index.vector_count > len(tiny_dataset)  # multiscale adds patches

    def test_vector_ids_round_trip(self, tiny_index):
        for image_id in list(tiny_index.image_ids)[:5]:
            for vector_id in tiny_index.vector_ids_for_image(image_id):
                assert tiny_index.store.record(vector_id).image_id == image_id

    def test_coarse_vector_ids_are_coarse(self, tiny_index):
        for vector_id in tiny_index.coarse_vector_ids():
            assert tiny_index.store.record(int(vector_id)).is_coarse

    def test_db_matrix_present_and_square(self, tiny_index):
        dim = tiny_index.store.dim
        assert tiny_index.db_matrix.shape == (dim, dim)

    def test_unknown_image_raises(self, tiny_index):
        from repro.exceptions import IndexingError

        with pytest.raises(IndexingError):
            tiny_index.vector_ids_for_image(10**9)

    def test_build_report(self, tiny_index, tiny_dataset):
        report = tiny_index.build_report
        assert report.image_count == len(tiny_dataset)
        assert report.vector_count == tiny_index.vector_count
        assert report.vectors_per_image >= 1.0

    def test_coarse_only_build(self, tiny_dataset, tiny_clip):
        config = SeeSawConfig(embedding_dim=64, multiscale=MultiscaleConfig(enabled=False))
        index = SeeSawIndex.build(tiny_dataset, tiny_clip, config)
        assert index.vector_count == len(tiny_dataset)

    def test_forest_store_build(self, tiny_dataset, tiny_clip):
        config = SeeSawConfig(embedding_dim=64)
        index = SeeSawIndex.build(
            tiny_dataset, tiny_clip, config, store_kind="forest", build_graph=False
        )
        assert index.knn_graph is None and index.db_matrix is None
        assert index.vector_count > 0


class TestSearchContext:
    def test_top_unseen_images_excludes_seen(self, tiny_index):
        context = SearchContext(tiny_index)
        query = tiny_index.embed_query("a cat_easy")
        first = context.top_unseen_images(query, 3, set())
        excluded = {result.image_id for result in first}
        second = context.top_unseen_images(query, 3, excluded)
        assert not excluded & {result.image_id for result in second}

    def test_results_are_distinct_images_in_score_order(self, tiny_index):
        context = SearchContext(tiny_index)
        query = tiny_index.embed_query("a cat_easy")
        results = context.top_unseen_images(query, 5, set())
        ids = [result.image_id for result in results]
        scores = [result.score for result in results]
        assert len(ids) == len(set(ids))
        assert scores == sorted(scores, reverse=True)

    def test_score_all_images_matches_store(self, tiny_index):
        context = SearchContext(tiny_index)
        query = tiny_index.embed_query("a cat_easy")
        scores = context.score_all_images(query)
        assert set(scores) == set(tiny_index.image_ids)


class TestSearchSession:
    def test_listing1_loop(self, tiny_index):
        session = SearchSession(
            index=tiny_index,
            method=SeeSawSearchMethod(tiny_index.config),
            text_query="a cat_easy",
            batch_size=2,
        )
        batch = session.next_batch()
        assert len(batch) == 2
        for result in batch:
            relevant = tiny_index.dataset.is_relevant(result.image_id, "cat_easy")
            boxes = tiny_index.dataset.image(result.image_id).ground_truth_boxes("cat_easy")
            session.give_feedback(result.image_id, relevant, boxes)
        assert session.stats.rounds == 1
        assert len(session.shown_image_ids) == 2

    def test_next_batch_requires_feedback_first(self, tiny_index):
        session = SearchSession(
            index=tiny_index, method=SeeSawSearchMethod(tiny_index.config), text_query="a cat_easy"
        )
        session.next_batch()
        with pytest.raises(SessionError):
            session.next_batch()

    def test_feedback_for_unknown_image_rejected(self, tiny_index):
        session = SearchSession(
            index=tiny_index, method=SeeSawSearchMethod(tiny_index.config), text_query="a cat_easy"
        )
        session.next_batch()
        with pytest.raises(SessionError):
            session.give_feedback(10**9, True)

    def test_relevant_without_boxes_defaults_to_full_image(self, tiny_index):
        session = SearchSession(
            index=tiny_index, method=SeeSawSearchMethod(tiny_index.config), text_query="a cat_easy"
        )
        batch = session.next_batch()
        session.give_feedback(batch[0].image_id, True)
        stored = session.feedback.get(batch[0].image_id)
        assert stored.relevant and len(stored.boxes) == 1

    def test_no_repeated_images_over_session(self, tiny_index):
        session = SearchSession(
            index=tiny_index, method=SeeSawSearchMethod(tiny_index.config), text_query="a cat_hard"
        )
        for _ in range(10):
            batch = session.next_batch(1)
            if not batch:
                break
            result = batch[0]
            relevant = tiny_index.dataset.is_relevant(result.image_id, "cat_hard")
            boxes = tiny_index.dataset.image(result.image_id).ground_truth_boxes("cat_hard")
            session.give_feedback(result.image_id, relevant, boxes)
        shown = session.shown_image_ids
        assert len(shown) == len(set(shown))

    def test_invalid_batch_size(self, tiny_index):
        with pytest.raises(SessionError):
            SearchSession(
                index=tiny_index,
                method=SeeSawSearchMethod(tiny_index.config),
                text_query="a cat_easy",
                batch_size=0,
            )
