"""Tests for the benchmark harness, reporting, user model, and service layer."""

import numpy as np
import pytest

from repro.baselines import ZeroShotClipMethod
from repro.bench.reporting import format_cdf, format_mean_ap_matrix, format_table
from repro.bench.runner import BenchmarkSettings, run_query_set, run_search_task
from repro.bench.simulate import OracleUser
from repro.bench.tasks import BenchmarkQuery, queries_for_dataset
from repro.config import BenchmarkTaskConfig
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.exceptions import BenchmarkError
from repro.server import (
    BoxPayload,
    FeedbackRequest,
    SeeSawService,
    StartSessionRequest,
)
from repro.server.api import BoxPayload  # noqa: F811 - explicit import for clarity
from repro.users.model import (
    BASELINE_TIMING,
    SEESAW_TIMING,
    AnnotationTimeModel,
    UserTimingProfile,
)
from repro.users.study import StudyQuery, simulate_user_study


class TestTasks:
    def test_queries_enumerate_categories(self, tiny_dataset):
        queries = queries_for_dataset(tiny_dataset, min_positives=3)
        names = {query.category for query in queries}
        assert names <= set(tiny_dataset.category_names)
        for query in queries:
            assert query.positives >= 3
            assert query.key.startswith("tiny/")

    def test_max_queries_subsamples_deterministically(self, tiny_dataset):
        first = queries_for_dataset(tiny_dataset, max_queries=3, seed=1)
        second = queries_for_dataset(tiny_dataset, max_queries=3, seed=1)
        assert [q.category for q in first] == [q.category for q in second]
        assert len(first) <= max(3, 2)

    def test_named_categories_kept_when_subsampling(self, bdd_bundle, tiny_scale):
        queries = bdd_bundle.queries(tiny_scale)
        names = {query.category for query in queries}
        assert "wheelchair" in names or "car" in names

    def test_invalid_min_positives(self, tiny_dataset):
        with pytest.raises(BenchmarkError):
            queries_for_dataset(tiny_dataset, min_positives=0)


class TestOracle:
    def test_judgement_matches_ground_truth(self, tiny_dataset):
        oracle = OracleUser(tiny_dataset, "cat_easy")
        positive_id = next(iter(tiny_dataset.positive_image_ids("cat_easy")))
        negative_id = next(
            image.image_id
            for image in tiny_dataset
            if not image.contains_category("cat_easy")
        )
        assert oracle.judge(positive_id).relevant
        assert oracle.judge(positive_id).boxes
        assert not oracle.judge(negative_id).relevant

    def test_total_relevant(self, tiny_dataset):
        oracle = OracleUser(tiny_dataset, "cat_easy")
        assert oracle.total_relevant == tiny_dataset.positive_count("cat_easy")


class TestRunner:
    def test_outcome_fields(self, tiny_index):
        query = BenchmarkQuery(
            dataset="tiny",
            category="cat_easy",
            prompt="a cat_easy",
            positives=tiny_index.dataset.positive_count("cat_easy"),
        )
        settings = BenchmarkSettings(task=BenchmarkTaskConfig(target_results=3, max_images=12))
        outcome = run_search_task(tiny_index, SeeSawSearchMethod(tiny_index.config), query, settings)
        assert 0.0 <= outcome.average_precision <= 1.0
        assert outcome.shown <= 12
        assert outcome.found <= 12
        assert outcome.seconds_per_round >= 0.0

    def test_dataset_mismatch_rejected(self, tiny_index):
        query = BenchmarkQuery(dataset="other", category="cat_easy", prompt="a cat_easy", positives=5)
        with pytest.raises(BenchmarkError):
            run_search_task(tiny_index, ZeroShotClipMethod(), query)

    def test_run_query_set_keys(self, tiny_index):
        queries = queries_for_dataset(tiny_index.dataset, min_positives=3)[:2]
        settings = BenchmarkSettings(task=BenchmarkTaskConfig(target_results=3, max_images=9))
        outcomes = run_query_set(tiny_index, ZeroShotClipMethod, queries, settings)
        assert set(outcomes) == {query.key for query in queries}

    def test_easy_query_reaches_target(self, tiny_index):
        query = BenchmarkQuery(
            dataset="tiny",
            category="cat_easy",
            prompt="a cat_easy",
            positives=tiny_index.dataset.positive_count("cat_easy"),
        )
        settings = BenchmarkSettings(task=BenchmarkTaskConfig(target_results=3, max_images=20))
        outcome = run_search_task(tiny_index, ZeroShotClipMethod(), query, settings)
        assert outcome.found >= 1


class TestReporting:
    def test_format_table_alignment_and_nan(self):
        text = format_table(["a", "b"], [["x", 0.5], ["y", float("nan")]])
        assert "NA" in text and "0.50" in text

    def test_format_cdf(self):
        text = format_cdf({"s": [0.1, 0.6]}, thresholds=(0.5,))
        assert "P(x<=0.5)" in text and "0.50" in text

    def test_format_mean_ap_matrix_average_column(self):
        text = format_mean_ap_matrix({"m": {"d1": 0.4, "d2": 0.6}}, ["d1", "d2"])
        assert "0.50" in text


class TestUserModel:
    def test_marking_takes_longer_than_skipping(self):
        model = AnnotationTimeModel(SEESAW_TIMING, seed=0)
        skips = np.mean([model.time_for_image(False) for _ in range(200)])
        marks = np.mean([model.time_for_image(True) for _ in range(200)])
        assert marks > skips

    def test_seesaw_marking_slower_than_baseline(self):
        baseline = AnnotationTimeModel(BASELINE_TIMING, seed=1)
        seesaw = AnnotationTimeModel(SEESAW_TIMING, seed=1)
        assert seesaw.expected_time(True) > baseline.expected_time(True)

    def test_times_respect_minimum(self):
        profile = UserTimingProfile(skip_mean=0.6, mark_mean=0.7, skip_std=5.0, mark_std=5.0)
        model = AnnotationTimeModel(profile, seed=2)
        assert min(model.time_for_image(False) for _ in range(100)) >= profile.minimum

    def test_confidence_interval_contains_mean(self):
        model = AnnotationTimeModel(BASELINE_TIMING, seed=3)
        mean, half_width = model.confidence_interval(True, samples=500)
        assert abs(mean - BASELINE_TIMING.mark_mean) < 3 * half_width + 0.2

    def test_invalid_profile(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            UserTimingProfile(skip_mean=0.0, mark_mean=1.0)


class TestUserStudy:
    def test_study_produces_results_for_both_systems(self, tiny_index):
        queries = [StudyQuery(category="cat_easy", prompt="a cat_easy", difficulty="easy")]
        results = simulate_user_study(
            tiny_index, queries, users_per_system=2, target_results=3, time_budget_seconds=60
        )
        systems = {result.system for result in results}
        assert systems == {"clip_only", "seesaw"}
        for result in results:
            assert 0.0 <= result.median_seconds <= 60.0
            assert 0.0 <= result.completion_rate <= 1.0

    def test_invalid_difficulty(self):
        with pytest.raises(BenchmarkError):
            StudyQuery(category="x", prompt="x", difficulty="medium")


class TestService:
    def test_full_session_flow(self, tiny_dataset, tiny_clip):
        from repro.config import SeeSawConfig

        service = SeeSawService(SeeSawConfig(embedding_dim=64))
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=False)
        assert "tiny" in service.dataset_names
        info = service.start_session(
            StartSessionRequest(dataset="tiny", text_query="a cat_easy", batch_size=2)
        )
        response = service.next_results(info.session_id)
        assert len(response.items) == 2
        for item in response.items:
            relevant = tiny_dataset.is_relevant(item.image_id, "cat_easy")
            boxes = [
                BoxPayload(box.x, box.y, box.width, box.height)
                for box in tiny_dataset.image(item.image_id).ground_truth_boxes("cat_easy")
            ]
            service.give_feedback(
                FeedbackRequest(
                    session_id=info.session_id,
                    image_id=item.image_id,
                    relevant=relevant,
                    boxes=boxes,
                )
            )
        updated = service.session_info(info.session_id)
        assert updated.total_shown == 2
        assert updated.rounds == 1
        service.close_session(info.session_id)
        from repro.exceptions import SessionError

        with pytest.raises(SessionError):
            service.session_info(info.session_id)

    def test_unknown_dataset_rejected(self):
        from repro.exceptions import SessionError

        service = SeeSawService()
        with pytest.raises(SessionError):
            service.start_session(StartSessionRequest(dataset="missing", text_query="a dog"))
