"""Tests for the from-scratch L-BFGS optimiser."""

import numpy as np
import pytest

from repro.config import OptimizerConfig
from repro.exceptions import OptimizationError
from repro.optim.lbfgs import lbfgs_minimize
from repro.optim.objective import numerical_gradient


def quadratic(center: np.ndarray, scales: np.ndarray):
    """A separable convex quadratic with known minimiser."""

    def objective(x: np.ndarray) -> tuple[float, np.ndarray]:
        diff = x - center
        value = float(0.5 * np.sum(scales * diff**2))
        return value, scales * diff

    return objective


class TestLbfgs:
    def test_minimises_quadratic(self):
        center = np.array([1.0, -2.0, 3.0])
        scales = np.array([1.0, 10.0, 100.0])
        result = lbfgs_minimize(quadratic(center, scales), np.zeros(3))
        assert result.converged
        assert np.allclose(result.parameters, center, atol=1e-4)

    def test_minimises_rosenbrock(self):
        def rosenbrock(x: np.ndarray) -> tuple[float, np.ndarray]:
            a, b = 1.0, 100.0
            value = (a - x[0]) ** 2 + b * (x[1] - x[0] ** 2) ** 2
            grad = np.array(
                [
                    -2 * (a - x[0]) - 4 * b * x[0] * (x[1] - x[0] ** 2),
                    2 * b * (x[1] - x[0] ** 2),
                ]
            )
            return float(value), grad

        # The backtracking-only line search converges more slowly than a
        # strong-Wolfe search on this classic ill-conditioned valley, so it
        # gets a generous iteration budget (the SeeSaw loss needs far fewer).
        config = OptimizerConfig(max_iterations=1000, gradient_tolerance=1e-8)
        result = lbfgs_minimize(rosenbrock, np.array([-1.2, 1.0]), config)
        assert np.allclose(result.parameters, [1.0, 1.0], atol=1e-3)

    def test_converges_faster_than_iteration_cap(self):
        result = lbfgs_minimize(quadratic(np.ones(5), np.ones(5)), np.zeros(5))
        assert result.iterations < 20

    def test_logistic_regression_objective(self, rng):
        true_w = np.array([2.0, -1.0, 0.5])
        features = rng.standard_normal((200, 3))
        labels = (features @ true_w + 0.1 * rng.standard_normal(200) > 0).astype(float)

        def objective(w: np.ndarray) -> tuple[float, np.ndarray]:
            logits = features @ w
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            value = -np.sum(
                labels * np.log(probabilities + 1e-12)
                + (1 - labels) * np.log(1 - probabilities + 1e-12)
            ) + 0.5 * np.sum(w**2)
            grad = features.T @ (probabilities - labels) + w
            return float(value), grad

        result = lbfgs_minimize(objective, np.zeros(3), OptimizerConfig(max_iterations=100))
        predictions = (features @ result.parameters > 0).astype(float)
        assert np.mean(predictions == labels) > 0.9

    def test_non_finite_objective_rejected(self):
        def bad(x: np.ndarray) -> tuple[float, np.ndarray]:
            return float("nan"), x

        with pytest.raises(OptimizationError):
            lbfgs_minimize(bad, np.zeros(2))

    def test_initial_parameters_not_mutated(self):
        start = np.array([5.0, 5.0])
        lbfgs_minimize(quadratic(np.zeros(2), np.ones(2)), start)
        assert np.allclose(start, [5.0, 5.0])

    def test_already_converged(self):
        result = lbfgs_minimize(quadratic(np.zeros(2), np.ones(2)), np.zeros(2))
        assert result.converged
        assert result.iterations == 0


class TestNumericalGradient:
    def test_matches_analytic_gradient(self):
        objective = quadratic(np.array([0.5, -0.5]), np.array([2.0, 3.0]))
        point = np.array([1.0, 1.0])
        _, analytic = objective(point)
        numeric = numerical_gradient(objective, point)
        assert np.allclose(analytic, numeric, atol=1e-5)
