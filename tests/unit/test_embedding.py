"""Tests for the synthetic CLIP embedding substrate."""

import numpy as np
import pytest

from repro.data.geometry import BoundingBox
from repro.embedding.calibration import PlattScaler, expected_calibration_error
from repro.embedding.concepts import ConceptSpace
from repro.embedding.synthetic_clip import SyntheticClip, _normalize_query_text
from repro.exceptions import EmbeddingError
from repro.utils.linalg import cosine_similarity


class TestConceptSpace:
    def test_concept_vectors_are_unit_and_stable(self):
        space = ConceptSpace(dim=32, seed=0)
        first = space.concept_vector("dog")
        second = space.concept_vector("dog")
        assert np.allclose(first, second)
        assert np.linalg.norm(first) == pytest.approx(1.0)

    def test_different_categories_differ(self):
        space = ConceptSpace(dim=64, seed=0)
        assert abs(cosine_similarity(space.concept_vector("dog"), space.concept_vector("cat"))) < 0.5

    def test_text_vector_deficit_controls_angle(self):
        space = ConceptSpace(dim=64, seed=0)
        concept = space.concept_vector("dog")
        aligned = space.text_vector("dog", 0.0)
        misaligned = space.text_vector("dog", 1.0)
        assert np.allclose(aligned, concept)
        assert cosine_similarity(misaligned, concept) == pytest.approx(np.cos(1.0), abs=1e-6)

    def test_negative_deficit_rejected(self):
        with pytest.raises(EmbeddingError):
            ConceptSpace(dim=8).text_vector("dog", -0.1)

    def test_noise_has_requested_norm(self):
        space = ConceptSpace(dim=32, seed=0)
        noise = space.instance_noise(1, 2, 0.3)
        assert np.linalg.norm(noise) == pytest.approx(0.3)
        assert np.allclose(space.instance_noise(1, 2, 0.0), 0.0)

    def test_invalid_dimension(self):
        with pytest.raises(EmbeddingError):
            ConceptSpace(dim=1)


class TestQueryNormalisation:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("a wheelchair", "wheelchair"),
            ("A Dog", "dog"),
            ("a photo of a dog", "dog"),
            ("car with open door", "car_with_open_door"),
        ],
    )
    def test_prompts_map_to_category_names(self, raw, expected):
        assert _normalize_query_text(raw) == expected


class TestSyntheticClip:
    def test_embeddings_are_unit_norm(self, tiny_dataset, tiny_clip):
        image = tiny_dataset.images[0]
        assert np.linalg.norm(tiny_clip.embed_image(image)) == pytest.approx(1.0)
        assert np.linalg.norm(tiny_clip.embed_text("a cat_easy")) == pytest.approx(1.0)

    def test_known_category_uses_deficit(self, tiny_dataset, tiny_clip):
        easy = tiny_clip.embed_text("a cat_easy")
        easy_concept = tiny_clip.concept_vector("cat_easy")
        hard = tiny_clip.embed_text("a cat_hard")
        hard_concept = tiny_clip.concept_vector("cat_hard")
        assert cosine_similarity(easy, easy_concept) > cosine_similarity(hard, hard_concept)

    def test_unknown_text_still_embeds(self, tiny_clip):
        vector = tiny_clip.embed_text("a completely unknown thing")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_embed_text_is_deterministic(self, tiny_clip):
        assert np.allclose(tiny_clip.embed_text("a cat_easy"), tiny_clip.embed_text("a cat_easy"))

    def test_region_with_object_aligns_with_concept(self, tiny_dataset, tiny_clip):
        category = "cat_easy"
        image_id = next(iter(tiny_dataset.positive_image_ids(category)))
        image = tiny_dataset.image(image_id)
        instance = image.instances_of(category)[0]
        region_vector = tiny_clip.embed_region(image, instance.box)
        concept = tiny_clip.concept_vector(category)
        background_only = [img for img in tiny_dataset if not img.contains_category(category)][0]
        other_vector = tiny_clip.embed_image(background_only)
        assert cosine_similarity(region_vector, concept) > cosine_similarity(other_vector, concept)

    def test_small_object_is_diluted_in_coarse_embedding(self, tiny_clip):
        from repro.data.image import ObjectInstance, SyntheticImage

        small_object = ObjectInstance("cat_easy", BoundingBox(10, 10, 40, 40), instance_id=1)
        image = SyntheticImage(
            image_id=999, width=640, height=480, context="indoor", objects=(small_object,)
        )
        concept = tiny_clip.concept_vector("cat_easy")
        coarse = tiny_clip.embed_image(image)
        tight = tiny_clip.embed_region(image, BoundingBox(0, 0, 80, 80))
        assert cosine_similarity(tight, concept) > cosine_similarity(coarse, concept)

    def test_embed_images_batch(self, tiny_dataset, tiny_clip):
        batch = tiny_clip.embed_images(list(tiny_dataset.images[:5]))
        assert batch.shape == (5, tiny_clip.dim)

    def test_unknown_category_concept_raises(self, tiny_clip):
        with pytest.raises(EmbeddingError):
            tiny_clip.concept_vector("nope")

    def test_requires_categories(self):
        with pytest.raises(EmbeddingError):
            SyntheticClip(categories=[])


class TestPlattScaler:
    def test_calibration_improves_ece(self, rng):
        # Raw scores: informative but badly scaled (like CLIP cosine scores).
        labels = rng.random(400) < 0.3
        scores = 0.1 * labels + 0.05 * rng.standard_normal(400)
        raw_probabilities = np.clip((scores + 1) / 2, 0, 1)
        calibrated = PlattScaler().fit_transform(scores, labels.astype(float))
        raw_ece = expected_calibration_error(raw_probabilities, labels.astype(float))
        calibrated_ece = expected_calibration_error(calibrated, labels.astype(float))
        assert calibrated_ece < raw_ece

    def test_transform_monotonic_in_scores(self):
        scaler = PlattScaler().fit(np.array([-1.0, 0.0, 1.0]), np.array([0.0, 0.0, 1.0]))
        probabilities = scaler.transform(np.array([-1.0, 0.0, 1.0]))
        assert probabilities[0] < probabilities[1] < probabilities[2]

    def test_empty_fit_rejected(self):
        from repro.exceptions import OptimizationError

        with pytest.raises(OptimizationError):
            PlattScaler().fit(np.array([]), np.array([]))

    def test_mismatched_lengths_rejected(self):
        from repro.exceptions import OptimizationError

        with pytest.raises(OptimizationError):
            PlattScaler().fit(np.array([1.0, 2.0]), np.array([1.0]))
