"""The fault-injection subsystem: plan, decider, and both injectors.

Determinism is the load-bearing property — a chaos run that cannot be
replayed is a flake generator, not a test — so the decider assertions pin
the decision stream to ``(seed, opportunity-index)`` exactly.  The injector
tests drive a fake inner client / handler and a fake clock, so every fault
family is exercised without sockets or sleeps.
"""

from __future__ import annotations

import pytest

from repro.bench.scenarios import TailGates, TrafficScenario, get_scenario
from repro.exceptions import (
    ConfigurationError,
    ConnectionFailedError,
    DeadlineExceededError,
    InternalServiceError,
    TransportError,
)
from repro.faults import FaultDecider, FaultPlan
from repro.faults.client import FaultyClient
from repro.faults.inject import (
    KIND_ERROR,
    KIND_NONE,
    KIND_RESET,
    KIND_SKEW,
    KIND_TRUNCATE,
)
from repro.faults.middleware import ChaosMiddleware
from repro.obs import MetricsRegistry
from repro.server.api import (
    NextResultsResponse,
    ResultItem,
    SessionInfo,
    StartSessionRequest,
)
from repro.server.deadlines import check_deadline, current_deadline
from repro.server.middleware import Request, Response
from repro.server.protocol import SeeSawClientProtocol


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_round_trips_through_json(self):
        plan = FaultPlan(
            seed=11,
            latency_ms=40.0,
            latency_probability=0.2,
            error_probability=0.1,
            reset_probability=0.05,
            truncate_probability=0.03,
            skew_probability=0.02,
            window_start_seconds=1.0,
            window_stop_seconds=3.0,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"error_probability": 1.5}, "error_probability"),
            ({"reset_probability": -0.1}, "reset_probability"),
            ({"latency_ms": -1.0}, "latency_ms"),
            ({"window_start_seconds": -1.0}, "window_start_seconds"),
            (
                {"window_start_seconds": 2.0, "window_stop_seconds": 1.0},
                "window_stop_seconds",
            ),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            FaultPlan(**kwargs)

    def test_unknown_key_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="Malformed fault plan"):
            FaultPlan.from_json({"surprise": 1})

    def test_any_faults(self):
        assert not FaultPlan(seed=1, latency_ms=100.0).any_faults
        assert FaultPlan(seed=1, error_probability=0.1).any_faults
        assert FaultPlan(seed=1, latency_ms=10.0, latency_probability=0.5).any_faults


# ----------------------------------------------------------------------
# the decider
# ----------------------------------------------------------------------
class TestFaultDecider:
    def test_decision_stream_is_deterministic_in_seed_and_index(self):
        plan = FaultPlan(
            seed=42,
            error_probability=0.3,
            reset_probability=0.2,
            latency_ms=10.0,
            latency_probability=0.4,
        )
        first = [FaultDecider(plan, clock=FakeClock()).decide() for _ in range(1)]
        a = FaultDecider(plan, clock=FakeClock())
        b = FaultDecider(plan, clock=FakeClock())
        stream_a = [a.decide() for _ in range(64)]
        stream_b = [b.decide() for _ in range(64)]
        assert stream_a == stream_b
        assert stream_a[0] == first[0]
        assert any(outcome.injects for outcome in stream_a)

    def test_different_seed_different_stream(self):
        kinds = {}
        for seed in (1, 2):
            decider = FaultDecider(
                FaultPlan(seed=seed, error_probability=0.5), clock=FakeClock()
            )
            kinds[seed] = [decider.decide().kind for _ in range(64)]
        assert kinds[1] != kinds[2]

    def test_window_gates_faults(self):
        clock = FakeClock()
        plan = FaultPlan(
            seed=3,
            error_probability=1.0,
            window_start_seconds=1.0,
            window_stop_seconds=2.0,
        )
        decider = FaultDecider(plan, clock=clock)
        assert decider.decide().kind == KIND_NONE  # before the window
        clock.advance(1.5)
        assert decider.in_window()
        assert decider.decide().kind == KIND_ERROR
        clock.advance(1.0)
        assert not decider.in_window()
        assert decider.decide().kind == KIND_NONE  # after the window

    def test_arm_restarts_window_and_counter(self):
        clock = FakeClock()
        plan = FaultPlan(seed=3, error_probability=1.0, window_stop_seconds=1.0)
        decider = FaultDecider(plan, clock=clock)
        first = decider.decide()
        assert first.index == 0 and first.kind == KIND_ERROR
        clock.advance(2.0)
        assert decider.decide().kind == KIND_NONE  # window closed
        decider.arm()
        rearmed = decider.decide()
        assert rearmed.index == 0 and rearmed.kind == KIND_ERROR

    def test_priority_order_one_kind_per_opportunity(self):
        # All probabilities 1.0: the priority chain must always pick skew.
        plan = FaultPlan(
            seed=9,
            error_probability=1.0,
            reset_probability=1.0,
            truncate_probability=1.0,
            skew_probability=1.0,
        )
        decider = FaultDecider(plan, clock=FakeClock())
        assert all(decider.decide().kind == KIND_SKEW for _ in range(16))


# ----------------------------------------------------------------------
# server-side injector
# ----------------------------------------------------------------------
def _plan_only(kind: str, **extra) -> FaultPlan:
    field = {
        KIND_ERROR: "error_probability",
        KIND_RESET: "reset_probability",
        KIND_TRUNCATE: "truncate_probability",
        KIND_SKEW: "skew_probability",
    }[kind]
    return FaultPlan(seed=5, **{field: 1.0}, **extra)


class TestChaosMiddleware:
    def _handler(self, request: Request) -> Response:
        return Response(status=200, payload={})

    def test_error_kind_raises_typed_500(self):
        registry = MetricsRegistry()
        middleware = ChaosMiddleware(_plan_only(KIND_ERROR), registry=registry)
        with pytest.raises(InternalServiceError, match="chaos"):
            middleware(Request(method="GET", target="/v1/x"), self._handler)
        counter = registry.counter(
            "seesaw_faults_injected_total", "", labels=("kind",)
        )
        assert counter.labels("error").value == 1.0

    def test_latency_sleeps_before_the_handler(self):
        sleeps: "list[float]" = []
        plan = FaultPlan(seed=5, latency_ms=70.0, latency_probability=1.0)
        middleware = ChaosMiddleware(
            plan, registry=MetricsRegistry(), sleep=sleeps.append
        )
        response = middleware(Request(method="GET", target="/v1/x"), self._handler)
        assert response.status == 200
        assert sleeps == [pytest.approx(0.07)]

    def test_connection_level_kinds_are_not_the_servers_to_fake(self):
        middleware = ChaosMiddleware(
            _plan_only(KIND_RESET), registry=MetricsRegistry()
        )
        response = middleware(Request(method="GET", target="/v1/x"), self._handler)
        assert response.status == 200

    @pytest.mark.parametrize("target", ["/healthz", "/v1/metrics", "/v1/capabilities"])
    def test_probe_routes_exempt(self, target):
        middleware = ChaosMiddleware(
            _plan_only(KIND_ERROR), registry=MetricsRegistry()
        )
        assert middleware(Request(method="GET", target=target), self._handler).status == 200

    def test_window_respected(self):
        clock = FakeClock()
        middleware = ChaosMiddleware(
            _plan_only(KIND_ERROR, window_start_seconds=1.0),
            registry=MetricsRegistry(),
            clock=clock,
        )
        assert middleware(Request(method="GET", target="/v1/x"), self._handler).status == 200
        clock.advance(1.5)
        with pytest.raises(InternalServiceError):
            middleware(Request(method="GET", target="/v1/x"), self._handler)


# ----------------------------------------------------------------------
# client-side injector
# ----------------------------------------------------------------------
class FakeInnerClient(SeeSawClientProtocol):
    """A protocol stub that honours the deadline contextvar like the manager."""

    def __init__(self) -> None:
        self.calls: "list[str]" = []
        self.info = SessionInfo(
            session_id="s1",
            dataset="tiny",
            text_query="q",
            total_shown=0,
            positives_found=0,
            rounds=0,
        )

    def _record(self, op: str) -> None:
        check_deadline(op)
        self.calls.append(op)

    def capabilities(self):
        self.calls.append("capabilities")
        return {"features": {}}

    def healthz(self):
        self.calls.append("healthz")
        return {"status": "ok"}

    def metrics_json(self):
        self.calls.append("metrics_json")
        return {"metrics": []}

    def metrics_text(self):
        self.calls.append("metrics_text")
        return ""

    def start_session(self, request: StartSessionRequest) -> SessionInfo:
        self._record("start")
        return self.info

    def session_info(self, session_id: str) -> SessionInfo:
        self._record("info")
        return self.info

    def list_sessions(self, cursor=None, limit=None):
        self._record("list")
        raise NotImplementedError

    def close_session(self, session_id: str) -> None:
        self._record("close")

    def next_results(self, session_id: str, count=None) -> NextResultsResponse:
        self._record("next")
        return NextResultsResponse(
            session_id=session_id, items=(), total_shown=0, positives_found=0
        )

    def stream_next_results(self, session_id: str, count=None):
        self._record("stream")
        for i in range(3):
            yield ResultItem(
                image_id=i, score=0.5, box_x=0, box_y=0, box_width=1, box_height=1
            )

    def batch_next(self, requests):
        self._record("batch")
        return []

    def give_feedback(self, request, idempotency_key=None) -> SessionInfo:
        self._record("feedback")
        return self.info


def _faulty(kind: "str | None", **plan_extra) -> "tuple[FaultyClient, FakeInnerClient]":
    inner = FakeInnerClient()
    plan = (
        _plan_only(kind, **plan_extra)
        if kind is not None
        else FaultPlan(seed=5, **plan_extra)
    )
    return (
        FaultyClient(inner, plan, registry=MetricsRegistry(), sleep=lambda s: None),
        inner,
    )


class TestFaultyClient:
    def test_error_kind_raises_without_touching_inner(self):
        client, inner = _faulty(KIND_ERROR)
        with pytest.raises(InternalServiceError, match="chaos"):
            client.next_results("s1")
        assert inner.calls == []

    def test_reset_kind_alternates_request_sent_by_index(self):
        client, inner = _faulty(KIND_RESET)
        sent: "list[bool]" = []
        for _ in range(4):
            with pytest.raises(ConnectionFailedError) as excinfo:
                client.next_results("s1")
            sent.append(excinfo.value.request_sent)
        assert sent == [False, True, False, True]
        assert inner.calls == []

    def test_truncate_on_unary_call_is_a_mid_read_reset(self):
        client, inner = _faulty(KIND_TRUNCATE)
        with pytest.raises(ConnectionFailedError) as excinfo:
            client.session_info("s1")
        assert excinfo.value.request_sent is True

    def test_truncate_on_stream_yields_prefix_then_typed_error(self):
        client, inner = _faulty(KIND_TRUNCATE)
        items = []
        with pytest.raises(TransportError, match="truncated response"):
            for item in client.stream_next_results("s1"):
                items.append(item)
        assert len(items) == 2  # strict prefix of the 3-item batch
        assert inner.calls == ["stream"]

    def test_skew_runs_the_call_under_an_expired_deadline(self):
        client, inner = _faulty(KIND_SKEW)
        with pytest.raises(DeadlineExceededError):
            client.next_results("s1")
        assert inner.calls == []  # FakeInner's check fired before recording
        assert current_deadline() is None  # the scope did not leak

    def test_latency_decorates_without_failing(self):
        sleeps: "list[float]" = []
        inner = FakeInnerClient()
        plan = FaultPlan(seed=5, latency_ms=30.0, latency_probability=1.0)
        client = FaultyClient(
            inner, plan, registry=MetricsRegistry(), sleep=sleeps.append
        )
        client.next_results("s1")
        assert sleeps == [pytest.approx(0.03)]
        assert inner.calls == ["next"]

    def test_probe_surfaces_never_perturbed(self):
        client, inner = _faulty(KIND_ERROR)
        assert client.healthz() == {"status": "ok"}
        assert client.metrics_json() == {"metrics": []}
        assert client.capabilities() == {"features": {}}
        assert inner.calls == ["healthz", "metrics_json", "capabilities"]

    def test_no_faults_is_a_clean_passthrough(self):
        client, inner = _faulty(None)
        client.next_results("s1")
        client.give_feedback(object())
        assert inner.calls == ["next", "feedback"]

    def test_injections_counted_by_kind(self):
        registry = MetricsRegistry()
        inner = FakeInnerClient()
        client = FaultyClient(
            inner, _plan_only(KIND_ERROR), registry=registry, sleep=lambda s: None
        )
        for _ in range(3):
            with pytest.raises(InternalServiceError):
                client.next_results("s1")
        counter = registry.counter(
            "seesaw_faults_injected_total", "", labels=("kind",)
        )
        assert counter.labels("error").value == 3.0


# ----------------------------------------------------------------------
# chaos scenario plumbing
# ----------------------------------------------------------------------
class TestChaosScenario:
    def test_pack_scenario_round_trips_with_its_fault_plan(self):
        scenario = get_scenario("chaos")
        assert scenario.faults is not None and scenario.faults.any_faults
        rebuilt = TrafficScenario.from_json(scenario.to_json())
        assert rebuilt == scenario

    def test_scaled_rescales_the_fault_window(self):
        scenario = get_scenario("chaos")
        scaled = scenario.scaled(duration_seconds=scenario.duration_seconds / 2)
        assert scaled.faults.window_start_seconds == pytest.approx(
            scenario.faults.window_start_seconds / 2
        )
        assert scaled.faults.window_stop_seconds == pytest.approx(
            scenario.faults.window_stop_seconds / 2
        )
        # Probabilities are per opportunity — scaling time must not touch them.
        assert scaled.faults.error_probability == scenario.faults.error_probability

    def test_recovery_gate_requires_post_window_successes(self):
        from repro.bench.traffic import TrafficSummary, gate_violations

        gates = TailGates(p99_ms=1000.0, recovery_p99_ms=200.0)

        def summary(recovery: "float | None") -> TrafficSummary:
            return TrafficSummary(
                scenario="chaos",
                transport="inprocess",
                duration_seconds=4.0,
                elapsed_seconds=4.0,
                arrivals=10,
                offered_rps=2.5,
                achieved_rps=2.5,
                achieved_ratio=1.0,
                requests=10,
                ok_requests=10,
                failed_requests=0,
                p50_ms=10.0,
                p99_ms=20.0,
                p999_ms=20.0,
                max_ms=20.0,
                recovery_p99_ms=recovery,
            )

        assert gate_violations(summary(150.0), gates) == []
        assert any(
            "recovery" in violation
            for violation in gate_violations(summary(350.0), gates)
        )
        assert any(
            "recovery percentile undefined" in violation
            for violation in gate_violations(summary(None), gates)
        )
