"""SessionManager concurrency semantics: locking, capacity, TTL eviction."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.config import SeeSawConfig
from repro.core.indexing import SeeSawIndex
from repro.obs import MetricsRegistry
from repro.exceptions import (
    ServiceOverloadedError,
    SessionError,
    UnknownResourceError,
)
from repro.server import (
    FeedbackRequest,
    SeeSawService,
    SessionManager,
    StartSessionRequest,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def service(tiny_dataset, tiny_clip):
    # A private registry keeps the fused_* counter assertions exact even
    # though other tests in this pytest process share the global registry.
    service = SeeSawService(
        SeeSawConfig(embedding_dim=64, seed=7), registry=MetricsRegistry()
    )
    service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
    return service


def start_request(query: str = "a cat_easy") -> StartSessionRequest:
    return StartSessionRequest(dataset="tiny", text_query=query, batch_size=2)


class TestValidation:
    def test_bad_batch_size_rejected_up_front(self, service):
        with pytest.raises(SessionError, match="batch_size"):
            service.start_session(
                StartSessionRequest(dataset="tiny", text_query="a cat", batch_size=0)
            )

    def test_empty_query_rejected_up_front(self, service):
        with pytest.raises(SessionError, match="text_query"):
            service.start_session(
                StartSessionRequest(dataset="tiny", text_query="   ", batch_size=1)
            )

    def test_reregistering_dataset_invalidates_stale_index(
        self, tiny_dataset, tiny_clip
    ):
        service = SeeSawService(SeeSawConfig(embedding_dim=64, seed=7))
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        stale = service.index_for("tiny")
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=False)
        assert not service.has_index("tiny")
        assert service.index_for("tiny") is not stale

    def test_unknown_dataset_is_unknown_resource(self, service):
        manager = SessionManager(service)
        with pytest.raises(UnknownResourceError, match="not registered"):
            manager.start_session(
                StartSessionRequest(dataset="missing", text_query="a cat")
            )


class TestCapacityAndTtl:
    def test_capacity_limit(self, service):
        manager = SessionManager(service, max_sessions=2)
        manager.start_session(start_request())
        manager.start_session(start_request())
        with pytest.raises(ServiceOverloadedError, match="Session limit"):
            manager.start_session(start_request())

    def test_closing_frees_capacity(self, service):
        manager = SessionManager(service, max_sessions=1)
        info = manager.start_session(start_request())
        manager.close_session(info.session_id)
        assert manager.active_session_count == 0
        manager.start_session(start_request())

    def test_idle_sessions_are_evicted(self, service):
        clock = FakeClock()
        manager = SessionManager(
            service, session_ttl_seconds=100.0, clock=clock
        )
        stale = manager.start_session(start_request())
        clock.advance(50.0)
        fresh = manager.start_session(start_request())
        clock.advance(60.0)  # stale idle 110s > TTL, fresh idle 60s < TTL
        evicted = manager.evict_expired()
        assert evicted == [stale.session_id]
        assert fresh.session_id in service.session_ids
        assert stale.session_id not in service.session_ids
        with pytest.raises(UnknownResourceError):
            manager.next_results(stale.session_id)

    def test_activity_refreshes_ttl(self, service):
        clock = FakeClock()
        manager = SessionManager(service, session_ttl_seconds=100.0, clock=clock)
        info = manager.start_session(start_request())
        clock.advance(90.0)
        manager.next_results(info.session_id)  # touches the session
        clock.advance(90.0)
        assert manager.evict_expired() == []
        assert info.session_id in service.session_ids

    def test_start_session_triggers_eviction(self, service):
        clock = FakeClock()
        manager = SessionManager(
            service, max_sessions=1, session_ttl_seconds=10.0, clock=clock
        )
        manager.start_session(start_request())
        clock.advance(11.0)
        # At capacity, but the idle session is expired; the start must succeed.
        manager.start_session(start_request())
        assert manager.active_session_count == 1


class TestConcurrency:
    def test_index_built_exactly_once_across_threads(
        self, tiny_dataset, tiny_clip, monkeypatch
    ):
        service = SeeSawService(SeeSawConfig(embedding_dim=64, seed=7))
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=False)
        manager = SessionManager(service)

        build_calls: list[int] = []
        original_build = SeeSawIndex.build.__func__

        def counting_build(cls, *args, **kwargs):
            build_calls.append(1)
            return original_build(cls, *args, **kwargs)

        monkeypatch.setattr(SeeSawIndex, "build", classmethod(counting_build))

        barrier = threading.Barrier(4)
        errors: list[BaseException] = []

        def worker() -> None:
            try:
                barrier.wait(timeout=10.0)
                manager.ensure_index("tiny", multiscale=True)
            except BaseException as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert len(build_calls) == 1
        assert service.has_index("tiny", multiscale=True)

    def test_concurrent_feedback_on_separate_sessions(self, service):
        manager = SessionManager(service)
        infos = [manager.start_session(start_request()) for _ in range(4)]
        errors: list[BaseException] = []

        def drive(session_id: str) -> None:
            try:
                for _ in range(2):
                    batch = manager.next_results(session_id)
                    for item in batch.items:
                        manager.give_feedback(
                            FeedbackRequest(
                                session_id=session_id,
                                image_id=item.image_id,
                                relevant=False,
                            )
                        )
            except BaseException as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(info.session_id,)) for info in infos
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        for info in infos:
            summary = manager.session_info(info.session_id)
            assert summary.total_shown == 4
            assert summary.rounds == 2


class TestCloseEvictRaces:
    """Regressions for the close/evict race: removal must be atomic.

    Closing (or evicting) a session used to drop the registry entries and
    then close the service-side session without holding the session's own
    lock: a request already inside its round could have the session deleted
    mid-flight, and a close racing an eviction could interleave their
    partial deletes.  ``_remove_session`` now owns the whole retirement
    under the session lock; these tests pin that behavior.
    """

    def test_close_waits_for_inflight_round(self, service, monkeypatch):
        manager = SessionManager(service)
        info = manager.start_session(start_request())
        entered = threading.Event()
        release = threading.Event()
        original = type(service).next_results

        def slow_next(self, session_id, count=None):
            entered.set()
            assert release.wait(timeout=10.0)
            return original(self, session_id, count)

        monkeypatch.setattr(type(service), "next_results", slow_next)
        round_outcome: list[object] = []
        request_thread = threading.Thread(
            target=lambda: round_outcome.append(manager.next_results(info.session_id))
        )
        request_thread.start()
        assert entered.wait(timeout=10.0)
        close_thread = threading.Thread(
            target=manager.close_session, args=(info.session_id,)
        )
        close_thread.start()
        # The close must block behind the in-flight round, not rip the
        # session out from under it.
        close_thread.join(timeout=0.2)
        assert close_thread.is_alive()
        release.set()
        request_thread.join(timeout=10.0)
        close_thread.join(timeout=10.0)
        assert not close_thread.is_alive()
        # The round completed against a live session...
        assert round_outcome and len(round_outcome[0].items) == 2
        # ...and afterwards the session is fully gone, nothing left behind.
        assert manager.active_session_count == 0
        assert info.session_id not in service.session_ids
        assert info.session_id not in manager._session_locks
        assert info.session_id not in manager._last_used

    def test_concurrent_close_and_evict_single_owner(self, service):
        clock = FakeClock()
        manager = SessionManager(service, session_ttl_seconds=10.0, clock=clock)
        infos = [manager.start_session(start_request()) for _ in range(8)]
        clock.advance(11.0)  # everything is now expired
        evicted_lists: list[list[str]] = []
        barrier = threading.Barrier(5, timeout=10.0)
        errors: list[BaseException] = []

        def evictor() -> None:
            try:
                barrier.wait()
                evicted_lists.append(manager.evict_expired())
            except BaseException as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        def closer(session_ids: list[str]) -> None:
            try:
                barrier.wait()
                for session_id in session_ids:
                    manager.close_session(session_id)
            except BaseException as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        session_ids = [info.session_id for info in infos]
        threads = [threading.Thread(target=evictor) for _ in range(3)] + [
            threading.Thread(target=closer, args=(session_ids[:4],)),
            threading.Thread(target=closer, args=(session_ids[4:],)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        # Each session was evicted at most once across all evictors (no
        # double-delete), and nothing is left behind anywhere.
        evicted = [session_id for chunk in evicted_lists for session_id in chunk]
        assert len(evicted) == len(set(evicted))
        assert manager.active_session_count == 0
        assert not manager._session_locks
        assert not manager._last_used
        assert not service.session_ids

    def test_close_after_evict_is_clean_noop(self, service):
        clock = FakeClock()
        manager = SessionManager(service, session_ttl_seconds=10.0, clock=clock)
        info = manager.start_session(start_request())
        clock.advance(11.0)
        assert manager.evict_expired() == [info.session_id]
        manager.close_session(info.session_id)  # must not raise
        assert manager.evict_expired() == []
        assert manager.active_session_count == 0

    def test_registry_invariant_under_churn(self, service):
        """Random start/close/evict churn never desyncs the three tables."""
        manager = SessionManager(service, max_sessions=16, session_ttl_seconds=0.05)
        rng = random.Random(7)
        errors: list[BaseException] = []

        def churn(seed: int) -> None:
            local = random.Random(seed)
            own: list[str] = []
            try:
                for _ in range(25):
                    action = local.random()
                    if action < 0.5:
                        try:
                            own.append(manager.start_session(start_request()).session_id)
                        except ServiceOverloadedError:
                            pass
                    elif action < 0.8 and own:
                        manager.close_session(own.pop(local.randrange(len(own))))
                    else:
                        manager.evict_expired()
                    if local.random() < 0.2:
                        time.sleep(0.01)
            except BaseException as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(rng.randrange(10_000),))
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        manager.evict_expired()  # TTL is tiny; this may reap survivors
        with manager._registry_lock:
            assert set(manager._session_locks) == set(manager._last_used)
            assert set(manager._session_locks) >= set(service.session_ids)


class TestEvictionTouchRace:
    def test_eviction_spares_sessions_touched_after_the_decision(self, service):
        """A session renewed between expiry decision and removal survives."""
        clock = FakeClock()
        manager = SessionManager(service, session_ttl_seconds=100.0, clock=clock)
        info = manager.start_session(start_request())
        clock.advance(101.0)  # expired by the decision...
        # ...but a request touches it before the evictor gets to the pop
        # (the lock-released gap between deciding and removing).
        decided = manager._last_used  # noqa: F841 - decision uses the same table
        with manager._registry_lock:
            expired = [
                session_id
                for session_id, last_used in manager._last_used.items()
                if clock() - last_used > manager.session_ttl_seconds
            ]
        assert expired == [info.session_id]
        manager.next_results(info.session_id)  # concurrent touch
        removed = [
            session_id
            for session_id in expired
            if manager._remove_session(session_id, only_if_expired=True)
        ]
        assert removed == []
        assert info.session_id in service.session_ids
        assert manager.active_session_count == 1

    def test_ttl_eviction_races_inflight_next(self, service, monkeypatch):
        """Eviction must wait behind an in-flight round, never rip it out.

        The session expired on the clock while a ``next`` round was already
        executing under its session lock: the evictor pops the registry
        entries but the service-side close blocks on that lock, so the
        round finishes against a live session and only then is it retired
        — no half-deleted session, no error surfaced to the in-flight
        caller.
        """
        clock = FakeClock()
        manager = SessionManager(service, session_ttl_seconds=50.0, clock=clock)
        info = manager.start_session(start_request())
        entered = threading.Event()
        release = threading.Event()
        original = type(service).next_results

        def slow_next(self, session_id, count=None):
            entered.set()
            assert release.wait(timeout=10.0)
            return original(self, session_id, count)

        monkeypatch.setattr(type(service), "next_results", slow_next)
        round_outcome: list[object] = []
        request_thread = threading.Thread(
            target=lambda: round_outcome.append(manager.next_results(info.session_id))
        )
        request_thread.start()
        assert entered.wait(timeout=10.0)
        # The session expires while the round is mid-flight.
        clock.advance(51.0)
        evicted: list[list[str]] = []
        evict_thread = threading.Thread(
            target=lambda: evicted.append(manager.evict_expired())
        )
        evict_thread.start()
        # The evictor is stuck behind the in-flight round's session lock.
        evict_thread.join(timeout=0.2)
        assert evict_thread.is_alive()
        release.set()
        request_thread.join(timeout=10.0)
        evict_thread.join(timeout=10.0)
        assert not evict_thread.is_alive()
        # The in-flight round completed normally against a live session...
        assert round_outcome and len(round_outcome[0].items) == 2
        # ...the eviction then owned the retirement exactly once...
        assert evicted == [[info.session_id]]
        # ...and nothing of the session survives anywhere.
        assert manager.active_session_count == 0
        assert info.session_id not in service.session_ids
        assert info.session_id not in manager._session_locks
        assert info.session_id not in manager._last_used


class TestExplicitBatchChunking:
    def test_batch_next_is_chunked_by_max_batch_size(self, service):
        manager = SessionManager(service, max_batch_size=2)
        infos = [manager.start_session(start_request()) for _ in range(5)]
        outcomes = manager.batch_next([(info.session_id, None) for info in infos])
        assert len(outcomes) == 5
        assert all(not isinstance(outcome, Exception) for outcome in outcomes)
        # 5 requests in chunks of 2 -> 3 fused dispatch groups.
        assert service.fused_sessions == 5
        assert service.fused_rounds == 3
