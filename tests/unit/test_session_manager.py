"""SessionManager concurrency semantics: locking, capacity, TTL eviction."""

from __future__ import annotations

import threading

import pytest

from repro.config import SeeSawConfig
from repro.core.indexing import SeeSawIndex
from repro.exceptions import (
    ServiceOverloadedError,
    SessionError,
    UnknownResourceError,
)
from repro.server import (
    FeedbackRequest,
    SeeSawService,
    SessionManager,
    StartSessionRequest,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def service(tiny_dataset, tiny_clip):
    service = SeeSawService(SeeSawConfig(embedding_dim=64, seed=7))
    service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
    return service


def start_request(query: str = "a cat_easy") -> StartSessionRequest:
    return StartSessionRequest(dataset="tiny", text_query=query, batch_size=2)


class TestValidation:
    def test_bad_batch_size_rejected_up_front(self, service):
        with pytest.raises(SessionError, match="batch_size"):
            service.start_session(
                StartSessionRequest(dataset="tiny", text_query="a cat", batch_size=0)
            )

    def test_empty_query_rejected_up_front(self, service):
        with pytest.raises(SessionError, match="text_query"):
            service.start_session(
                StartSessionRequest(dataset="tiny", text_query="   ", batch_size=1)
            )

    def test_reregistering_dataset_invalidates_stale_index(
        self, tiny_dataset, tiny_clip
    ):
        service = SeeSawService(SeeSawConfig(embedding_dim=64, seed=7))
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        stale = service.index_for("tiny")
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=False)
        assert not service.has_index("tiny")
        assert service.index_for("tiny") is not stale

    def test_unknown_dataset_is_unknown_resource(self, service):
        manager = SessionManager(service)
        with pytest.raises(UnknownResourceError, match="not registered"):
            manager.start_session(
                StartSessionRequest(dataset="missing", text_query="a cat")
            )


class TestCapacityAndTtl:
    def test_capacity_limit(self, service):
        manager = SessionManager(service, max_sessions=2)
        manager.start_session(start_request())
        manager.start_session(start_request())
        with pytest.raises(ServiceOverloadedError, match="Session limit"):
            manager.start_session(start_request())

    def test_closing_frees_capacity(self, service):
        manager = SessionManager(service, max_sessions=1)
        info = manager.start_session(start_request())
        manager.close_session(info.session_id)
        assert manager.active_session_count == 0
        manager.start_session(start_request())

    def test_idle_sessions_are_evicted(self, service):
        clock = FakeClock()
        manager = SessionManager(
            service, session_ttl_seconds=100.0, clock=clock
        )
        stale = manager.start_session(start_request())
        clock.advance(50.0)
        fresh = manager.start_session(start_request())
        clock.advance(60.0)  # stale idle 110s > TTL, fresh idle 60s < TTL
        evicted = manager.evict_expired()
        assert evicted == [stale.session_id]
        assert fresh.session_id in service.session_ids
        assert stale.session_id not in service.session_ids
        with pytest.raises(UnknownResourceError):
            manager.next_results(stale.session_id)

    def test_activity_refreshes_ttl(self, service):
        clock = FakeClock()
        manager = SessionManager(service, session_ttl_seconds=100.0, clock=clock)
        info = manager.start_session(start_request())
        clock.advance(90.0)
        manager.next_results(info.session_id)  # touches the session
        clock.advance(90.0)
        assert manager.evict_expired() == []
        assert info.session_id in service.session_ids

    def test_start_session_triggers_eviction(self, service):
        clock = FakeClock()
        manager = SessionManager(
            service, max_sessions=1, session_ttl_seconds=10.0, clock=clock
        )
        manager.start_session(start_request())
        clock.advance(11.0)
        # At capacity, but the idle session is expired; the start must succeed.
        manager.start_session(start_request())
        assert manager.active_session_count == 1


class TestConcurrency:
    def test_index_built_exactly_once_across_threads(
        self, tiny_dataset, tiny_clip, monkeypatch
    ):
        service = SeeSawService(SeeSawConfig(embedding_dim=64, seed=7))
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=False)
        manager = SessionManager(service)

        build_calls: list[int] = []
        original_build = SeeSawIndex.build.__func__

        def counting_build(cls, *args, **kwargs):
            build_calls.append(1)
            return original_build(cls, *args, **kwargs)

        monkeypatch.setattr(SeeSawIndex, "build", classmethod(counting_build))

        barrier = threading.Barrier(4)
        errors: list[BaseException] = []

        def worker() -> None:
            try:
                barrier.wait(timeout=10.0)
                manager.ensure_index("tiny", multiscale=True)
            except BaseException as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert len(build_calls) == 1
        assert service.has_index("tiny", multiscale=True)

    def test_concurrent_feedback_on_separate_sessions(self, service):
        manager = SessionManager(service)
        infos = [manager.start_session(start_request()) for _ in range(4)]
        errors: list[BaseException] = []

        def drive(session_id: str) -> None:
            try:
                for _ in range(2):
                    batch = manager.next_results(session_id)
                    for item in batch.items:
                        manager.give_feedback(
                            FeedbackRequest(
                                session_id=session_id,
                                image_id=item.image_id,
                                relevant=False,
                            )
                        )
            except BaseException as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(info.session_id,)) for info in infos
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        for info in infos:
            summary = manager.session_info(info.session_id)
            assert summary.total_shown == 4
            assert summary.rounds == 2
