"""Engine parity and unit tests.

The columnar query engine must reproduce the legacy object-based hot path
exactly: same image ids, same ordering, same scores — across batch sizes,
exclusion states, and both vector stores.  The legacy implementation is
preserved verbatim in :mod:`repro.engine.legacy` as the oracle.
"""

import numpy as np
import pytest

from repro.config import SeeSawConfig
from repro.core.indexing import SeeSawIndex
from repro.core.interfaces import SearchContext
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.core.session import SearchSession
from repro.data.geometry import BoundingBox
from repro.engine import ImageSegments, SeenMask
from repro.engine.legacy import legacy_score_all_images, legacy_top_unseen_images
from repro.exceptions import IndexingError, SessionError, VectorStoreError
from repro.utils.linalg import normalize_rows
from repro.vectorstore.base import VectorRecord
from repro.vectorstore.exact import ExactVectorStore
from repro.vectorstore.forest import RandomProjectionForest


def _random_index(store_kind: str, seed: int = 3) -> SeeSawIndex:
    """An index over tie-free random vectors (strict ordering parity holds).

    The synthetic datasets contain byte-identical patches, giving exact
    duplicate scores whose relative order is legitimately tie-broken
    differently by the two paths; continuous random vectors make every
    ordering comparison strict.
    """
    rng = np.random.default_rng(seed)
    patches_per_image = rng.integers(1, 7, size=40)
    records: list[VectorRecord] = []
    mapping: dict[int, list[int]] = {}
    vector_id = 0
    for image_number, patch_count in enumerate(patches_per_image):
        image_id = 100 + image_number
        ids = []
        for patch in range(int(patch_count)):
            records.append(
                VectorRecord(
                    vector_id=vector_id,
                    image_id=image_id,
                    box=BoundingBox(0, 0, 32, 32),
                    scale_level=0 if patch == 0 else 1,
                )
            )
            ids.append(vector_id)
            vector_id += 1
        mapping[image_id] = ids
    vectors = normalize_rows(rng.standard_normal((vector_id, 24)))
    if store_kind == "forest":
        store = RandomProjectionForest(vectors, records, tree_count=6, leaf_size=8, seed=0)
    else:
        store = ExactVectorStore(vectors, records)
    return SeeSawIndex(
        dataset=None,
        embedding=None,
        store=store,
        image_vector_ids=mapping,
        knn_graph=None,
        db_matrix=None,
        config=SeeSawConfig(embedding_dim=24),
        build_report=None,
    )


def _assert_results_equal(engine_results, legacy_results):
    assert [r.image_id for r in engine_results] == [r.image_id for r in legacy_results]
    assert [r.vector_id for r in engine_results] == [r.vector_id for r in legacy_results]
    for engine_result, legacy_result in zip(engine_results, legacy_results):
        assert engine_result.score == pytest.approx(legacy_result.score, abs=0.0)
        assert engine_result.box == legacy_result.box


def _assert_results_equal_modulo_ties(engine_results, legacy_results):
    """Tie-aware parity: identical scores; identical images inside tie blocks.

    Images (and patches within an image) can share bit-identical scores on
    the synthetic datasets; both paths are free to break such ties
    differently, so interior equal-score blocks are compared as sets and
    the truncated final block only by score.
    """
    engine_scores = [r.score for r in engine_results]
    legacy_scores = [r.score for r in legacy_results]
    assert engine_scores == legacy_scores
    if not engine_results:
        return
    blocks: list[tuple[int, int]] = []
    start = 0
    for position in range(1, len(engine_scores) + 1):
        if position == len(engine_scores) or engine_scores[position] != engine_scores[start]:
            blocks.append((start, position))
            start = position
    for block_index, (lo, hi) in enumerate(blocks):
        engine_ids = {r.image_id for r in engine_results[lo:hi]}
        legacy_ids = {r.image_id for r in legacy_results[lo:hi]}
        if block_index < len(blocks) - 1:
            assert engine_ids == legacy_ids


class TestEngineParityStrict:
    """Strict ordering parity on tie-free random vectors (the acceptance bar)."""

    @pytest.mark.parametrize("store_kind", ["exact", "forest"])
    @pytest.mark.parametrize("count", [1, 3, 10])
    def test_rounds_with_growing_exclusions(self, store_kind, count):
        index = _random_index(store_kind)
        context = SearchContext(index)
        rng = np.random.default_rng(11)
        query = rng.standard_normal(24)
        query /= np.linalg.norm(query)
        excluded: set[int] = set()
        for _ in range(4):
            engine_results = context.top_unseen_images(query, count, excluded)
            legacy_results = legacy_top_unseen_images(index, query, count, excluded)
            _assert_results_equal(engine_results, legacy_results)
            excluded |= {result.image_id for result in engine_results}

    def test_exhausting_the_pool(self):
        index = _random_index("exact")
        context = SearchContext(index)
        rng = np.random.default_rng(12)
        query = rng.standard_normal(24)
        query /= np.linalg.norm(query)
        total = len(index.image_ids)
        excluded = set(list(index.image_ids)[: total - 3])
        engine_results = context.top_unseen_images(query, total, excluded)
        legacy_results = legacy_top_unseen_images(index, query, total, excluded)
        assert len(engine_results) == 3
        _assert_results_equal(engine_results, legacy_results)

    def test_score_all_images_parity(self):
        index = _random_index("exact")
        context = SearchContext(index)
        rng = np.random.default_rng(13)
        query = rng.standard_normal(24)
        engine_scores = context.score_all_images(query)
        legacy_scores = legacy_score_all_images(index, query)
        assert engine_scores.keys() == legacy_scores.keys()
        for image_id, score in legacy_scores.items():
            assert engine_scores[image_id] == pytest.approx(score, abs=0.0)


class TestEngineParity:
    """Parity on the realistic synthetic dataset (tie-aware comparisons)."""

    @pytest.mark.parametrize("count", [1, 3, 10])
    def test_exact_no_exclusions(self, tiny_index, count):
        context = SearchContext(tiny_index)
        query = tiny_index.embed_query("a cat_easy")
        _assert_results_equal_modulo_ties(
            context.top_unseen_images(query, count, set()),
            legacy_top_unseen_images(tiny_index, query, count, set()),
        )

    @pytest.mark.parametrize("count", [1, 4])
    def test_exact_with_exclusions(self, tiny_index, count):
        context = SearchContext(tiny_index)
        query = tiny_index.embed_query("a cat_hard")
        excluded: set[int] = set()
        for _ in range(4):
            engine_results = context.top_unseen_images(query, count, excluded)
            legacy_results = legacy_top_unseen_images(tiny_index, query, count, excluded)
            _assert_results_equal_modulo_ties(engine_results, legacy_results)
            # Advance both paths from the engine's picks so they stay aligned.
            excluded |= {result.image_id for result in engine_results}

    def test_score_all_images(self, tiny_index):
        context = SearchContext(tiny_index)
        query = tiny_index.embed_query("a cat_easy")
        engine_scores = context.score_all_images(query)
        legacy_scores = legacy_score_all_images(tiny_index, query)
        assert engine_scores.keys() == legacy_scores.keys()
        for image_id, score in legacy_scores.items():
            assert engine_scores[image_id] == pytest.approx(score, abs=0.0)

    def test_count_must_be_positive(self, tiny_index):
        context = SearchContext(tiny_index)
        with pytest.raises(SessionError):
            context.top_unseen_images(tiny_index.embed_query("a cat_easy"), 0, set())

    def test_session_drives_engine_mask_fast_path(self, tiny_index):
        """The session flow reuses the persistent mask instead of rebuilding."""
        session = SearchSession(
            index=tiny_index,
            method=SeeSawSearchMethod(tiny_index.config),
            text_query="a cat_easy",
            batch_size=3,
        )
        batch = session.next_batch()
        assert session.context.seen_mask.seen_count == len(batch)
        shown = set(session.shown_image_ids)
        assert session.context.mask_for(shown) is session.context.seen_mask
        # A different exclusion set must fall back to an ephemeral mask.
        other = {next(iter(set(tiny_index.image_ids) - shown))}
        assert session.context.mask_for(other) is not session.context.seen_mask


class TestImageSegments:
    def test_pool_max_matches_python_loop_on_ragged_segments(self, rng):
        mapping = {10: [0, 1, 2], 11: [3], 12: [4, 5, 6, 7, 8], 13: [9, 10]}
        segments = ImageSegments.from_mapping(mapping, 11)
        scores = rng.standard_normal(11)
        pooled = segments.pool_max(scores)
        expected = [max(scores[list(ids)]) for ids in mapping.values()]
        assert pooled.tolist() == pytest.approx(expected)

    def test_pool_max_non_contiguous_order(self, rng):
        # Vector ids deliberately interleaved across images.
        mapping = {1: [4, 0], 2: [2, 5], 3: [1, 3]}
        segments = ImageSegments.from_mapping(mapping, 6)
        scores = rng.standard_normal(6)
        pooled = segments.pool_max(scores)
        for row, ids in enumerate(mapping.values()):
            assert pooled[row] == pytest.approx(max(scores[list(ids)]))

    def test_inverse_column(self):
        mapping = {5: [0, 1], 6: [2]}
        segments = ImageSegments.from_mapping(mapping, 4)
        assert segments.vector_image_rows.tolist() == [0, 0, 1, -1]
        assert segments.first_vector_ids().tolist() == [0, 2]
        assert segments.counts.tolist() == [2, 1]

    def test_best_vectors_in_rows(self):
        mapping = {1: [0, 1, 2], 2: [3, 4]}
        segments = ImageSegments.from_mapping(mapping, 5)
        scores = np.array([0.1, 0.9, 0.5, 0.3, 0.7])
        best = segments.best_vectors_in_rows(scores, np.array([0, 1]))
        assert best.tolist() == [1, 4]

    def test_empty_segment_rejected(self):
        with pytest.raises(IndexingError):
            ImageSegments.from_mapping({1: [0], 2: []}, 1)

    def test_duplicate_vector_membership_rejected(self):
        with pytest.raises(IndexingError):
            ImageSegments.from_mapping({1: [0, 1], 2: [1]}, 2)

    def test_out_of_range_vector_rejected(self):
        with pytest.raises(IndexingError):
            ImageSegments.from_mapping({1: [0, 7]}, 2)

    def test_unknown_image_lookup_raises(self):
        segments = ImageSegments.from_mapping({1: [0]}, 1)
        with pytest.raises(IndexingError):
            segments.row_for_image(99)

    def test_pool_max_shape_mismatch_rejected(self):
        segments = ImageSegments.from_mapping({1: [0]}, 1)
        with pytest.raises(IndexingError):
            segments.pool_max(np.zeros(5))

    def test_columns_are_frozen(self):
        segments = ImageSegments.from_mapping({1: [0, 1], 2: [2]}, 3)
        with pytest.raises(ValueError):
            segments.order[0] = 5
        with pytest.raises(ValueError):
            segments.vector_ids_for_row(0)[0] = 5  # slices inherit the flag


class TestSeenMask:
    @pytest.fixture()
    def segments(self):
        return ImageSegments.from_mapping({7: [0, 1], 8: [2], 9: [3, 4, 5]}, 6)

    def test_starts_empty(self, segments):
        mask = SeenMask(segments)
        assert mask.seen_count == 0
        assert mask.unseen_count == 3
        assert not mask.image_seen.any() and not mask.vector_seen.any()

    def test_mark_images_sets_both_columns(self, segments):
        mask = SeenMask(segments)
        mask.mark_images([7, 9])
        assert mask.seen_count == 2
        assert mask.image_seen.tolist() == [True, False, True]
        assert mask.vector_seen.tolist() == [True, True, False, True, True, True]

    def test_marking_twice_is_idempotent(self, segments):
        mask = SeenMask(segments)
        mask.mark_images([8])
        mask.mark_images([8])
        assert mask.seen_count == 1

    def test_duplicates_within_one_call_count_once(self, segments):
        mask = SeenMask(segments)
        mask.mark_images([8, 8, 7, 8])
        assert mask.seen_count == 2
        assert mask.covers_exactly({7, 8})

    def test_is_seen(self, segments):
        mask = SeenMask(segments)
        mask.mark_images([8])
        assert mask.is_seen(8) and not mask.is_seen(7)

    def test_copy_is_independent(self, segments):
        mask = SeenMask(segments)
        mask.mark_images([7])
        clone = mask.copy()
        clone.mark_images([8])
        assert mask.seen_count == 1 and clone.seen_count == 2

    def test_reset(self, segments):
        mask = SeenMask(segments)
        mask.mark_images([7, 8, 9])
        mask.reset()
        assert mask.seen_count == 0 and not mask.vector_seen.any()

    def test_covers_exactly(self, segments):
        mask = SeenMask(segments)
        mask.mark_images([7, 8])
        assert mask.covers_exactly({7, 8})
        assert not mask.covers_exactly({7})
        assert not mask.covers_exactly({7, 9})
        assert not mask.covers_exactly({7, 8, 99})

    def test_unknown_image_raises(self, segments):
        mask = SeenMask(segments)
        with pytest.raises(IndexingError):
            mask.mark_images([1234])

    def test_public_columns_are_read_only(self, segments):
        # mask_for hands the session's live mask to search methods; direct
        # writes must raise instead of silently corrupting session state.
        mask = SeenMask(segments)
        with pytest.raises(ValueError):
            mask.image_seen[0] = True
        with pytest.raises(ValueError):
            mask.vector_seen[0] = True


class TestStoreArrayApi:
    def test_engine_rejects_mismatched_segments(self, tiny_index):
        from repro.engine import QueryEngine

        small = ImageSegments.from_mapping({1: [0]}, 1)
        with pytest.raises(VectorStoreError):
            QueryEngine(tiny_index.store, small)

    def test_search_arrays_matches_hit_api(self, tiny_index):
        query = tiny_index.embed_query("a cat_easy")
        store = tiny_index.store
        ids, scores = store.search_arrays(query, k=8)
        hits = store.search(query, k=8)
        assert ids.tolist() == [hit.vector_id for hit in hits]
        assert scores.tolist() == pytest.approx([hit.score for hit in hits], abs=0.0)

    def test_candidate_path_drops_uncovered_vectors(self):
        """A store vector no segment covers must never be attributed to an image."""
        rng = np.random.default_rng(5)
        vectors = normalize_rows(rng.standard_normal((30, 16)))
        records = []
        mapping: dict[int, list[int]] = {}
        for vector_id in range(30):
            image_id = 100 + vector_id // 3
            records.append(
                VectorRecord(
                    vector_id=vector_id,
                    image_id=image_id,
                    box=BoundingBox(0, 0, 8, 8),
                    scale_level=0 if vector_id % 3 == 0 else 1,
                )
            )
            if vector_id != 29:  # leave the last vector uncovered
                mapping.setdefault(image_id, []).append(vector_id)
        store = RandomProjectionForest(vectors, records, tree_count=4, leaf_size=4, seed=0)
        index = SeeSawIndex(
            dataset=None,
            embedding=None,
            store=store,
            image_vector_ids=mapping,
            knn_graph=None,
            db_matrix=None,
            config=SeeSawConfig(embedding_dim=16),
            build_report=None,
        )
        # Query the uncovered vector directly: it is the best hit by far,
        # but the engine must drop it rather than mis-attribute it.
        image_ids, _, vector_ids = index.engine.top_unseen_arrays(vectors[29], 5)
        assert 29 not in vector_ids.tolist()
        assert len(image_ids) == 5

    def test_search_arrays_exclusion_mask(self, tiny_index):
        query = tiny_index.embed_query("a cat_easy")
        store = tiny_index.store
        baseline, _ = store.search_arrays(query, k=3)
        mask = np.zeros(len(store), dtype=bool)
        mask[baseline] = True
        ids, _ = store.search_arrays(query, k=3, exclude_mask=mask)
        assert not set(ids.tolist()) & set(baseline.tolist())


class TestBatchEngineUnit:
    """Shape/validation behavior of the fused batch engine; equivalence with
    sequential rounds lives in tests/property/test_shard_batch_equivalence.py."""

    def test_pool_max_batch_matches_row_wise_pooling(self):
        from repro.engine import BatchQueryEngine  # noqa: F401 - exercised below

        index = _random_index("exact", seed=11)
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((5, index.vector_count))
        batched = index.segments.pool_max_batch(matrix)
        for row in range(5):
            assert np.array_equal(batched[row], index.segments.pool_max(matrix[row]))

    def test_pool_max_batch_rejects_bad_shapes(self):
        index = _random_index("exact", seed=11)
        with pytest.raises(IndexingError, match="score matrix"):
            index.segments.pool_max_batch(np.zeros(index.vector_count))
        with pytest.raises(IndexingError, match="score matrix"):
            index.segments.pool_max_batch(np.zeros((2, index.vector_count + 1)))

    def test_batch_engine_validates_lengths_and_counts(self):
        index = _random_index("exact", seed=11)
        batch_engine = index.batch_engine
        queries = np.zeros((3, index.store.dim))
        masks = [None, None, None]
        with pytest.raises(SessionError, match="counts"):
            batch_engine.top_unseen_batch(queries, [2, 2], masks)
        with pytest.raises(SessionError, match="masks"):
            batch_engine.top_unseen_batch(queries, 2, [None])
        with pytest.raises(SessionError, match="count must be >= 1"):
            batch_engine.top_unseen_batch(queries, [2, 0, 2], masks)

    def test_int_count_broadcasts(self):
        index = _random_index("exact", seed=12)
        rng = np.random.default_rng(1)
        queries = rng.standard_normal((4, index.store.dim))
        triples = index.batch_engine.top_unseen_batch(queries, 3, [None] * 4)
        assert len(triples) == 4
        assert all(ids.size == 3 for ids, _, _ in triples)

    def test_empty_batch_returns_empty_list(self):
        index = _random_index("exact", seed=12)
        queries = np.zeros((0, index.store.dim))
        assert index.batch_engine.top_unseen_batch(queries, [], []) == []

    def test_batch_engine_is_cached_on_the_index(self):
        index = _random_index("exact", seed=13)
        assert index.batch_engine is index.batch_engine
        assert index.batch_engine.engine is index.engine

    def test_replace_store_resets_cached_engines(self):
        from repro.vectorstore.sharded import ShardedVectorStore

        index = _random_index("exact", seed=14)
        old_engine = index.engine
        old_batch = index.batch_engine
        index.replace_store(ShardedVectorStore.wrap(index.store, 3))
        assert index.engine is not old_engine
        assert index.batch_engine is not old_batch
        assert index.engine.store is index.store

    def test_replace_store_rejects_size_mismatch(self):
        index = _random_index("exact", seed=14)
        vectors = np.asarray(index.store.vectors)[:-1]
        records = [
            VectorRecord(i, record.image_id, record.box, record.scale_level)
            for i, record in enumerate(index.store.records[:-1])
        ]
        with pytest.raises(IndexingError, match="replacement store"):
            index.replace_store(ExactVectorStore(vectors, records))
