"""Unit tests of the live-dataset tier: delta store, registry, merger.

Bit-identity of a mutated live view against a from-scratch rebuild — the
tier's core correctness property — lives in
``tests/property/test_live_equivalence.py``; this module covers the unit
surfaces: :class:`~repro.live.delta.DeltaVectorStore` validation and
scoring, registry versioning/manifests, mutation validation, version
pinning, and the merge triggers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SeeSawConfig
from repro.data.generators import DatasetProfile, SceneGenerator
from repro.data.geometry import BoundingBox
from repro.data.image import ObjectInstance, SyntheticImage
from repro.embedding.synthetic_clip import SyntheticClip
from repro.exceptions import (
    ServiceOverloadedError,
    SessionError,
    UnknownResourceError,
    VectorStoreError,
)
from repro.live import DeltaVectorStore, MANIFEST_FORMAT, RETAINED_GENERATIONS
from repro.server.api import StartSessionRequest
from repro.server.service import SeeSawService


# ---------------------------------------------------------------------------
# fixtures: a small mutable corpus, rebuilt per test (mutations are stateful)
# ---------------------------------------------------------------------------
def small_dataset(name: str = "live", image_count: int = 12, seed: int = 11):
    profile = DatasetProfile(
        name=name,
        description="small live-tier test corpus",
        image_count=image_count,
        category_count=4,
        image_sizes=((640, 480),),
        contexts=("indoor", "outdoor"),
        objects_per_image=(1, 2),
        object_scale_range=(0.2, 0.5),
        frequency_range=(0.1, 0.4),
        rare_fraction=0.2,
        easy_query_fraction=0.5,
        hard_deficit_range=(0.9, 1.2),
        min_positives=2,
    )
    return SceneGenerator(profile, seed=seed).generate()


def make_service(tmp_path=None, **overrides) -> "tuple[SeeSawService, object]":
    fields = {
        "embedding_dim": 32,
        "seed": 11,
        "live_datasets": True,
        "index_cache_dir": None if tmp_path is None else str(tmp_path / "cache"),
    }
    fields.update(overrides)
    config = SeeSawConfig(**fields)
    dataset = small_dataset()
    clip = SyntheticClip.for_dataset(dataset, dim=32, seed=11)
    service = SeeSawService(config)
    service.register_dataset(dataset, clip, preprocess=True)
    return service, dataset


def new_image(image_id: int, category: str, seed: int = 0) -> SyntheticImage:
    rng = np.random.default_rng(seed + image_id)
    x, y = float(rng.integers(0, 300)), float(rng.integers(0, 200))
    return SyntheticImage(
        image_id=image_id,
        width=640,
        height=480,
        context="indoor",
        objects=(
            ObjectInstance(category=category, box=BoundingBox(x, y, 180.0, 160.0)),
        ),
    )


# ---------------------------------------------------------------------------
# DeltaVectorStore
# ---------------------------------------------------------------------------
class TestDeltaVectorStore:
    @pytest.fixture()
    def base_index(self):
        service, dataset = make_service()
        index = service.index_for("live", multiscale=True)
        yield index
        service.live.close()

    def _delta_parts(self, base_index, rows: int):
        """Delta rows copied off the tail of the base (already unit-norm)."""
        from repro.vectorstore.base import VectorRecord

        store = base_index.store
        n_base = len(store)
        vectors = np.stack([store.vector(n_base - rows + i) for i in range(rows)])
        records = []
        for i in range(rows):
            source = store.records[n_base - rows + i]
            records.append(
                VectorRecord(
                    vector_id=n_base + i,
                    image_id=source.image_id,
                    box=source.box,
                    scale_level=source.scale_level,
                )
            )
        return vectors, records

    def test_empty_delta_scores_like_base(self, base_index):
        store = base_index.store
        delta = DeltaVectorStore(
            store,
            np.zeros((0, store.dim)),
            [],
            np.zeros(len(store), dtype=bool),
        )
        assert len(delta) == len(store)
        assert delta.delta_rows == 0
        query = store.vector(0)
        np.testing.assert_array_equal(delta.score_all(query), store.score_all(query))
        ids, scores = delta.search_arrays(query, 5)
        base_ids, base_scores = store.search_arrays(query, 5)
        np.testing.assert_array_equal(ids, base_ids)
        np.testing.assert_array_equal(scores, base_scores)

    def test_delta_rows_appear_in_scores_and_search(self, base_index):
        store = base_index.store
        n_base = len(store)
        vectors, records = self._delta_parts(base_index, 2)
        delta = DeltaVectorStore(
            store, vectors, records, np.zeros(n_base + 2, dtype=bool)
        )
        assert len(delta) == n_base + 2
        assert delta.delta_rows == 2
        query = vectors[0]
        scores = delta.score_all(query)
        np.testing.assert_array_equal(scores[:n_base], store.score_all(query))
        np.testing.assert_allclose(scores[n_base], 1.0, atol=1e-6)
        ids, all_scores = delta.search_arrays(query, len(delta))
        assert n_base in ids  # the appended copy of the query row ranks
        assert all_scores[list(ids).index(n_base)] == pytest.approx(1.0)

    def test_tombstones_masked_on_candidate_path(self, base_index):
        store = base_index.store
        n_base = len(store)
        vectors, records = self._delta_parts(base_index, 2)
        tombstones = np.zeros(n_base + 2, dtype=bool)
        tombstones[n_base] = True  # first delta row dead
        query = vectors[0]
        delta = DeltaVectorStore(store, vectors, records, tombstones)
        ids, _ = delta.search_arrays(query, len(delta))
        assert n_base not in ids
        assert n_base + 1 in ids
        # score_all keeps the true score (pooling drops the row by mapping)
        scores = delta.score_all(query)
        assert np.isfinite(scores[n_base])

    def test_tombstoned_base_rows_fold_into_base_mask(self, base_index):
        store = base_index.store
        n_base = len(store)
        tombstones = np.zeros(n_base, dtype=bool)
        tombstones[0] = True
        delta = DeltaVectorStore(store, np.zeros((0, store.dim)), [], tombstones)
        ids, _ = delta.search_arrays(store.vector(0), len(delta))
        assert 0 not in ids

    def test_exclude_mask_composes_with_tombstones(self, base_index):
        store = base_index.store
        n_base = len(store)
        vectors, records = self._delta_parts(base_index, 2)
        delta = DeltaVectorStore(
            store, vectors, records, np.zeros(n_base + 2, dtype=bool)
        )
        mask = np.zeros(n_base + 2, dtype=bool)
        mask[n_base + 1] = True
        ids, _ = delta.search_arrays(vectors[1], len(delta), exclude_mask=mask)
        assert n_base + 1 not in ids

    def test_validation_errors(self, base_index):
        store = base_index.store
        n_base = len(store)
        vectors, records = self._delta_parts(base_index, 2)
        with pytest.raises(VectorStoreError, match="delta vectors"):
            DeltaVectorStore(
                store,
                np.zeros((2, store.dim + 1)),
                records,
                np.zeros(n_base + 2, dtype=bool),
            )
        with pytest.raises(VectorStoreError, match="record count"):
            DeltaVectorStore(
                store, vectors, records[:1], np.zeros(n_base + 2, dtype=bool)
            )
        with pytest.raises(VectorStoreError, match="tombstones"):
            DeltaVectorStore(store, vectors, records, np.zeros(n_base, dtype=bool))
        with pytest.raises(VectorStoreError, match="k must be"):
            DeltaVectorStore(
                store, vectors, records, np.zeros(n_base + 2, dtype=bool)
            ).search_arrays(store.vector(0), 0)

    def test_matrix_is_never_shared(self, base_index):
        store = base_index.store
        delta = DeltaVectorStore(
            store, np.zeros((0, store.dim)), [], np.zeros(len(store), dtype=bool)
        )
        with pytest.raises(VectorStoreError, match="share"):
            delta._share_vectors(np.zeros((1, store.dim)))

    def test_score_many_matches_score_all(self, base_index):
        store = base_index.store
        vectors, records = self._delta_parts(base_index, 2)
        delta = DeltaVectorStore(
            store, vectors, records, np.zeros(len(store) + 2, dtype=bool)
        )
        queries = np.stack([store.vector(0), vectors[0]])
        many = delta.score_many(queries)
        # GEMM vs GEMV differ in the last bit (same as the sealed store),
        # so this is a numerical check, not the bit-identity one.
        for row, query in zip(many, queries):
            np.testing.assert_allclose(row, delta.score_all(query), rtol=1e-12)


# ---------------------------------------------------------------------------
# DatasetRegistry
# ---------------------------------------------------------------------------
class TestDatasetRegistry:
    def test_register_publishes_version_one(self):
        service, dataset = make_service()
        try:
            manifest = service.live.describe("live")
            assert manifest["format"] == MANIFEST_FORMAT
            assert manifest["version"] == 1
            assert manifest["generation"] == 1
            assert manifest["image_count"] == len(dataset.images)
            assert manifest["delta_rows"] == 0
            names = [entry["name"] for entry in service.live.list_datasets()]
            assert names == ["live"]
        finally:
            service.live.close()

    def test_upsert_bumps_version_and_serves_new_image(self):
        service, dataset = make_service()
        try:
            category = dataset.categories[0].name
            manifest = service.live.upsert_images(
                "live", [new_image(900, category)]
            )
            assert manifest["version"] == 2
            assert manifest["generation"] == 2
            assert manifest["delta_rows"] > 0
            index = service.index_for("live", multiscale=True)
            assert 900 in index.image_ids
            assert isinstance(index.store, DeltaVectorStore)
            info = service.start_session(
                StartSessionRequest(dataset="live", text_query=f"a {category}")
            )
            response = service.next_results(info.session_id)
            assert response.items  # the live view serves sessions
        finally:
            service.live.close()

    def test_upsert_replaces_existing_image(self):
        service, dataset = make_service()
        try:
            category = dataset.categories[0].name
            target = dataset.images[0].image_id
            before = service.live.describe("live")["image_count"]
            manifest = service.live.upsert_images(
                "live", [new_image(target, category)]
            )
            assert manifest["image_count"] == before  # replaced, not added
            assert manifest["tombstones"] > 0  # old rows tombstoned
            index = service.index_for("live", multiscale=True)
            assert index.image_ids.count(target) == 1
        finally:
            service.live.close()

    def test_delete_removes_image_from_view(self):
        service, dataset = make_service()
        try:
            target = dataset.images[-1].image_id
            manifest = service.live.delete_images("live", [target])
            assert manifest["version"] == 2
            index = service.index_for("live", multiscale=True)
            assert target not in index.image_ids
        finally:
            service.live.close()

    def test_mutation_validation(self):
        service, dataset = make_service()
        try:
            category = dataset.categories[0].name
            with pytest.raises(SessionError, match="at least one image"):
                service.live.upsert_images("live", [])
            with pytest.raises(SessionError, match="duplicate image id"):
                service.live.upsert_images(
                    "live", [new_image(901, category), new_image(901, category)]
                )
            with pytest.raises(SessionError, match="unknown categories"):
                service.live.upsert_images("live", [new_image(902, "no-such-cat")])
            with pytest.raises(UnknownResourceError, match="not in dataset"):
                service.live.delete_images("live", [123456])
            with pytest.raises(SessionError, match="at least one"):
                service.live.delete_images(
                    "live", [image.image_id for image in dataset.images]
                )
            with pytest.raises(UnknownResourceError):
                service.live.upsert_images("nope", [new_image(903, category)])
        finally:
            service.live.close()

    def test_mutations_require_live_datasets_flag(self):
        service, dataset = make_service(live_datasets=False)
        try:
            category = dataset.categories[0].name
            with pytest.raises(SessionError, match="live_datasets"):
                service.live.upsert_images("live", [new_image(904, category)])
            with pytest.raises(SessionError, match="live_datasets"):
                service.live.delete_images("live", [dataset.images[0].image_id])
            # Introspection stays available either way.
            assert service.live.describe("live")["version"] == 1
        finally:
            service.live.close()

    def test_full_delta_sheds_with_retry_hint(self):
        service, dataset = make_service(delta_max_rows=1)
        try:
            category = dataset.categories[0].name
            with pytest.raises(ServiceOverloadedError) as excinfo:
                service.live.upsert_images("live", [new_image(905, category)])
            assert excinfo.value.retry_after_seconds is not None
            service.live.merger.join()
        finally:
            service.live.close()

    def test_version_pinning_survives_later_mutations(self):
        service, dataset = make_service()
        try:
            category = dataset.categories[0].name
            v1 = service.live.index_for_version("live", 1)
            service.live.upsert_images("live", [new_image(906, category)])
            # The pinned view is exactly the pre-mutation object.
            assert service.live.index_for_version("live", 1) is v1
            assert 906 not in v1.image_ids
            v2 = service.live.index_for_version("live", 2)
            assert 906 in v2.image_ids
            info = service.start_session(
                StartSessionRequest(
                    dataset="live", text_query=f"a {category}", dataset_version=1
                )
            )
            assert service.next_results(info.session_id).items
        finally:
            service.live.close()

    def test_pinning_validation(self):
        service, dataset = make_service()
        try:
            with pytest.raises(UnknownResourceError, match="not retained"):
                service.live.index_for_version("live", 99)
            with pytest.raises(SessionError, match="multiscale"):
                service.start_session(
                    StartSessionRequest(
                        dataset="live",
                        text_query="a thing",
                        multiscale=False,
                        dataset_version=1,
                    )
                )
            with pytest.raises(SessionError, match=">= 1"):
                service.start_session(
                    StartSessionRequest(
                        dataset="live", text_query="a thing", dataset_version=0
                    )
                )
        finally:
            service.live.close()

    def test_retention_window_ages_out_old_versions(self):
        service, dataset = make_service()
        try:
            category = dataset.categories[0].name
            for step in range(RETAINED_GENERATIONS + 1):
                service.live.upsert_images("live", [new_image(910 + step, category)])
            manifest = service.live.describe("live")
            assert len(manifest["retained_versions"]) == RETAINED_GENERATIONS
            aged_out = manifest["retained_versions"][0] - 1
            if aged_out >= 1:
                with pytest.raises(UnknownResourceError, match="not retained"):
                    service.live.index_for_version("live", aged_out)
        finally:
            service.live.close()

    def test_manifest_persisted_and_atomic(self, tmp_path):
        service, dataset = make_service(tmp_path)
        try:
            category = dataset.categories[0].name
            service.live.upsert_images("live", [new_image(907, category)])
            manifest_path = tmp_path / "cache" / "registry" / "live.json"
            assert manifest_path.exists()
            import json

            on_disk = json.loads(manifest_path.read_text(encoding="utf-8"))
            assert on_disk["version"] == 2
            assert on_disk["cache_key"] is not None
            # No temp litter from the atomic writes.
            assert not list(manifest_path.parent.glob("*.tmp*"))
        finally:
            service.live.close()

    def test_reregistering_resets_lineage(self):
        service, dataset = make_service()
        try:
            category = dataset.categories[0].name
            service.live.upsert_images("live", [new_image(908, category)])
            clip = SyntheticClip.for_dataset(dataset, dim=32, seed=11)
            service.register_dataset(dataset, clip, preprocess=True)
            assert service.live.describe("live")["version"] == 1
            index = service.index_for("live", multiscale=True)
            assert 908 not in index.image_ids
        finally:
            service.live.close()


# ---------------------------------------------------------------------------
# SegmentMerger
# ---------------------------------------------------------------------------
class TestSegmentMerger:
    def test_force_merge_compacts_and_preserves_version(self):
        service, dataset = make_service()
        try:
            category = dataset.categories[0].name
            service.live.upsert_images("live", [new_image(920, category)])
            before = service.live.describe("live")
            manifest = service.live.force_merge("live")
            assert manifest["version"] == before["version"]  # logical no-op
            assert manifest["generation"] == before["generation"] + 1
            assert manifest["delta_rows"] == 0
            assert manifest["tombstones"] == 0
            assert manifest["merges_completed"] == 1
            index = service.index_for("live", multiscale=True)
            assert not isinstance(index.store, DeltaVectorStore)
            assert 920 in index.image_ids
        finally:
            service.live.close()

    def test_merge_without_delta_is_a_noop(self):
        service, _ = make_service()
        try:
            manifest = service.live.force_merge("live")
            assert manifest["merges_completed"] == 0
            assert manifest["generation"] == 1
        finally:
            service.live.close()

    def test_ratio_trigger_schedules_background_merge(self):
        service, dataset = make_service(merge_trigger_ratio=0.01)
        try:
            category = dataset.categories[0].name
            service.live.upsert_images("live", [new_image(921, category)])
            service.live.merger.join()
            manifest = service.live.describe("live")
            assert manifest["merges_completed"] >= 1
            assert manifest["delta_rows"] == 0
        finally:
            service.live.close()

    def test_sessions_started_before_merge_keep_their_view(self):
        service, dataset = make_service()
        try:
            category = dataset.categories[0].name
            service.live.upsert_images("live", [new_image(922, category)])
            info = service.start_session(
                StartSessionRequest(dataset="live", text_query=f"a {category}")
            )
            first = service.next_results(info.session_id)
            from repro.server.api import FeedbackRequest

            for item in first.items:
                service.give_feedback(
                    FeedbackRequest(
                        session_id=info.session_id,
                        image_id=item.image_id,
                        relevant=False,
                    )
                )
            service.live.force_merge("live")
            # The in-flight session still answers (its index object is the
            # pre-merge live view, retained by the session itself).
            second = service.next_results(info.session_id)
            shown = {item.image_id for item in first.items} | {
                item.image_id for item in second.items
            }
            assert len(shown) == len(first.items) + len(second.items)
        finally:
            service.live.close()

    def test_merges_counted_in_metrics(self):
        service, dataset = make_service()
        try:
            category = dataset.categories[0].name
            service.live.upsert_images("live", [new_image(923, category)])
            service.live.force_merge("live")
            families = {
                family["name"]: family
                for family in service.metrics.to_json()["metrics"]
            }
            assert "seesaw_merges_total" in families
            total = sum(
                series["value"]
                for series in families["seesaw_merges_total"]["series"]
            )
            assert total >= 1
            assert "seesaw_delta_rows" in families
        finally:
            service.live.close()
