"""Tests for the shared utility helpers (rng, linalg, validation)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.linalg import (
    angular_distance,
    cosine_similarity,
    normalize_rows,
    normalize_vector,
    pairwise_inner,
    random_unit_vectors,
    rotate_towards,
)
from repro.utils.rng import (
    derive_rng,
    ensure_rng,
    sample_without_replacement,
    shuffled,
    spawn_seeds,
)
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_probability,
    check_shape,
    check_unit_norm,
)


class TestRng:
    def test_ensure_rng_accepts_int_and_generator(self):
        generator = ensure_rng(3)
        assert isinstance(generator, np.random.Generator)
        assert ensure_rng(generator) is generator

    def test_derive_rng_is_label_stable(self):
        first = derive_rng(5, "a", "b").integers(0, 1_000_000)
        second = derive_rng(5, "a", "b").integers(0, 1_000_000)
        assert first == second

    def test_derive_rng_differs_by_label(self):
        a = derive_rng(5, "a").integers(0, 1_000_000)
        b = derive_rng(5, "b").integers(0, 1_000_000)
        assert a != b

    def test_spawn_seeds_count(self):
        assert len(spawn_seeds(0, 7)) == 7

    def test_shuffled_does_not_mutate(self):
        items = [1, 2, 3, 4]
        shuffled(items, seed=0)
        assert items == [1, 2, 3, 4]

    def test_sample_without_replacement_handles_small_pool(self):
        assert sorted(sample_without_replacement([1, 2], 5, seed=0)) == [1, 2]


class TestLinalg:
    def test_normalize_vector_unit_norm(self):
        vector = normalize_vector(np.array([3.0, 4.0]))
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_normalize_vector_zero_stays_zero(self):
        assert np.allclose(normalize_vector(np.zeros(4)), 0.0)

    def test_normalize_rows(self):
        matrix = normalize_rows(np.array([[3.0, 4.0], [0.0, 2.0]]))
        assert np.allclose(np.linalg.norm(matrix, axis=1), 1.0)

    def test_cosine_similarity_bounds(self):
        a = np.array([1.0, 0.0])
        assert cosine_similarity(a, a) == pytest.approx(1.0)
        assert cosine_similarity(a, -a) == pytest.approx(-1.0)

    def test_pairwise_inner_shape(self):
        queries = np.eye(3)[:2]
        database = np.eye(3)
        assert pairwise_inner(queries, database).shape == (2, 3)

    def test_random_unit_vectors_are_unit(self):
        vectors = random_unit_vectors(10, 16, seed=0)
        assert np.allclose(np.linalg.norm(vectors, axis=1), 1.0)

    def test_rotate_towards_angle(self):
        start = np.array([1.0, 0.0, 0.0])
        target = np.array([0.0, 1.0, 0.0])
        rotated = rotate_towards(start, target, 0.5)
        assert angular_distance(start, rotated) == pytest.approx(0.5, abs=1e-6)

    def test_rotate_towards_parallel_is_noop(self):
        start = np.array([1.0, 0.0])
        rotated = rotate_towards(start, start, 0.7)
        assert np.allclose(rotated, start)


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2.0) == 2.0
        with pytest.raises(ConfigurationError):
            check_positive("x", 0.0)
        assert check_positive("x", 0.0, allow_zero=True) == 0.0

    def test_check_probability(self):
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.5)

    def test_check_shape_wildcards(self):
        array = np.zeros((3, 4))
        check_shape("a", array, (None, 4))
        with pytest.raises(ConfigurationError):
            check_shape("a", array, (None, 5))

    def test_check_finite(self):
        with pytest.raises(ConfigurationError):
            check_finite("a", np.array([1.0, np.nan]))

    def test_check_unit_norm(self):
        check_unit_norm("v", np.array([1.0, 0.0]))
        with pytest.raises(ConfigurationError):
            check_unit_norm("v", np.array([2.0, 0.0]))
