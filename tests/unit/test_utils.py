"""Tests for the shared utility helpers (rng, linalg, validation)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.linalg import (
    angular_distance,
    assert_no_copy,
    cosine_similarity,
    ensure_dtype,
    normalize_rows,
    normalize_vector,
    pairwise_inner,
    random_unit_vectors,
    resolve_compute_dtype,
    rotate_towards,
    unit_norm_tolerance,
    unit_rows,
)
from repro.utils.rng import (
    derive_rng,
    ensure_rng,
    sample_without_replacement,
    shuffled,
    spawn_seeds,
)
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_probability,
    check_shape,
    check_unit_norm,
)


class TestRng:
    def test_ensure_rng_accepts_int_and_generator(self):
        generator = ensure_rng(3)
        assert isinstance(generator, np.random.Generator)
        assert ensure_rng(generator) is generator

    def test_derive_rng_is_label_stable(self):
        first = derive_rng(5, "a", "b").integers(0, 1_000_000)
        second = derive_rng(5, "a", "b").integers(0, 1_000_000)
        assert first == second

    def test_derive_rng_differs_by_label(self):
        a = derive_rng(5, "a").integers(0, 1_000_000)
        b = derive_rng(5, "b").integers(0, 1_000_000)
        assert a != b

    def test_spawn_seeds_count(self):
        assert len(spawn_seeds(0, 7)) == 7

    def test_shuffled_does_not_mutate(self):
        items = [1, 2, 3, 4]
        shuffled(items, seed=0)
        assert items == [1, 2, 3, 4]

    def test_sample_without_replacement_handles_small_pool(self):
        assert sorted(sample_without_replacement([1, 2], 5, seed=0)) == [1, 2]


class TestLinalg:
    def test_normalize_vector_unit_norm(self):
        vector = normalize_vector(np.array([3.0, 4.0]))
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_normalize_vector_zero_stays_zero(self):
        assert np.allclose(normalize_vector(np.zeros(4)), 0.0)

    def test_normalize_rows(self):
        matrix = normalize_rows(np.array([[3.0, 4.0], [0.0, 2.0]]))
        assert np.allclose(np.linalg.norm(matrix, axis=1), 1.0)

    def test_cosine_similarity_bounds(self):
        a = np.array([1.0, 0.0])
        assert cosine_similarity(a, a) == pytest.approx(1.0)
        assert cosine_similarity(a, -a) == pytest.approx(-1.0)

    def test_pairwise_inner_shape(self):
        queries = np.eye(3)[:2]
        database = np.eye(3)
        assert pairwise_inner(queries, database).shape == (2, 3)

    def test_random_unit_vectors_are_unit(self):
        vectors = random_unit_vectors(10, 16, seed=0)
        assert np.allclose(np.linalg.norm(vectors, axis=1), 1.0)

    def test_rotate_towards_angle(self):
        start = np.array([1.0, 0.0, 0.0])
        target = np.array([0.0, 1.0, 0.0])
        rotated = rotate_towards(start, target, 0.5)
        assert angular_distance(start, rotated) == pytest.approx(0.5, abs=1e-6)

    def test_rotate_towards_parallel_is_noop(self):
        start = np.array([1.0, 0.0])
        rotated = rotate_towards(start, start, 0.7)
        assert np.allclose(rotated, start)


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2.0) == 2.0
        with pytest.raises(ConfigurationError):
            check_positive("x", 0.0)
        assert check_positive("x", 0.0, allow_zero=True) == 0.0

    def test_check_probability(self):
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.5)

    def test_check_shape_wildcards(self):
        array = np.zeros((3, 4))
        check_shape("a", array, (None, 4))
        with pytest.raises(ConfigurationError):
            check_shape("a", array, (None, 5))

    def test_check_finite(self):
        with pytest.raises(ConfigurationError):
            check_finite("a", np.array([1.0, np.nan]))

    def test_check_unit_norm(self):
        check_unit_norm("v", np.array([1.0, 0.0]))
        with pytest.raises(ConfigurationError):
            check_unit_norm("v", np.array([2.0, 0.0]))


class TestComputeDtypeHelpers:
    """The dtype-tier plumbing: zero-copy pass-throughs and their guards."""

    def test_resolve_compute_dtype(self):
        assert resolve_compute_dtype(None) == np.float64
        assert resolve_compute_dtype("float32") == np.float32
        assert resolve_compute_dtype(np.float64) == np.float64
        with pytest.raises(ValueError, match="compute dtype"):
            resolve_compute_dtype("float16")
        with pytest.raises(ValueError, match="compute dtype"):
            resolve_compute_dtype(np.int8)

    def test_unit_norm_tolerance_scales_with_precision(self):
        assert unit_norm_tolerance(np.float64) == 1e-12
        assert unit_norm_tolerance(np.float32) == 1e-6

    def test_ensure_dtype_is_identity_when_already_there(self):
        array = np.ones((4, 3), dtype=np.float32)
        assert ensure_dtype(array, np.float32) is array
        converted = ensure_dtype(array, np.float64)
        assert converted.dtype == np.float64
        assert converted is not array

    def test_assert_no_copy_accepts_views_and_rejects_copies(self):
        array = np.arange(12.0).reshape(3, 4)
        view = array.view()
        assert assert_no_copy(array, view) is view
        assert assert_no_copy(array, array) is array
        with pytest.raises(AssertionError, match="zero-copy"):
            assert_no_copy(array, array.copy())

    def test_unit_rows_passes_unit_input_through_without_copying(self):
        rows = random_unit_vectors(8, 16, seed=0)
        assert unit_rows(rows) is rows
        f32 = rows.astype(np.float32)
        assert unit_rows(f32) is f32

    def test_unit_rows_normalizes_non_unit_input(self):
        rng = np.random.default_rng(1)
        raw = 3.0 * rng.standard_normal((5, 8))
        normalized = unit_rows(raw)
        assert normalized is not raw
        assert np.allclose(np.linalg.norm(normalized, axis=1), 1.0)
        # dtype is preserved for compute dtypes...
        raw32 = raw.astype(np.float32)
        assert unit_rows(raw32).dtype == np.float32
        # ...and promoted to float64 for everything else.
        assert unit_rows(np.array([[3, 4]], dtype=np.int64)).dtype == np.float64
