"""Tests for the SeeSaw loss: term values, analytic gradients, bias handling."""

import numpy as np
import pytest

from repro.config import LossWeights
from repro.core.loss import SeeSawLoss, log_loss, sigmoid
from repro.exceptions import OptimizationError
from repro.optim.objective import numerical_gradient
from repro.utils.linalg import normalize_rows, normalize_vector


@pytest.fixture()
def loss_inputs(rng):
    dim = 12
    features = normalize_rows(rng.standard_normal((20, dim)))
    labels = (rng.random(20) < 0.4).astype(float)
    query = normalize_vector(rng.standard_normal(dim))
    raw = rng.standard_normal((dim, dim))
    db_matrix = raw @ raw.T / 100.0
    return features, labels, query, db_matrix


class TestPrimitives:
    def test_sigmoid_stability(self):
        values = np.array([-1000.0, 0.0, 1000.0])
        out = sigmoid(values)
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0)

    def test_log_loss_perfect_predictions(self):
        labels = np.array([1.0, 0.0])
        assert log_loss(labels, np.array([1.0, 0.0])) < 1e-6


class TestSeeSawLoss:
    def test_gradient_matches_numerical(self, loss_inputs):
        features, labels, query, db_matrix = loss_inputs
        loss = SeeSawLoss(features, labels, query, db_matrix, LossWeights(1.0, 2.0, 5.0))
        point = normalize_vector(np.ones(query.shape[0])) * 0.7
        _, analytic = loss(point)
        numeric = numerical_gradient(loss, point)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_gradient_with_bias_matches_numerical(self, loss_inputs):
        features, labels, query, db_matrix = loss_inputs
        loss = SeeSawLoss(
            features, labels, query, db_matrix, LossWeights(1.0, 2.0, 5.0), fit_bias=True
        )
        point = np.concatenate([0.5 * query, [0.3]])
        _, analytic = loss(point)
        numeric = numerical_gradient(loss, point)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_breakdown_sums_to_total(self, loss_inputs):
        features, labels, query, db_matrix = loss_inputs
        loss = SeeSawLoss(features, labels, query, db_matrix, LossWeights(1.0, 2.0, 5.0))
        point = 0.4 * query
        value, _ = loss(point)
        assert loss.breakdown(point).total == pytest.approx(value)

    def test_clip_term_prefers_alignment_with_text(self, loss_inputs):
        features, labels, query, _ = loss_inputs
        loss = SeeSawLoss(features, labels, query, None, LossWeights(0.0, 1.0, 0.0))
        aligned = loss.breakdown(query).clip_term
        opposed = loss.breakdown(-query).clip_term
        assert aligned < opposed

    def test_db_term_scale_invariant(self, loss_inputs):
        features, labels, query, db_matrix = loss_inputs
        loss = SeeSawLoss(features, labels, query, db_matrix, LossWeights(0.0, 0.0, 1.0))
        small = loss.breakdown(0.1 * query).db_term
        large = loss.breakdown(10.0 * query).db_term
        assert small == pytest.approx(large, rel=1e-6)

    def test_empty_feedback_only_regularisers(self, loss_inputs):
        _, _, query, db_matrix = loss_inputs
        loss = SeeSawLoss(
            np.zeros((0, query.shape[0])), np.zeros(0), query, db_matrix, LossWeights(1.0, 1.0, 1.0)
        )
        breakdown = loss.breakdown(query)
        assert breakdown.data_term == 0.0
        assert breakdown.total > 0.0

    def test_dimension_mismatch_rejected(self, loss_inputs):
        features, labels, query, _ = loss_inputs
        with pytest.raises(OptimizationError):
            SeeSawLoss(features, labels, query[:-1])

    def test_bad_db_matrix_shape_rejected(self, loss_inputs):
        features, labels, query, _ = loss_inputs
        with pytest.raises(OptimizationError):
            SeeSawLoss(features, labels, query, np.zeros((3, 3)))

    def test_labels_length_mismatch_rejected(self, loss_inputs):
        features, labels, query, _ = loss_inputs
        with pytest.raises(OptimizationError):
            SeeSawLoss(features, labels[:-1], query)

    def test_initial_parameters_shapes(self, loss_inputs):
        features, labels, query, _ = loss_inputs
        no_bias = SeeSawLoss(features, labels, query)
        with_bias = SeeSawLoss(features, labels, query, fit_bias=True)
        assert no_bias.initial_parameters().shape[0] == query.shape[0]
        assert with_bias.initial_parameters().shape[0] == query.shape[0] + 1

    def test_split_parameters_validates_length(self, loss_inputs):
        features, labels, query, _ = loss_inputs
        loss = SeeSawLoss(features, labels, query)
        with pytest.raises(OptimizationError):
            loss.split_parameters(np.zeros(3))
