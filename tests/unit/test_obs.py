"""Unit tests for the observability layer (:mod:`repro.obs`).

Covers the registry invariants the rest of the stack leans on: counter
correctness under thread contention, inclusive bucket-edge semantics,
bounded label cardinality (the ``_overflow`` collapse), idempotent
registration with kind/label mismatch errors, both exposition formats, and
the disabled-mode fast path of the tracing runtime (the shared no-op span).
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NOOP_SPAN,
    OVERFLOW_LABEL_VALUE,
    Histogram,
    MetricsError,
    MetricsRegistry,
    RequestTrace,
    begin_request_trace,
    configure,
    current_request_id,
    end_request_trace,
    get_registry,
    observe_stage,
    reset_request_id,
    set_request_id,
    timed_acquire,
    trace_registry,
    trace_span,
    tracing_enabled,
)
from repro.obs.trace import STAGE_METRIC


@pytest.fixture(autouse=True)
def restore_trace_runtime():
    """Leave the process-global tracing runtime as these tests found it."""
    was_enabled = tracing_enabled()
    yield
    configure(enabled=was_enabled, registry=None)


# ---------------------------------------------------------------------------
# counters and gauges
# ---------------------------------------------------------------------------
class TestCounter:
    def test_parallel_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("test_total", "help")
        threads_n, incs_n = 8, 2000

        def hammer() -> None:
            for _ in range(incs_n):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert counter.value == threads_n * incs_n

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("test_total")
        with pytest.raises(MetricsError, match=">= 0"):
            counter.inc(-1.0)

    def test_weighted_increment(self):
        counter = MetricsRegistry().counter("test_total")
        counter.inc(5)
        counter.inc(0)
        assert counter.value == 5.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("test_gauge")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value == 7.0

    def test_set_max_keeps_high_water_mark(self):
        gauge = MetricsRegistry().gauge("test_gauge")
        gauge.set_max(3.0)
        gauge.set_max(1.0)
        assert gauge.value == 3.0

    def test_callback_gauge_reads_live_value(self):
        sessions = ["a", "b"]
        registry = MetricsRegistry()
        gauge = registry.gauge(
            "test_live", callback=lambda: float(len(sessions))
        )
        assert gauge.value == 2.0
        sessions.append("c")
        assert gauge.value == 3.0
        # Exposition reads through the callback too.
        assert "test_live 3" in registry.to_prometheus_text()

    def test_latest_callback_registrant_wins(self):
        registry = MetricsRegistry()
        registry.gauge("test_live", callback=lambda: 1.0)
        gauge = registry.gauge("test_live", callback=lambda: 2.0)
        assert gauge.value == 2.0


# ---------------------------------------------------------------------------
# histograms
# ---------------------------------------------------------------------------
class TestHistogram:
    def test_bucket_edges_are_inclusive(self):
        """Prometheus ``le`` semantics: a value equal to a bound lands in it."""
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        histogram.observe(1.0)  # exactly the first bound
        histogram.observe(2.0)  # exactly the second
        histogram.observe(4.0)  # exactly the last finite bound
        histogram.observe(4.00001)  # just past it -> +Inf bucket
        counts, total_sum, total_count = histogram.snapshot()
        assert counts == [1, 1, 1, 1]
        assert total_count == 4
        assert total_sum == pytest.approx(11.00001)

    def test_below_first_bound_lands_in_first_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(0.0)
        histogram.observe(0.5)
        counts, _, _ = histogram.snapshot()
        assert counts == [2, 0, 0]

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(MetricsError, match="strictly increasing"):
            Histogram(bounds=(1.0, 1.0, 2.0))
        with pytest.raises(MetricsError, match="at least one"):
            Histogram(bounds=())

    def test_quantiles_interpolate_within_buckets(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        for _ in range(100):
            histogram.observe(1.5)  # all rank mass in the (1, 2] bucket
        # Interpolation puts every quantile inside that bucket's range.
        assert 1.0 <= histogram.quantile(0.50) <= 2.0
        assert 1.0 <= histogram.quantile(0.99) <= 2.0

    def test_quantile_clamps_to_last_bound_for_inf_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 2.0

    def test_quantile_of_empty_histogram_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_quantile_bounds_validated(self):
        with pytest.raises(MetricsError, match="quantile"):
            Histogram().quantile(1.5)

    def test_parallel_observations_are_not_lost(self):
        histogram = Histogram(bounds=DEFAULT_LATENCY_BUCKETS)
        threads_n, obs_n = 8, 1000

        def hammer() -> None:
            for _ in range(obs_n):
                histogram.observe(0.01)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        counts, total_sum, total_count = histogram.snapshot()
        assert total_count == threads_n * obs_n
        assert sum(counts) == threads_n * obs_n
        assert total_sum == pytest.approx(0.01 * threads_n * obs_n)


# ---------------------------------------------------------------------------
# families, labels, cardinality
# ---------------------------------------------------------------------------
class TestLabelCardinality:
    def test_overflow_collapse_past_max_series(self):
        registry = MetricsRegistry(max_series_per_metric=3)
        family = registry.counter("test_total", labels=("route",))
        family.labels("/a").inc()
        family.labels("/b").inc()
        family.labels("/c").inc()
        # The table is full: every unseen label value collapses into one
        # overflow series instead of growing the registry.
        family.labels("/d").inc()
        family.labels("/e").inc(2)
        assert family.series_count == 4  # 3 real + 1 overflow
        assert family.labels(OVERFLOW_LABEL_VALUE).value == 3.0
        # Known label sets keep resolving to their own series.
        family.labels("/a").inc()
        assert family.labels("/a").value == 2.0

    def test_label_arity_enforced(self):
        family = MetricsRegistry().counter("test_total", labels=("a", "b"))
        with pytest.raises(MetricsError, match="2 label"):
            family.labels("only-one")

    def test_keyword_labels_resolve_in_declared_order(self):
        family = MetricsRegistry().counter("test_total", labels=("a", "b"))
        family.labels(b="2", a="1").inc()
        assert family.labels("1", "2").value == 1.0
        with pytest.raises(MetricsError, match="labels are"):
            family.labels(wrong="x")

    def test_unlabelled_family_rejects_solo_shortcut_when_labelled(self):
        family = MetricsRegistry().counter("test_total", labels=("route",))
        with pytest.raises(MetricsError, match="use .labels"):
            family.inc()


class TestRegistration:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("test_total", "help")
        second = registry.counter("test_total", "different help ignored")
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("test_metric")
        with pytest.raises(MetricsError, match="already registered"):
            registry.histogram("test_metric")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("test_total", labels=("a",))
        with pytest.raises(MetricsError, match="already registered"):
            registry.counter("test_total", labels=("a", "b"))


# ---------------------------------------------------------------------------
# exposition
# ---------------------------------------------------------------------------
class TestExposition:
    def make_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        requests = registry.counter(
            "demo_requests_total", "Requests served.", labels=("route",)
        )
        requests.labels("/v1/metrics").inc(3)
        latency = registry.histogram(
            "demo_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        latency.observe(0.05)
        latency.observe(0.5)
        latency.observe(5.0)
        return registry

    def test_prometheus_text_shape(self):
        text = self.make_registry().to_prometheus_text()
        assert "# HELP demo_requests_total Requests served." in text
        assert "# TYPE demo_requests_total counter" in text
        assert 'demo_requests_total{route="/v1/metrics"} 3' in text
        # Histogram buckets are cumulative, with the +Inf catch-all.
        assert 'demo_seconds_bucket{le="0.1"} 1' in text
        assert 'demo_seconds_bucket{le="1"} 2' in text
        assert 'demo_seconds_bucket{le="+Inf"} 3' in text
        assert "demo_seconds_sum 5.55" in text
        assert "demo_seconds_count 3" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("test_total", labels=("path",)).labels('a"b\\c\nd').inc()
        text = registry.to_prometheus_text()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_json_shape(self):
        payload = self.make_registry().to_json()
        by_name = {metric["name"]: metric for metric in payload["metrics"]}
        counter = by_name["demo_requests_total"]
        assert counter["type"] == "counter"
        assert counter["series"] == [
            {"labels": {"route": "/v1/metrics"}, "value": 3.0}
        ]
        histogram = by_name["demo_seconds"]
        [series] = histogram["series"]
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(5.55)
        # Per-bucket (non-cumulative) counts, bounds rendered as strings.
        assert series["buckets"] == [["0.1", 1], ["1", 1], ["+Inf", 1]]
        assert 0.0 < series["p50"] <= 1.0
        assert series["p99"] == 1.0  # clamped: the p99 rank is in +Inf


# ---------------------------------------------------------------------------
# tracing runtime
# ---------------------------------------------------------------------------
class TestTraceSpans:
    def test_disabled_mode_returns_shared_noop_singleton(self):
        """The disabled fast path: no span allocation, no registry series."""
        registry = MetricsRegistry()
        configure(enabled=False, registry=registry)
        span = trace_span("score", shard=3)
        assert span is NOOP_SPAN
        assert trace_span("pool") is NOOP_SPAN  # same object every call
        with span:
            pass
        assert registry.get(STAGE_METRIC) is None  # nothing ever registered
        assert span.elapsed == 0.0

    def test_enabled_span_records_stage_histogram(self):
        registry = MetricsRegistry()
        configure(enabled=True, registry=registry)
        with trace_span("score") as span:
            pass
        assert span.elapsed >= 0.0
        family = registry.get(STAGE_METRIC)
        assert family is not None
        child = family.labels("score")
        assert child.count == 1
        assert child.sum == pytest.approx(span.elapsed)

    def test_span_also_lands_in_request_trace_collector(self):
        configure(enabled=True, registry=MetricsRegistry())
        token = begin_request_trace()
        try:
            with trace_span("score"):
                pass
            with trace_span("score"):
                pass
            with trace_span("pool"):
                pass
        finally:
            trace = end_request_trace(token)
        assert trace is not None
        assert trace.stages["score"][0] == 2
        assert set(trace.stage_millis()) == {"pool", "score"}

    def test_observe_stage_feeds_trace_even_when_disabled(self):
        """The collector is per-request diagnostics, not metrics: it keeps
        working with the registry switch off (slow logs stay complete)."""
        registry = MetricsRegistry()
        configure(enabled=False, registry=registry)
        token = begin_request_trace()
        try:
            observe_stage("coalesce_wait", 0.25)
        finally:
            trace = end_request_trace(token)
        assert trace.stage_millis() == {"coalesce_wait": 250.0}
        assert registry.get(STAGE_METRIC) is None

    def test_configure_registry_none_follows_global(self):
        private = MetricsRegistry()
        configure(enabled=True, registry=private)
        assert trace_registry() is private
        configure(registry=None)
        assert trace_registry() is get_registry()

    def test_timed_acquire_times_only_the_wait(self):
        registry = MetricsRegistry()
        configure(enabled=True, registry=registry)
        lock = threading.Lock()
        with timed_acquire(lock):
            assert lock.locked()
        assert not lock.locked()
        child = registry.get(STAGE_METRIC).labels("lock_wait")
        assert child.count == 1
        # Uncontended acquire: the recorded wait is tiny, not the hold time.
        assert child.sum < 1.0

    def test_timed_acquire_skips_clock_when_disabled(self):
        registry = MetricsRegistry()
        configure(enabled=False, registry=registry)
        lock = threading.Lock()
        with timed_acquire(lock):
            assert lock.locked()
        assert not lock.locked()
        assert registry.get(STAGE_METRIC) is None

    def test_request_id_binding_round_trips(self):
        assert current_request_id() is None
        token = set_request_id("req-123")
        try:
            assert current_request_id() == "req-123"
        finally:
            reset_request_id(token)
        assert current_request_id() is None

    def test_request_trace_accumulates_per_stage(self):
        trace = RequestTrace()
        trace.record("score", 0.001)
        trace.record("score", 0.002)
        assert trace.stages["score"] == [2, pytest.approx(0.003)]
