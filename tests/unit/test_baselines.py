"""Tests for the baseline search methods (zero-shot, few-shot, Rocchio, ENS, propagation)."""

import numpy as np
import pytest

from repro.baselines import (
    EnsMethod,
    FewShotClipMethod,
    PropagationMethod,
    RocchioMethod,
    ZeroShotClipMethod,
    fit_ideal_vector,
)
from repro.baselines.ens import raw_gamma_from_scores
from repro.core.feedback import BoxFeedback, FeedbackMap
from repro.core.interfaces import SearchContext
from repro.exceptions import ConfigurationError, OptimizationError, SessionError
from repro.metrics import average_precision_full
from repro.utils.linalg import normalize_rows, normalize_vector


def run_manual_round(method, index, category, rounds=6):
    """Drive a method by hand for a few rounds, returning shown image ids."""
    context = SearchContext(index)
    method.begin(context, index.dataset.category(category).prompt)
    feedback = FeedbackMap()
    shown: list[int] = []
    for _ in range(rounds):
        results = method.next_images(1, set(shown))
        if not results:
            break
        result = results[0]
        shown.append(result.image_id)
        image = index.dataset.image(result.image_id)
        boxes = image.ground_truth_boxes(category)
        if boxes:
            feedback.update(BoxFeedback.positive(result.image_id, boxes))
        else:
            feedback.update(BoxFeedback.negative(result.image_id))
        method.observe(feedback)
    return shown


class TestZeroShot:
    def test_requires_begin(self, tiny_index):
        with pytest.raises(SessionError):
            ZeroShotClipMethod().next_images(1, set())

    def test_query_vector_never_changes(self, tiny_index):
        method = ZeroShotClipMethod()
        context = SearchContext(tiny_index)
        method.begin(context, "a cat_easy")
        before = method.query_vector
        feedback = FeedbackMap()
        feedback.update(BoxFeedback.negative(tiny_index.dataset.images[0].image_id))
        method.observe(feedback)
        assert np.allclose(before, method.query_vector)

    def test_never_repeats_images(self, tiny_index):
        shown = run_manual_round(ZeroShotClipMethod(), tiny_index, "cat_easy")
        assert len(shown) == len(set(shown))


class TestFewShot:
    def test_keeps_text_vector_until_both_classes_seen(self, tiny_index):
        method = FewShotClipMethod()
        context = SearchContext(tiny_index)
        method.begin(context, "a cat_easy")
        initial = method.query_vector
        feedback = FeedbackMap()
        feedback.update(BoxFeedback.negative(tiny_index.dataset.images[0].image_id))
        method.observe(feedback)
        assert np.allclose(initial, method.query_vector)

    def test_updates_after_mixed_feedback(self, tiny_index):
        shown = run_manual_round(FewShotClipMethod(), tiny_index, "cat_easy", rounds=8)
        assert len(shown) >= 4

    def test_config_disables_alignment_terms(self):
        method = FewShotClipMethod()
        assert method.config.use_clip_alignment is False
        assert method.config.use_db_alignment is False


class TestRocchio:
    def test_invalid_weights(self):
        with pytest.raises(ConfigurationError):
            RocchioMethod(alpha=-1)

    def test_query_moves_toward_positive_examples(self, tiny_index, rng):
        method = RocchioMethod()
        context = SearchContext(tiny_index)
        method.begin(context, "a cat_easy")
        category_positive = next(iter(tiny_index.dataset.positive_image_ids("cat_easy")))
        image = tiny_index.dataset.image(category_positive)
        feedback = FeedbackMap()
        feedback.update(
            BoxFeedback.positive(category_positive, image.ground_truth_boxes("cat_easy"))
        )
        before = method.query_vector
        method.observe(feedback)
        after = method.query_vector
        positive_vector = tiny_index.store.vectors[
            list(tiny_index.vector_ids_for_image(category_positive))[0]
        ]
        assert float(after @ positive_vector) > float(before @ positive_vector)

    def test_runs_full_manual_session(self, tiny_index):
        shown = run_manual_round(RocchioMethod(), tiny_index, "cat_hard", rounds=8)
        assert len(shown) == len(set(shown))


class TestEns:
    def test_raw_gamma_range(self):
        scores = np.array([-1.0, 0.0, 1.0])
        gamma = raw_gamma_from_scores(scores)
        assert gamma.min() >= 0.0 and gamma.max() <= 1.0

    def test_invalid_horizon(self):
        with pytest.raises(ConfigurationError):
            EnsMethod(horizon=0)

    def test_requires_graph(self, tiny_dataset, tiny_clip):
        from repro.config import SeeSawConfig
        from repro.core.indexing import SeeSawIndex

        index = SeeSawIndex.build(
            tiny_dataset, tiny_clip, SeeSawConfig(embedding_dim=64), build_graph=False
        )
        method = EnsMethod()
        with pytest.raises(SessionError):
            method.begin(SearchContext(index), "a cat_easy")

    def test_behaves_like_zero_shot_before_first_positive(self, tiny_index):
        ens = EnsMethod(horizon=10)
        zero = ZeroShotClipMethod()
        context = SearchContext(tiny_index)
        ens.begin(context, "a cat_easy")
        zero.begin(context, "a cat_easy")
        assert [r.image_id for r in ens.next_images(3, set())] == [
            r.image_id for r in zero.next_images(3, set())
        ]

    def test_full_manual_session_no_repeats(self, tiny_index):
        shown = run_manual_round(EnsMethod(horizon=8), tiny_index, "cat_easy", rounds=8)
        assert len(shown) == len(set(shown))

    def test_calibrator_is_used(self, tiny_index):
        calls = []

        def calibrator(scores):
            calls.append(len(scores))
            return np.full(scores.shape, 0.5)

        method = EnsMethod(gamma_calibrator=calibrator)
        method.begin(SearchContext(tiny_index), "a cat_easy")
        assert calls and calls[0] == tiny_index.vector_count


class TestPropagationMethod:
    def test_full_manual_session(self, tiny_index):
        shown = run_manual_round(PropagationMethod(), tiny_index, "cat_easy", rounds=6)
        assert len(shown) == len(set(shown))

    def test_scores_change_after_feedback(self, tiny_index):
        method = PropagationMethod()
        context = SearchContext(tiny_index)
        method.begin(context, "a cat_easy")
        positive_id = next(iter(tiny_index.dataset.positive_image_ids("cat_easy")))
        image = tiny_index.dataset.image(positive_id)
        feedback = FeedbackMap()
        feedback.update(BoxFeedback.positive(positive_id, image.ground_truth_boxes("cat_easy")))
        before = method._scores.copy()
        method.observe(feedback)
        assert not np.allclose(before, method._scores)


class TestIdealVector:
    def test_ideal_vector_separates_clusters(self, rng):
        dim = 24
        concept = normalize_vector(rng.standard_normal(dim))
        positives = normalize_rows(concept + 0.1 * rng.standard_normal((30, dim)))
        negatives = normalize_rows(rng.standard_normal((200, dim)))
        vectors = np.vstack([positives, negatives])
        labels = np.array([1.0] * 30 + [0.0] * 200)
        ideal = fit_ideal_vector(vectors, labels)
        assert average_precision_full(vectors @ ideal, labels) > 0.9

    def test_requires_both_classes(self, rng):
        vectors = normalize_rows(rng.standard_normal((10, 8)))
        with pytest.raises(OptimizationError):
            fit_ideal_vector(vectors, np.ones(10))
