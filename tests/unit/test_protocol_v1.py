"""Unit tests for the `/v1` wire protocol layer.

Covers the pieces the redesign introduced below the transport: the
structured error envelope and its exception mapping, paging cursors, count
bounds, the middleware pipeline (request ids, access logs, token-bucket
rate limiting), capability discovery, idempotent feedback, and the paged
session listing — all driven through ``SeeSawApp.handle`` or the manager
directly, no sockets.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.config import SeeSawConfig
from repro.exceptions import (
    ConfigurationError,
    IdempotencyConflictError,
    InternalServiceError,
    RateLimitedError,
    ServiceOverloadedError,
    SessionError,
    TransportError,
    UnknownResourceError,
)
from repro.server import (
    PROTOCOL_REVISION,
    FeedbackRequest,
    SeeSawApp,
    SeeSawService,
    SessionManager,
    StartSessionRequest,
)
from repro.server.codec import (
    MAX_RESULT_COUNT,
    decode_cursor,
    encode_cursor,
    validate_count,
)
from repro.server.errors import decode_error, encode_error, error_spec
from repro.server.manager import IDEMPOTENCY_KEYS_PER_SESSION
from repro.server.middleware import (
    AccessLogMiddleware,
    MiddlewarePipeline,
    RateLimitMiddleware,
    Request,
    RequestIdMiddleware,
    Response,
)


# ---------------------------------------------------------------------------
# error envelope
# ---------------------------------------------------------------------------
class TestErrorEnvelope:
    @pytest.mark.parametrize(
        "exc, status, code, retryable",
        [
            (TransportError("bad"), 400, "invalid_request", False),
            (UnknownResourceError("gone"), 404, "not_found", False),
            (ServiceOverloadedError("full"), 503, "overloaded", True),
            (RateLimitedError("slow down"), 429, "rate_limited", True),
            (IdempotencyConflictError("reused"), 409, "idempotency_conflict", False),
            (SessionError("pending batch"), 400, "session_state", False),
            (ConfigurationError("bad knob"), 400, "bad_request", False),
            (InternalServiceError("crashed"), 500, "internal", True),
            (RuntimeError("boom"), 500, "internal", True),
        ],
    )
    def test_exception_mapping(self, exc, status, code, retryable):
        spec = error_spec(exc)
        assert (spec.status, spec.code, spec.retryable) == (status, code, retryable)

    def test_encode_shape(self):
        status, payload = encode_error(
            UnknownResourceError("Unknown session 'x'"), request_id="req-1"
        )
        assert status == 404
        error = payload["error"]
        assert error["code"] == "not_found"
        assert error["message"] == "Unknown session 'x'"
        assert error["retryable"] is False
        assert error["details"]["type"] == "UnknownResourceError"
        assert error["details"]["request_id"] == "req-1"

    @pytest.mark.parametrize(
        "exc",
        [
            TransportError("a"),
            UnknownResourceError("b"),
            ServiceOverloadedError("c"),
            RateLimitedError("d"),
            IdempotencyConflictError("e"),
            SessionError("f"),
            InternalServiceError("g"),
        ],
    )
    def test_encode_decode_round_trip(self, exc):
        status, payload = encode_error(exc)
        rebuilt = decode_error(status, payload)
        assert type(rebuilt) is type(exc)
        assert str(rebuilt) == str(exc)

    def test_decode_garbage_falls_back_to_transport_error(self):
        rebuilt = decode_error(502, "<html>bad gateway</html>")
        assert isinstance(rebuilt, TransportError)
        assert "502" in str(rebuilt)


# ---------------------------------------------------------------------------
# cursors and count bounds
# ---------------------------------------------------------------------------
class TestCursorsAndBounds:
    def test_cursor_round_trip(self):
        for sequence in (0, 1, 7, 123456789):
            assert decode_cursor(encode_cursor(sequence)) == sequence

    def test_cursor_is_opaque_not_numeric(self):
        assert encode_cursor(42) != "42"

    @pytest.mark.parametrize("garbage", ["", "42", "not-base64!", "czo0Mg", "cQ=="])
    def test_malformed_cursor_rejected(self, garbage):
        with pytest.raises(TransportError, match="cursor"):
            decode_cursor(garbage)

    def test_count_bounds(self):
        assert validate_count(1) == 1
        assert validate_count(MAX_RESULT_COUNT) == MAX_RESULT_COUNT
        with pytest.raises(TransportError, match=">= 1"):
            validate_count(0)
        with pytest.raises(TransportError, match="<="):
            validate_count(MAX_RESULT_COUNT + 1)


# ---------------------------------------------------------------------------
# middleware pipeline
# ---------------------------------------------------------------------------
def _echo_endpoint(request: Request) -> Response:
    return Response(200, {"target": request.target, "request_id": request.request_id})


class TestMiddleware:
    def test_request_id_generated_and_echoed(self):
        pipeline = MiddlewarePipeline([RequestIdMiddleware()])
        response = pipeline.run(Request("GET", "/v1/healthz"), _echo_endpoint)
        generated = response.headers["X-Request-Id"]
        assert generated
        assert response.payload["request_id"] == generated

    def test_client_supplied_request_id_wins(self):
        pipeline = MiddlewarePipeline([RequestIdMiddleware()])
        response = pipeline.run(
            Request("GET", "/v1/healthz", headers={"x-request-id": "mine"}),
            _echo_endpoint,
        )
        assert response.headers["X-Request-Id"] == "mine"
        assert response.payload["request_id"] == "mine"

    def test_access_log_emits_one_record(self, caplog):
        middleware = AccessLogMiddleware()
        pipeline = MiddlewarePipeline([RequestIdMiddleware(), middleware])
        with caplog.at_level(logging.INFO, logger="repro.server.access"):
            pipeline.run(Request("GET", "/v1/healthz", client="1.2.3.4"), _echo_endpoint)
        assert middleware.requests_served == 1
        [record] = caplog.records
        assert record.client == "1.2.3.4"
        assert record.status == 200
        assert record.request_id
        assert record.duration_ms >= 0.0

    def test_token_bucket_burst_then_refill(self):
        clock = FakeClock()
        limiter = RateLimitMiddleware(rate_per_second=1.0, burst=3, clock=clock)
        pipeline = MiddlewarePipeline([limiter])
        request = Request("GET", "/v1/healthz", client="a")
        for _ in range(3):
            assert pipeline.run(request, _echo_endpoint).status == 200
        with pytest.raises(RateLimitedError, match="client 'a'"):
            pipeline.run(request, _echo_endpoint)
        assert limiter.rejected_requests == 1
        clock.advance(1.0)  # one token refills
        assert pipeline.run(request, _echo_endpoint).status == 200
        with pytest.raises(RateLimitedError):
            pipeline.run(request, _echo_endpoint)

    def test_clients_have_independent_buckets(self):
        limiter = RateLimitMiddleware(rate_per_second=1.0, burst=1, clock=FakeClock())
        pipeline = MiddlewarePipeline([limiter])
        assert pipeline.run(Request("GET", "/x", client="a"), _echo_endpoint).status == 200
        # Client a is drained; client b still has its own burst.
        with pytest.raises(RateLimitedError):
            pipeline.run(Request("GET", "/x", client="a"), _echo_endpoint)
        assert pipeline.run(Request("GET", "/x", client="b"), _echo_endpoint).status == 200

    def test_x_client_id_header_overrides_remote_address(self):
        limiter = RateLimitMiddleware(rate_per_second=1.0, burst=1, clock=FakeClock())
        pipeline = MiddlewarePipeline([limiter])
        first = Request("GET", "/x", headers={"X-Client-Id": "shared"}, client="1.1.1.1")
        second = Request("GET", "/x", headers={"X-Client-Id": "shared"}, client="2.2.2.2")
        assert pipeline.run(first, _echo_endpoint).status == 200
        with pytest.raises(RateLimitedError, match="shared"):
            pipeline.run(second, _echo_endpoint)

    def test_bucket_table_is_bounded(self):
        limiter = RateLimitMiddleware(
            rate_per_second=1.0, burst=1, clock=FakeClock(), max_clients=4
        )
        pipeline = MiddlewarePipeline([limiter])
        for index in range(10):
            pipeline.run(Request("GET", "/x", client=f"c{index}"), _echo_endpoint)
        assert len(limiter._buckets) <= 4


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# the app boundary (no sockets)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def manager(tiny_dataset, tiny_clip):
    service = SeeSawService(SeeSawConfig(embedding_dim=64, seed=7))
    service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
    return SessionManager(service)


@pytest.fixture(scope="module")
def app(manager):
    return SeeSawApp(manager)


def start_body(batch_size: int = 2) -> bytes:
    return json.dumps(
        {"dataset": "tiny", "text_query": "a cat_easy", "batch_size": batch_size}
    ).encode()


class TestV1AppBoundary:
    def test_capabilities_payload(self, app):
        status, payload = app.handle("GET", "/v1/capabilities")
        assert status == 200
        assert payload["protocol"] == {
            "version": "v1",
            "revision": PROTOCOL_REVISION,
        }
        assert payload["features"]["idempotent_feedback"] is True
        assert payload["features"]["streaming_ndjson"] is True
        assert payload["features"]["rate_limiting"] is False
        assert payload["features"]["metrics_exposition"] is True
        assert payload["features"]["tracing"] is True
        assert payload["limits"]["max_count"] == MAX_RESULT_COUNT
        assert payload["datasets"] == ["tiny"]

    def test_v1_not_found_uses_structured_envelope(self, app):
        status, payload = app.handle("GET", "/v1/sessions/no-such-session")
        assert status == 404
        error = payload["error"]
        assert error["code"] == "not_found"
        assert error["retryable"] is False
        assert error["details"]["type"] == "UnknownResourceError"
        assert error["details"]["request_id"]

    def test_legacy_error_envelope_is_preserved(self, app):
        status, payload = app.handle("GET", "/sessions/no-such-session")
        assert status == 404
        assert payload == {
            "error": {
                "type": "UnknownResourceError",
                "message": "Unknown session 'no-such-session'",
            }
        }

    def test_nonpositive_count_is_structured_400(self, app):
        status, payload = app.handle("POST", "/v1/sessions", start_body())
        session_id = payload["session_id"]
        for bad in ("0", "-3"):
            status, payload = app.handle(
                "GET", f"/v1/sessions/{session_id}/next?count={bad}"
            )
            assert status == 400
            assert payload["error"]["code"] == "invalid_request"
            assert "count" in payload["error"]["message"]
        app.handle("DELETE", f"/v1/sessions/{session_id}")

    def test_absurdly_large_count_is_structured_400(self, app):
        status, payload = app.handle("POST", "/v1/sessions", start_body())
        session_id = payload["session_id"]
        status, payload = app.handle(
            "GET", f"/v1/sessions/{session_id}/next?count={MAX_RESULT_COUNT + 1}"
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        status, payload = app.handle(
            "POST",
            "/v1/sessions/batch-next",
            json.dumps(
                {"requests": [{"session_id": session_id, "count": 10**9}]}
            ).encode(),
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        app.handle("DELETE", f"/v1/sessions/{session_id}")

    def test_v1_streaming_materializes_via_handle(self, app):
        status, payload = app.handle("POST", "/v1/sessions", start_body())
        session_id = payload["session_id"]
        status, payload = app.handle(
            "GET", f"/v1/sessions/{session_id}/next?stream=ndjson"
        )
        assert status == 200
        records = payload["stream"]
        assert records[0]["kind"] == "meta"
        assert records[0]["item_count"] == 2
        assert [r["kind"] for r in records[1:-1]] == ["item", "item"]
        assert records[-1]["kind"] == "end"
        app.handle("DELETE", f"/v1/sessions/{session_id}")

    def test_v1_batch_envelope_uses_structured_per_item_errors(self, app):
        status, payload = app.handle(
            "POST",
            "/v1/sessions/batch-next",
            json.dumps({"requests": [{"session_id": "missing"}]}).encode(),
        )
        assert status == 200
        [outcome] = payload["results"]
        assert outcome["ok"] is False
        assert outcome["error"]["code"] == "not_found"
        assert outcome["error"]["retryable"] is False

    def test_rate_limited_app_returns_429_envelope(self, tiny_dataset, tiny_clip):
        service = SeeSawService(
            SeeSawConfig(
                embedding_dim=64, seed=7, rate_limit_rps=1.0, rate_limit_burst=2
            )
        )
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        limited = SeeSawApp(SessionManager(service))
        statuses = [
            limited.handle("GET", "/v1/healthz", client="c")[0] for _ in range(3)
        ]
        assert statuses[:2] == [200, 200]
        status, payload = limited.handle("GET", "/v1/healthz", client="c")
        assert status == 429
        assert payload["error"]["code"] == "rate_limited"
        assert payload["error"]["retryable"] is True
        # The legacy family gets the legacy envelope shape at the new status.
        status, payload = limited.handle("GET", "/healthz", client="c")
        assert status == 429
        assert payload["error"]["type"] == "RateLimitedError"

    def test_rate_limited_response_keeps_request_id_and_access_log(
        self, tiny_dataset, tiny_clip, caplog
    ):
        """A rejection inside the pipeline must not lose observability:
        the 429 still echoes X-Request-Id and still produces an access
        record (regression: the raise used to bypass both middlewares)."""
        service = SeeSawService(
            SeeSawConfig(
                embedding_dim=64, seed=7, rate_limit_rps=1.0, rate_limit_burst=1
            )
        )
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        limited = SeeSawApp(SessionManager(service))
        from repro.server import Request

        limited.handle_request(Request("GET", "/v1/healthz", client="c"))
        with caplog.at_level(logging.INFO, logger="repro.server.access"):
            response = limited.handle_request(
                Request(
                    "GET",
                    "/v1/healthz",
                    headers={"X-Request-Id": "trace-429"},
                    client="c",
                )
            )
        assert response.status == 429
        assert response.headers["X-Request-Id"] == "trace-429"
        assert response.payload["error"]["details"]["request_id"] == "trace-429"
        assert any(record.status == 429 for record in caplog.records)


# ---------------------------------------------------------------------------
# /v1/metrics exposition
# ---------------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_prometheus_text_is_the_default(self, app):
        status, payload = app.handle("GET", "/v1/healthz")  # generate traffic
        status, payload = app.handle("GET", "/v1/metrics")
        assert status == 200
        text = payload["text"]
        assert "# TYPE seesaw_requests_total counter" in text
        assert 'route="/v1/healthz"' in text
        assert "seesaw_request_seconds_bucket" in text
        assert "seesaw_active_sessions" in text

    def test_format_json_selects_json_exposition(self, app):
        app.handle("GET", "/v1/healthz")
        status, payload = app.handle("GET", "/v1/metrics?format=json")
        assert status == 200
        names = {metric["name"] for metric in payload["metrics"]}
        assert "seesaw_requests_total" in names
        assert "seesaw_request_seconds" in names
        histogram = next(
            metric
            for metric in payload["metrics"]
            if metric["name"] == "seesaw_request_seconds"
        )
        for series in histogram["series"]:
            assert {"labels", "count", "sum", "buckets", "p50", "p99", "p999"} <= set(
                series
            )

    def test_accept_header_selects_json(self, app):
        status, payload = app.handle(
            "GET", "/v1/metrics", headers={"Accept": "application/json"}
        )
        assert status == 200
        assert "metrics" in payload

    def test_format_prometheus_forces_text_despite_accept(self, app):
        status, payload = app.handle(
            "GET",
            "/v1/metrics?format=prometheus",
            headers={"Accept": "application/json"},
        )
        assert status == 200
        assert "text" in payload

    def test_unknown_format_is_structured_400(self, app):
        status, payload = app.handle("GET", "/v1/metrics?format=xml")
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        assert "format" in payload["error"]["message"]

    def test_session_traffic_populates_stage_spans(self, app):
        status, payload = app.handle("POST", "/v1/sessions", start_body())
        session_id = payload["session_id"]
        app.handle("GET", f"/v1/sessions/{session_id}/next")
        app.handle("DELETE", f"/v1/sessions/{session_id}")
        _, payload = app.handle("GET", "/v1/metrics")
        text = payload["text"]
        assert 'seesaw_stage_seconds_bucket{stage="score"' in text
        assert 'seesaw_stage_seconds_count{stage="select"}' in text
        assert 'seesaw_stage_seconds_count{stage="lock_wait"}' in text


# ---------------------------------------------------------------------------
# rejection/handled record parity (one record shape for every outcome)
# ---------------------------------------------------------------------------
class TestRejectionRecordParity:
    RECORD_FIELDS = ("request_id", "client", "status", "duration_ms", "route", "stage")

    def test_429_record_matches_handled_record_shape(
        self, tiny_dataset, tiny_clip, caplog
    ):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        service = SeeSawService(
            SeeSawConfig(
                embedding_dim=64, seed=7, rate_limit_rps=1.0, rate_limit_burst=1
            ),
            registry=registry,
        )
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        limited = SeeSawApp(SessionManager(service))
        with caplog.at_level(logging.INFO, logger="repro.server.access"):
            limited.handle_request(Request("GET", "/v1/healthz", client="c"))
            limited.handle_request(Request("GET", "/v1/healthz", client="c"))
        handled, rejected = caplog.records
        # Same complete field set on both paths — no partial records.
        for record in (handled, rejected):
            for field in self.RECORD_FIELDS:
                assert hasattr(record, field), f"missing {field}"
            assert record.route == "/v1/healthz"
            assert record.client == "c"
            assert record.request_id
            assert record.duration_ms >= 0.0
        assert (handled.status, handled.stage) == (200, "handler")
        assert (rejected.status, rejected.stage) == (429, "middleware")
        # Both outcomes counted in the registry, the rejection twice over.
        requests = registry.get("seesaw_requests_total")
        assert requests.labels("GET", "/v1/healthz", "200").value == 1.0
        assert requests.labels("GET", "/v1/healthz", "429").value == 1.0
        assert registry.get("seesaw_rejections_total").labels("429").value == 1.0
        # The latency histogram saw both requests too.
        latency = registry.get("seesaw_request_seconds")
        assert latency.labels("/v1/healthz").count == 2


# ---------------------------------------------------------------------------
# idempotent feedback (manager level)
# ---------------------------------------------------------------------------
@pytest.fixture()
def own_manager(tiny_dataset, tiny_clip):
    service = SeeSawService(SeeSawConfig(embedding_dim=64, seed=7))
    service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
    return SessionManager(service)


def _start_and_fetch(manager, batch_size=2):
    info = manager.start_session(
        StartSessionRequest(dataset="tiny", text_query="a cat_easy", batch_size=batch_size)
    )
    batch = manager.next_results(info.session_id)
    return info, batch


class TestIdempotentFeedback:
    def test_replay_returns_same_info_without_double_apply(self, own_manager):
        info, batch = _start_and_fetch(own_manager)
        request = FeedbackRequest(
            session_id=info.session_id,
            image_id=batch.items[0].image_id,
            relevant=True,
        )
        first = own_manager.give_feedback(request, idempotency_key="key-1")
        replay = own_manager.give_feedback(request, idempotency_key="key-1")
        assert replay == first
        # Applied once: exactly one positive recorded, not two.
        assert own_manager.session_info(info.session_id).positives_found == 1

    def test_same_key_different_payload_conflicts(self, own_manager):
        info, batch = _start_and_fetch(own_manager)
        first = FeedbackRequest(
            session_id=info.session_id, image_id=batch.items[0].image_id, relevant=True
        )
        own_manager.give_feedback(first, idempotency_key="key-1")
        different = FeedbackRequest(
            session_id=info.session_id, image_id=batch.items[1].image_id, relevant=False
        )
        with pytest.raises(IdempotencyConflictError, match="key-1"):
            own_manager.give_feedback(different, idempotency_key="key-1")

    def test_no_key_never_records(self, own_manager):
        info, batch = _start_and_fetch(own_manager)
        request = FeedbackRequest(
            session_id=info.session_id, image_id=batch.items[0].image_id, relevant=False
        )
        own_manager.give_feedback(request)
        with pytest.raises(SessionError, match="not awaiting feedback"):
            own_manager.give_feedback(request)

    def test_key_store_is_bounded_fifo(self, own_manager):
        info, batch = _start_and_fetch(own_manager, batch_size=1)
        request = FeedbackRequest(
            session_id=info.session_id, image_id=batch.items[0].image_id, relevant=False
        )
        own_manager.give_feedback(request, idempotency_key="key-0")
        cache = own_manager._idempotency[info.session_id]
        record = cache["key-0"]
        # Simulate a long retry history: the cache caps and evicts FIFO.
        for index in range(1, IDEMPOTENCY_KEYS_PER_SESSION + 10):
            cache[f"key-{index}"] = record
            while len(cache) > IDEMPOTENCY_KEYS_PER_SESSION:
                cache.popitem(last=False)
        assert len(cache) == IDEMPOTENCY_KEYS_PER_SESSION
        assert "key-0" not in cache

    def test_records_released_on_close(self, own_manager):
        info, batch = _start_and_fetch(own_manager)
        request = FeedbackRequest(
            session_id=info.session_id, image_id=batch.items[0].image_id, relevant=False
        )
        own_manager.give_feedback(request, idempotency_key="key-1")
        assert info.session_id in own_manager._idempotency
        own_manager.close_session(info.session_id)
        assert info.session_id not in own_manager._idempotency
        assert info.session_id not in own_manager._created_seq


# ---------------------------------------------------------------------------
# paged session listing (manager level)
# ---------------------------------------------------------------------------
class TestSessionListing:
    def _start_many(self, manager, count):
        return [
            manager.start_session(
                StartSessionRequest(
                    dataset="tiny", text_query="a cat_easy", batch_size=1
                )
            ).session_id
            for _ in range(count)
        ]

    def test_pages_walk_in_creation_order(self, own_manager):
        ids = self._start_many(own_manager, 7)
        seen: list[str] = []
        cursor = None
        pages = 0
        while True:
            page = own_manager.list_sessions(cursor=cursor, limit=3)
            seen.extend(entry.info.session_id for entry in page.sessions)
            pages += 1
            if page.next_cursor is None:
                break
            cursor = page.next_cursor
        assert seen == ids
        assert pages == 3

    def test_cursor_survives_deletion_at_the_boundary(self, own_manager):
        ids = self._start_many(own_manager, 5)
        page = own_manager.list_sessions(limit=2)
        assert [e.info.session_id for e in page.sessions] == ids[:2]
        # Delete the session the cursor points at, and one after it.
        own_manager.close_session(ids[1])
        own_manager.close_session(ids[2])
        rest = own_manager.list_sessions(cursor=page.next_cursor, limit=10)
        assert [e.info.session_id for e in rest.sessions] == ids[3:]
        assert rest.next_cursor is None

    def test_entries_carry_telemetry(self, own_manager):
        info, batch = _start_and_fetch(own_manager)
        for item in batch.items:
            own_manager.give_feedback(
                FeedbackRequest(
                    session_id=info.session_id, image_id=item.image_id, relevant=False
                )
            )
        [entry] = own_manager.list_sessions().sessions
        assert entry.info.session_id == info.session_id
        assert entry.info.rounds == 1
        assert entry.idle_seconds >= 0.0
        assert entry.lookup_seconds > 0.0
        assert entry.update_seconds > 0.0

    def test_bad_limit_rejected(self, own_manager):
        with pytest.raises(TransportError, match="limit"):
            own_manager.list_sessions(limit=0)
        with pytest.raises(TransportError, match="limit"):
            own_manager.list_sessions(limit=10_000)

    def test_bad_cursor_rejected(self, own_manager):
        with pytest.raises(TransportError, match="cursor"):
            own_manager.list_sessions(cursor="garbage!")


# ---------------------------------------------------------------------------
# HTTP client stream robustness (no sockets: _stream is substituted)
# ---------------------------------------------------------------------------
class TestStreamTruncation:
    def _client_with_records(self, records):
        from repro.server import HTTPClient

        client = HTTPClient("http://example.invalid")
        client._stream = lambda path: iter(records)
        return client

    def test_missing_end_record_is_a_typed_error(self):
        client = self._client_with_records(
            [
                {"kind": "meta", "item_count": 2},
                {
                    "kind": "item",
                    "item": {
                        "image_id": 1,
                        "score": 0.5,
                        "box": {"x": 0.0, "y": 0.0, "width": 1.0, "height": 1.0},
                    },
                },
                # connection died here: no "end" record
            ]
        )
        items = []
        with pytest.raises(TransportError, match="truncated"):
            for item in client.stream_next_results("session-1"):
                items.append(item)
        assert len(items) == 1  # partial items were delivered before the error

    def test_complete_stream_passes(self):
        client = self._client_with_records(
            [
                {"kind": "meta", "item_count": 1},
                {
                    "kind": "item",
                    "item": {
                        "image_id": 7,
                        "score": 0.9,
                        "box": {"x": 0.0, "y": 0.0, "width": 1.0, "height": 1.0},
                    },
                },
                {"kind": "end"},
            ]
        )
        [item] = list(client.stream_next_results("session-1"))
        assert item.image_id == 7
