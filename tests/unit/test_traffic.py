"""Unit tests for the open-loop traffic harness (schedules, configs, gates)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.scenarios import (
    SCENARIO_PACK,
    BurstProfile,
    OpMix,
    TailGates,
    TrafficScenario,
    get_scenario,
    scenario_names,
)
from repro.bench.traffic import (
    RequestRecord,
    TrafficRun,
    assert_tail_gates,
    gate_violations,
    poisson_schedule,
    read_run_jsonl,
    scenario_schedule,
    summarize,
    write_run_jsonl,
)
from repro.exceptions import BenchmarkError


class TestSchedules:
    def test_poisson_rate_correctness(self):
        """Arrival count matches rate x duration within a few sigma."""
        rate, duration = 200.0, 5.0
        arrivals = poisson_schedule(rate, duration, np.random.default_rng(0))
        expected = rate * duration
        assert 0.85 * expected <= len(arrivals) <= 1.15 * expected
        assert all(0.0 < t < duration for t in arrivals)
        assert arrivals == sorted(arrivals)

    def test_poisson_determinism_under_seed(self):
        first = poisson_schedule(50.0, 3.0, np.random.default_rng(42))
        second = poisson_schedule(50.0, 3.0, np.random.default_rng(42))
        assert first == second
        different = poisson_schedule(50.0, 3.0, np.random.default_rng(43))
        assert first != different

    def test_poisson_rejects_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(BenchmarkError):
            poisson_schedule(0.0, 1.0, rng)
        with pytest.raises(BenchmarkError):
            poisson_schedule(10.0, 0.0, rng)

    def test_burst_schedule_concentrates_arrivals_in_burst_windows(self):
        scenario = TrafficScenario(
            name="t-burst",
            description="test",
            duration_seconds=20.0,
            rate_rps=40.0,
            burst=BurstProfile(factor=5.0, period_seconds=1.0, duty=0.2),
            seed=7,
        )
        arrivals = scenario_schedule(scenario)
        in_burst = sum(1 for t in arrivals if (t % 1.0) < 0.2)
        off_burst = len(arrivals) - in_burst
        # Burst windows are 20% of wall time at 5x rate: they should hold
        # about half of all arrivals; without the burst they would hold ~20%.
        assert in_burst / len(arrivals) > 0.35
        # Per-second arrival density inside bursts dominates outside.
        burst_density = in_burst / (20.0 * 0.2)
        off_density = off_burst / (20.0 * 0.8)
        assert burst_density > 2.5 * off_density

    def test_scenario_schedule_is_deterministic(self):
        scenario = get_scenario("burst").scaled(duration_seconds=3.0)
        assert scenario_schedule(scenario) == scenario_schedule(scenario)


class TestScenarioConfigs:
    def test_pack_covers_the_named_load_shapes(self):
        names = scenario_names()
        assert len(names) >= 6
        for required in (
            "steady",
            "burst",
            "session_churn",
            "mixed_ratio",
            "slow_drip",
            "feedback_replay",
            "rate_limit_storm",
            "live_ingest",
            "chaos",
        ):
            assert required in names

    @pytest.mark.parametrize("scenario", SCENARIO_PACK, ids=lambda s: s.name)
    def test_json_round_trip(self, scenario):
        payload = json.loads(json.dumps(scenario.to_json()))
        assert TrafficScenario.from_json(payload) == scenario

    def test_scaled_preserves_everything_else(self):
        steady = get_scenario("steady")
        small = steady.scaled(duration_seconds=1.0, rate_rps=10.0, session_count=2)
        assert small.duration_seconds == 1.0
        assert small.rate_rps == 10.0
        assert small.session_count == 2
        assert small.mix == steady.mix
        assert small.gates == steady.gates

    def test_unknown_scenario_name(self):
        with pytest.raises(BenchmarkError, match="Unknown traffic scenario"):
            get_scenario("nope")

    def test_validation_rejects_bad_configs(self):
        with pytest.raises(BenchmarkError):
            OpMix(next_results=0.0)
        with pytest.raises(BenchmarkError):
            OpMix(next_results=-1.0)
        with pytest.raises(BenchmarkError):
            BurstProfile(factor=0.5)
        with pytest.raises(BenchmarkError):
            BurstProfile(duty=1.5)
        with pytest.raises(BenchmarkError):
            TailGates(p99_ms=0.0)
        with pytest.raises(BenchmarkError):
            TailGates(p99_ms=100.0, p999_ms=50.0)
        with pytest.raises(BenchmarkError):
            TrafficScenario(name="x", description="x", rate_rps=0.0)
        with pytest.raises(BenchmarkError):
            TrafficScenario(name="x", description="x", forced_merges=-1)

    def test_mix_weights_skip_zero_entries(self):
        mix = OpMix(next_results=0.5, stream=0.5)
        assert mix.weights() == (("next", 0.5), ("stream", 0.5))

    def test_live_ingest_mixes_mutations_with_forced_merges(self):
        scenario = get_scenario("live_ingest")
        assert ("mutate", 0.2) in scenario.mix.weights()
        assert scenario.forced_merges == 2
        assert "ServiceOverloadedError" in scenario.expected_errors


def _record(
    index: int,
    latency_s: float,
    ok: bool = True,
    error: "str | None" = None,
    primary: bool = True,
    op: str = "next",
) -> RequestRecord:
    return RequestRecord(
        op=op,
        interaction=op,
        index=index,
        scheduled_at=0.0,
        started_at=0.0,
        completed_at=latency_s,
        ok=ok,
        primary=primary,
        error=error,
    )


def _run_with(records, scenario=None, arrivals=None, elapsed=1.0) -> TrafficRun:
    scenario = scenario or get_scenario("steady").scaled(duration_seconds=1.0)
    primaries = sum(1 for r in records if r.primary)
    return TrafficRun(
        scenario=scenario,
        transport="test",
        arrivals=arrivals if arrivals is not None else primaries,
        elapsed_seconds=elapsed,
        records=list(records),
    )


class TestSummaryAndGates:
    def test_nearest_rank_percentiles(self):
        # Latencies 1..1000 ms: nearest-rank p50/p99/p999 are exactly
        # the 500th/990th/999th values.
        records = [_record(i, (i + 1) / 1000.0) for i in range(1000)]
        summary = summarize(_run_with(records, elapsed=1.0))
        assert summary.p50_ms == pytest.approx(500.0)
        assert summary.p99_ms == pytest.approx(990.0)
        assert summary.p999_ms == pytest.approx(999.0)
        assert summary.max_ms == pytest.approx(1000.0)
        assert summary.requests == 1000
        assert summary.offered_rps == pytest.approx(1000.0)
        assert summary.achieved_rps == pytest.approx(1000.0)
        assert summary.achieved_ratio == pytest.approx(1.0)

    def test_error_taxonomy_splits_expected_from_unexpected(self):
        scenario = get_scenario("feedback_replay").scaled(duration_seconds=1.0)
        records = [
            _record(0, 0.01),
            _record(1, 0.01, ok=False, error="IdempotencyConflictError"),
            _record(2, 0.01, ok=False, error="IdempotencyConflictError"),
            _record(3, 0.01, ok=False, error="TransportError"),
        ]
        summary = summarize(_run_with(records, scenario=scenario))
        assert summary.error_taxonomy == {
            "IdempotencyConflictError": 2,
            "TransportError": 1,
        }
        assert summary.unexpected_errors == 1
        assert summary.failed_requests == 3

    def test_secondary_records_do_not_skew_percentiles(self):
        records = [_record(0, 0.010)]
        records += [
            _record(0, 5.0, primary=False, op="feedback") for _ in range(10)
        ]
        summary = summarize(_run_with(records))
        assert summary.p99_ms == pytest.approx(10.0)
        assert summary.requests == 11

    def test_gate_violations_catch_each_gate(self):
        records = [_record(i, 0.050) for i in range(99)] + [_record(99, 2.0)]
        summary = summarize(_run_with(records, elapsed=1.0))
        gates = TailGates(p99_ms=100.0, p999_ms=150.0, min_achieved_ratio=0.99)
        violations = gate_violations(summary, gates)
        assert any("p99" in v for v in violations)
        assert any("p999" in v for v in violations)
        # Loose gates pass cleanly.
        assert gate_violations(summary, TailGates(p99_ms=5000.0)) == []

    def test_gate_on_achieved_throughput_floor(self):
        # 100 arrivals over a 1s schedule, but the run took 4s to drain:
        # achieved/offered = 0.25 — the open-loop "fell behind" signal.
        records = [_record(i, 0.010) for i in range(100)]
        summary = summarize(_run_with(records, elapsed=4.0))
        assert summary.achieved_ratio == pytest.approx(0.25)
        violations = gate_violations(summary, TailGates(p99_ms=1000.0, min_achieved_ratio=0.5))
        assert any("achieved/offered" in v for v in violations)

    def test_gate_on_unexpected_errors(self):
        records = [_record(0, 0.01), _record(1, 0.01, ok=False, error="InternalServiceError")]
        summary = summarize(_run_with(records))
        violations = gate_violations(summary, TailGates(p99_ms=1000.0, min_achieved_ratio=0.01))
        assert any("unexpected errors" in v for v in violations)
        with pytest.raises(BenchmarkError, match="failed its tail gates"):
            assert_tail_gates(summary, TailGates(p99_ms=1000.0, min_achieved_ratio=0.01))

    def test_all_failed_run_reports_undefined_percentiles(self):
        records = [_record(0, 0.01, ok=False, error="TransportError")]
        summary = summarize(_run_with(records))
        violations = gate_violations(summary, TailGates(p99_ms=1000.0))
        assert any("no successful primary requests" in v for v in violations)


class TestJsonlArtifacts:
    def test_write_read_round_trip(self, tmp_path):
        scenario = get_scenario("steady").scaled(duration_seconds=1.0)
        records = [
            _record(0, 0.010),
            _record(1, 0.020, ok=False, error="RateLimitedError"),
        ]
        run = _run_with(records, scenario=scenario)
        run.metrics_before = {"seesaw_requests_total": 1.0}
        run.metrics_after = {"seesaw_requests_total": 3.0}
        path = write_run_jsonl(tmp_path / "traffic_steady.jsonl", run)
        loaded = read_run_jsonl(path)
        assert loaded["meta"]["transport"] == "test"
        assert TrafficScenario.from_json(loaded["meta"]["scenario"]) == scenario
        assert loaded["meta"]["metrics_after"]["seesaw_requests_total"] == 3.0
        assert len(loaded["requests"]) == 2
        assert loaded["requests"][0]["latency_ms"] == pytest.approx(10.0)
        summary = loaded["summary"]
        assert summary["scenario"] == "steady"
        assert summary["error_taxonomy"] == {"RateLimitedError": 1}
        # Every line is standalone JSON (the artifact contract).
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == (
            ["meta"] + ["request"] * 2 + ["summary"]
        )

    def test_read_rejects_malformed_artifacts(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"kind": "request"}\n')
        with pytest.raises(BenchmarkError, match="missing meta/summary"):
            read_run_jsonl(path)
