"""Index serialization and cache tests: save/load identity and keying."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MultiscaleConfig, SeeSawConfig
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.core.session import SearchSession
from repro.exceptions import StoreError
from repro.store import IndexCache, index_cache_key, load_index, save_index
from repro.store.serialize import META_FILE


@pytest.fixture(scope="module")
def saved_index(tiny_index, tiny_dataset, tiny_clip, tmp_path_factory):
    """The tiny index written to disk once for the whole module."""
    directory = tmp_path_factory.mktemp("index") / "entry"
    save_index(tiny_index, directory)
    return directory


class TestSerializeRoundTrip:
    def test_arrays_survive(self, saved_index, tiny_index, tiny_dataset, tiny_clip):
        loaded = load_index(saved_index, tiny_dataset, tiny_clip)
        assert np.allclose(loaded.store.vectors, tiny_index.store.vectors)
        assert np.array_equal(
            loaded.knn_graph.neighbor_ids, tiny_index.knn_graph.neighbor_ids
        )
        assert np.allclose(
            loaded.knn_graph.neighbor_weights, tiny_index.knn_graph.neighbor_weights
        )
        assert loaded.knn_graph.sigma == tiny_index.knn_graph.sigma
        assert np.allclose(loaded.db_matrix, tiny_index.db_matrix)

    def test_structure_survives(self, saved_index, tiny_index, tiny_dataset, tiny_clip):
        loaded = load_index(saved_index, tiny_dataset, tiny_clip)
        assert loaded.store.records == tiny_index.store.records
        assert loaded.image_ids == tiny_index.image_ids
        for image_id in tiny_index.image_ids:
            assert loaded.vector_ids_for_image(image_id) == (
                tiny_index.vector_ids_for_image(image_id)
            )
        assert loaded.config == tiny_index.config
        report = loaded.build_report
        assert report.vector_count == tiny_index.build_report.vector_count
        assert report.multiscale == tiny_index.build_report.multiscale

    def test_loaded_index_returns_identical_next_batch(
        self, saved_index, tiny_index, tiny_dataset, tiny_clip
    ):
        loaded = load_index(saved_index, tiny_dataset, tiny_clip)
        query = tiny_dataset.category("cat_hard").prompt
        batches = []
        for index in (tiny_index, loaded):
            session = SearchSession(
                index=index,
                method=SeeSawSearchMethod(index.config),
                text_query=query,
                batch_size=4,
            )
            batch = session.next_batch()
            batches.append([(r.image_id, round(r.score, 12)) for r in batch])
        assert batches[0] == batches[1]

    def test_wrong_dataset_rejected(self, saved_index, tiny_dataset, tiny_clip):
        other = tiny_dataset.subset(tiny_dataset.positive_image_ids("cat_easy"))
        with pytest.raises(StoreError, match="dataset"):
            load_index(saved_index, other, tiny_clip)

    def test_missing_entry_rejected(self, tmp_path, tiny_dataset, tiny_clip):
        with pytest.raises(StoreError, match="No serialized index"):
            load_index(tmp_path / "nowhere", tiny_dataset, tiny_clip)

    def test_corrupt_meta_rejected(self, tmp_path, tiny_index, tiny_dataset, tiny_clip):
        directory = tmp_path / "entry"
        save_index(tiny_index, directory)
        (directory / META_FILE).write_text("{broken", encoding="utf-8")
        with pytest.raises(StoreError, match="Corrupt"):
            load_index(directory, tiny_dataset, tiny_clip)


class TestCacheKey:
    def test_key_is_stable(self, tiny_dataset, tiny_clip):
        config = SeeSawConfig(embedding_dim=64, seed=7)
        assert index_cache_key(tiny_dataset, tiny_clip, config) == index_cache_key(
            tiny_dataset, tiny_clip, config
        )

    def test_key_changes_with_index_affecting_config(self, tiny_dataset, tiny_clip):
        config = SeeSawConfig(embedding_dim=64, seed=7)
        coarse = config.with_overrides(multiscale=MultiscaleConfig(enabled=False))
        assert index_cache_key(tiny_dataset, tiny_clip, config) != index_cache_key(
            tiny_dataset, tiny_clip, coarse
        )

    def test_key_ignores_runtime_only_config(self, tiny_dataset, tiny_clip):
        config = SeeSawConfig(embedding_dim=64, seed=7)
        retuned = config.with_overrides(fit_bias=True, index_cache_dir="/elsewhere")
        assert index_cache_key(tiny_dataset, tiny_clip, config) == index_cache_key(
            tiny_dataset, tiny_clip, retuned
        )

    def test_key_changes_with_dataset_content(self, tiny_dataset, tiny_clip):
        config = SeeSawConfig(embedding_dim=64, seed=7)
        half = [image.image_id for image in tiny_dataset.images][: len(tiny_dataset) // 2]
        subset = tiny_dataset.subset(half, name=tiny_dataset.name)
        assert index_cache_key(tiny_dataset, tiny_clip, config) != index_cache_key(
            subset, tiny_clip, config
        )


class TestIndexCache:
    def test_miss_builds_and_persists_then_hits(self, tmp_path, tiny_dataset, tiny_clip):
        cache = IndexCache(tmp_path / "cache")
        config = SeeSawConfig(embedding_dim=64, seed=7)
        built, was_cached = cache.load_or_build(tiny_dataset, tiny_clip, config)
        assert not was_cached
        assert len(cache.entries()) == 1
        loaded, was_cached = cache.load_or_build(tiny_dataset, tiny_clip, config)
        assert was_cached
        assert np.allclose(loaded.store.vectors, built.store.vectors)

    def test_corrupt_entry_is_a_miss(self, tmp_path, tiny_dataset, tiny_clip):
        cache = IndexCache(tmp_path / "cache")
        config = SeeSawConfig(embedding_dim=64, seed=7)
        cache.load_or_build(tiny_dataset, tiny_clip, config)
        key = cache.key(tiny_dataset, tiny_clip, config)
        (cache.path_for(key) / META_FILE).write_text("{broken", encoding="utf-8")
        assert cache.load(key, tiny_dataset, tiny_clip) is None
        # The broken entry was evicted so the next build can re-persist.
        assert not cache.contains(key)

    def test_evict(self, tmp_path, tiny_dataset, tiny_clip):
        cache = IndexCache(tmp_path / "cache")
        config = SeeSawConfig(embedding_dim=64, seed=7)
        cache.load_or_build(tiny_dataset, tiny_clip, config)
        key = cache.key(tiny_dataset, tiny_clip, config)
        assert cache.contains(key)
        cache.evict(key)
        assert not cache.contains(key)
        assert cache.entries() == []


class TestShardedTopologyAndCache:
    """Sharding is a runtime topology: invisible to keys and artifacts."""

    def test_cache_key_ignores_shard_and_window_knobs(self, tiny_dataset, tiny_clip):
        base = SeeSawConfig(embedding_dim=64, seed=7)
        scaled = SeeSawConfig(embedding_dim=64, seed=7, n_shards=8, batch_window_ms=5.0)
        assert index_cache_key(tiny_dataset, tiny_clip, base) == index_cache_key(
            tiny_dataset, tiny_clip, scaled
        )

    def test_sharded_index_serializes_as_flat_store(
        self, tiny_index, tiny_dataset, tiny_clip, tmp_path
    ):
        from repro.core.indexing import SeeSawIndex
        from repro.vectorstore import ExactVectorStore, ShardedVectorStore

        sharded = SeeSawIndex(
            dataset=tiny_dataset,
            embedding=tiny_clip,
            store=ShardedVectorStore.wrap(tiny_index.store, 3),
            image_vector_ids={
                image_id: tiny_index.vector_ids_for_image(image_id)
                for image_id in tiny_index.image_ids
            },
            knn_graph=tiny_index.knn_graph,
            db_matrix=tiny_index.db_matrix,
            config=tiny_index.config,
            build_report=tiny_index.build_report,
        )
        directory = tmp_path / "sharded-entry"
        save_index(sharded, directory)
        loaded = load_index(directory, tiny_dataset, tiny_clip)
        # Loads back flat (the service re-applies its configured topology)...
        assert isinstance(loaded.store, ExactVectorStore)
        # ...with bit-identical vectors: unit rows round-trip unrenormalized.
        assert np.array_equal(
            np.asarray(loaded.store.vectors), np.asarray(tiny_index.store.vectors)
        )

    def test_service_shards_cache_loaded_index(self, tiny_dataset, tiny_clip, tmp_path):
        from repro.server import SeeSawService
        from repro.vectorstore import ShardedVectorStore

        cache_dir = str(tmp_path / "cache")
        flat_config = SeeSawConfig(embedding_dim=64, seed=7, index_cache_dir=cache_dir)
        cold = SeeSawService(flat_config)
        cold.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        assert cold.cache_misses == 1

        sharded_config = SeeSawConfig(
            embedding_dim=64, seed=7, index_cache_dir=cache_dir, n_shards=3
        )
        warm = SeeSawService(sharded_config)
        warm.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        # Same cache entry (the knob is excluded from the key), but the
        # loaded index comes up partitioned.
        assert warm.cache_hits == 1
        store = warm.index_for("tiny").store
        assert isinstance(store, ShardedVectorStore)
        assert store.n_shards == 3
