"""Index serialization and cache tests: save/load identity and keying."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MultiscaleConfig, SeeSawConfig
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.core.session import SearchSession
from repro.exceptions import StoreError
from repro.store import IndexCache, index_cache_key, load_index, save_index
from repro.store.serialize import META_FILE


@pytest.fixture(scope="module")
def saved_index(tiny_index, tiny_dataset, tiny_clip, tmp_path_factory):
    """The tiny index written to disk once for the whole module."""
    directory = tmp_path_factory.mktemp("index") / "entry"
    save_index(tiny_index, directory)
    return directory


class TestSerializeRoundTrip:
    def test_arrays_survive(self, saved_index, tiny_index, tiny_dataset, tiny_clip):
        loaded = load_index(saved_index, tiny_dataset, tiny_clip)
        assert np.allclose(loaded.store.vectors, tiny_index.store.vectors)
        assert np.array_equal(
            loaded.knn_graph.neighbor_ids, tiny_index.knn_graph.neighbor_ids
        )
        assert np.allclose(
            loaded.knn_graph.neighbor_weights, tiny_index.knn_graph.neighbor_weights
        )
        assert loaded.knn_graph.sigma == tiny_index.knn_graph.sigma
        assert np.allclose(loaded.db_matrix, tiny_index.db_matrix)

    def test_structure_survives(self, saved_index, tiny_index, tiny_dataset, tiny_clip):
        loaded = load_index(saved_index, tiny_dataset, tiny_clip)
        assert loaded.store.records == tiny_index.store.records
        assert loaded.image_ids == tiny_index.image_ids
        for image_id in tiny_index.image_ids:
            assert loaded.vector_ids_for_image(image_id) == (
                tiny_index.vector_ids_for_image(image_id)
            )
        assert loaded.config == tiny_index.config
        report = loaded.build_report
        assert report.vector_count == tiny_index.build_report.vector_count
        assert report.multiscale == tiny_index.build_report.multiscale

    def test_loaded_index_returns_identical_next_batch(
        self, saved_index, tiny_index, tiny_dataset, tiny_clip
    ):
        loaded = load_index(saved_index, tiny_dataset, tiny_clip)
        query = tiny_dataset.category("cat_hard").prompt
        batches = []
        for index in (tiny_index, loaded):
            session = SearchSession(
                index=index,
                method=SeeSawSearchMethod(index.config),
                text_query=query,
                batch_size=4,
            )
            batch = session.next_batch()
            batches.append([(r.image_id, round(r.score, 12)) for r in batch])
        assert batches[0] == batches[1]

    def test_wrong_dataset_rejected(self, saved_index, tiny_dataset, tiny_clip):
        other = tiny_dataset.subset(tiny_dataset.positive_image_ids("cat_easy"))
        with pytest.raises(StoreError, match="dataset"):
            load_index(saved_index, other, tiny_clip)

    def test_missing_entry_rejected(self, tmp_path, tiny_dataset, tiny_clip):
        with pytest.raises(StoreError, match="No serialized index"):
            load_index(tmp_path / "nowhere", tiny_dataset, tiny_clip)

    def test_corrupt_meta_rejected(self, tmp_path, tiny_index, tiny_dataset, tiny_clip):
        directory = tmp_path / "entry"
        save_index(tiny_index, directory)
        (directory / META_FILE).write_text("{broken", encoding="utf-8")
        with pytest.raises(StoreError, match="Corrupt"):
            load_index(directory, tiny_dataset, tiny_clip)


class TestCacheKey:
    def test_key_is_stable(self, tiny_dataset, tiny_clip):
        config = SeeSawConfig(embedding_dim=64, seed=7)
        assert index_cache_key(tiny_dataset, tiny_clip, config) == index_cache_key(
            tiny_dataset, tiny_clip, config
        )

    def test_key_changes_with_index_affecting_config(self, tiny_dataset, tiny_clip):
        config = SeeSawConfig(embedding_dim=64, seed=7)
        coarse = config.with_overrides(multiscale=MultiscaleConfig(enabled=False))
        assert index_cache_key(tiny_dataset, tiny_clip, config) != index_cache_key(
            tiny_dataset, tiny_clip, coarse
        )

    def test_key_ignores_runtime_only_config(self, tiny_dataset, tiny_clip):
        config = SeeSawConfig(embedding_dim=64, seed=7)
        retuned = config.with_overrides(fit_bias=True, index_cache_dir="/elsewhere")
        assert index_cache_key(tiny_dataset, tiny_clip, config) == index_cache_key(
            tiny_dataset, tiny_clip, retuned
        )

    def test_key_changes_with_dataset_content(self, tiny_dataset, tiny_clip):
        config = SeeSawConfig(embedding_dim=64, seed=7)
        half = [image.image_id for image in tiny_dataset.images][: len(tiny_dataset) // 2]
        subset = tiny_dataset.subset(half, name=tiny_dataset.name)
        assert index_cache_key(tiny_dataset, tiny_clip, config) != index_cache_key(
            subset, tiny_clip, config
        )


class TestIndexCache:
    def test_miss_builds_and_persists_then_hits(self, tmp_path, tiny_dataset, tiny_clip):
        cache = IndexCache(tmp_path / "cache")
        config = SeeSawConfig(embedding_dim=64, seed=7)
        built, was_cached = cache.load_or_build(tiny_dataset, tiny_clip, config)
        assert not was_cached
        assert len(cache.entries()) == 1
        loaded, was_cached = cache.load_or_build(tiny_dataset, tiny_clip, config)
        assert was_cached
        assert np.allclose(loaded.store.vectors, built.store.vectors)

    def test_corrupt_entry_is_a_miss(self, tmp_path, tiny_dataset, tiny_clip):
        cache = IndexCache(tmp_path / "cache")
        config = SeeSawConfig(embedding_dim=64, seed=7)
        cache.load_or_build(tiny_dataset, tiny_clip, config)
        key = cache.key(tiny_dataset, tiny_clip, config)
        (cache.path_for(key) / META_FILE).write_text("{broken", encoding="utf-8")
        assert cache.load(key, tiny_dataset, tiny_clip) is None
        # The broken entry was evicted so the next build can re-persist.
        assert not cache.contains(key)

    def test_evict(self, tmp_path, tiny_dataset, tiny_clip):
        cache = IndexCache(tmp_path / "cache")
        config = SeeSawConfig(embedding_dim=64, seed=7)
        cache.load_or_build(tiny_dataset, tiny_clip, config)
        key = cache.key(tiny_dataset, tiny_clip, config)
        assert cache.contains(key)
        cache.evict(key)
        assert not cache.contains(key)
        assert cache.entries() == []


class TestShardedTopologyAndCache:
    """Sharding is a runtime topology: invisible to keys and artifacts."""

    def test_cache_key_ignores_shard_and_window_knobs(self, tiny_dataset, tiny_clip):
        base = SeeSawConfig(embedding_dim=64, seed=7)
        scaled = SeeSawConfig(embedding_dim=64, seed=7, n_shards=8, batch_window_ms=5.0)
        assert index_cache_key(tiny_dataset, tiny_clip, base) == index_cache_key(
            tiny_dataset, tiny_clip, scaled
        )

    def test_sharded_index_serializes_as_flat_store(
        self, tiny_index, tiny_dataset, tiny_clip, tmp_path
    ):
        from repro.core.indexing import SeeSawIndex
        from repro.vectorstore import ExactVectorStore, ShardedVectorStore

        sharded = SeeSawIndex(
            dataset=tiny_dataset,
            embedding=tiny_clip,
            store=ShardedVectorStore.wrap(tiny_index.store, 3),
            image_vector_ids={
                image_id: tiny_index.vector_ids_for_image(image_id)
                for image_id in tiny_index.image_ids
            },
            knn_graph=tiny_index.knn_graph,
            db_matrix=tiny_index.db_matrix,
            config=tiny_index.config,
            build_report=tiny_index.build_report,
        )
        directory = tmp_path / "sharded-entry"
        save_index(sharded, directory)
        loaded = load_index(directory, tiny_dataset, tiny_clip)
        # Loads back flat (the service re-applies its configured topology)...
        assert isinstance(loaded.store, ExactVectorStore)
        # ...with bit-identical vectors: unit rows round-trip unrenormalized.
        assert np.array_equal(
            np.asarray(loaded.store.vectors), np.asarray(tiny_index.store.vectors)
        )

    def test_service_shards_cache_loaded_index(self, tiny_dataset, tiny_clip, tmp_path):
        from repro.server import SeeSawService
        from repro.vectorstore import ShardedVectorStore

        cache_dir = str(tmp_path / "cache")
        flat_config = SeeSawConfig(embedding_dim=64, seed=7, index_cache_dir=cache_dir)
        cold = SeeSawService(flat_config)
        cold.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        assert cold.cache_misses == 1

        sharded_config = SeeSawConfig(
            embedding_dim=64, seed=7, index_cache_dir=cache_dir, n_shards=3
        )
        warm = SeeSawService(sharded_config)
        warm.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        # Same cache entry (the knob is excluded from the key), but the
        # loaded index comes up partitioned.
        assert warm.cache_hits == 1
        store = warm.index_for("tiny").store
        assert isinstance(store, ShardedVectorStore)
        assert store.n_shards == 3


class TestMmapLayout:
    """The raw .npy layout: zero-copy loads, with npz read-compat."""

    def test_default_layout_is_raw_npy(self, saved_index):
        assert (saved_index / "vectors.npy").exists()
        assert not (saved_index / "arrays.npz").exists()

    def test_mmap_load_is_zero_copy_and_read_only(
        self, saved_index, tiny_index, tiny_dataset, tiny_clip
    ):
        loaded = load_index(saved_index, tiny_dataset, tiny_clip, mmap=True)
        vectors = loaded.store.vectors
        assert not vectors.flags.writeable
        # The store adopted the on-disk mapping rather than copying it: the
        # view's base chain bottoms out at the memmap.
        base = vectors
        while isinstance(base.base, np.ndarray):
            base = base.base
        assert isinstance(base, np.memmap)
        assert np.array_equal(
            np.asarray(vectors), np.asarray(tiny_index.store.vectors)
        )

    def test_materialised_load_when_mmap_disabled(
        self, saved_index, tiny_dataset, tiny_clip
    ):
        loaded = load_index(saved_index, tiny_dataset, tiny_clip, mmap=False)
        base = loaded.store.vectors
        while isinstance(base.base, np.ndarray):
            base = base.base
        assert not isinstance(base, np.memmap)

    def test_npz_layout_round_trips(self, tiny_index, tiny_dataset, tiny_clip, tmp_path):
        directory = tmp_path / "compressed-entry"
        save_index(tiny_index, directory, arrays_format="npz")
        assert (directory / "arrays.npz").exists()
        assert not (directory / "vectors.npy").exists()
        loaded = load_index(directory, tiny_dataset, tiny_clip)
        assert np.array_equal(
            np.asarray(loaded.store.vectors), np.asarray(tiny_index.store.vectors)
        )
        assert np.array_equal(
            loaded.knn_graph.neighbor_ids, tiny_index.knn_graph.neighbor_ids
        )

    def test_legacy_entry_without_format_key_loads(
        self, tiny_index, tiny_dataset, tiny_clip, tmp_path
    ):
        """Entries written before arrays_format existed read as npz."""
        import json

        directory = tmp_path / "legacy-entry"
        save_index(tiny_index, directory, arrays_format="npz")
        meta_path = directory / META_FILE
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        del meta["arrays_format"]
        meta_path.write_text(json.dumps(meta, sort_keys=True), encoding="utf-8")
        loaded = load_index(directory, tiny_dataset, tiny_clip)
        assert np.array_equal(
            np.asarray(loaded.store.vectors), np.asarray(tiny_index.store.vectors)
        )

    def test_unknown_arrays_format_rejected(self, tiny_index, tmp_path):
        with pytest.raises(StoreError, match="arrays format"):
            save_index(tiny_index, tmp_path / "entry", arrays_format="parquet")


class TestComputeDtypeTier:
    """The compute dtype is an on-disk property: keyed, stored, round-tripped."""

    def test_float32_changes_key_but_runtime_tiers_do_not(
        self, tiny_dataset, tiny_clip
    ):
        base = SeeSawConfig(embedding_dim=64, seed=7)
        f32 = base.with_overrides(compute_dtype="float32")
        runtime = base.with_overrides(
            quantized_store=True, quantized_rerank_factor=8, mmap_index=False
        )
        assert index_cache_key(tiny_dataset, tiny_clip, base) != index_cache_key(
            tiny_dataset, tiny_clip, f32
        )
        assert index_cache_key(tiny_dataset, tiny_clip, base) == index_cache_key(
            tiny_dataset, tiny_clip, runtime
        )

    def test_float32_index_round_trips_in_float32(
        self, tiny_dataset, tiny_clip, tmp_path
    ):
        from repro.core.indexing import SeeSawIndex

        config = SeeSawConfig(embedding_dim=64, seed=7, compute_dtype="float32")
        index = SeeSawIndex.build(tiny_dataset, tiny_clip, config)
        assert index.store.vectors.dtype == np.float32
        directory = tmp_path / "f32-entry"
        save_index(index, directory)
        loaded = load_index(directory, tiny_dataset, tiny_clip)
        assert loaded.store.vectors.dtype == np.float32
        # Bit-identical round trip: stored in the compute dtype, re-adopted
        # without renormalisation.
        assert np.array_equal(
            np.asarray(loaded.store.vectors), np.asarray(index.store.vectors)
        )

    def test_quantized_store_kind_round_trips(
        self, tiny_dataset, tiny_clip, tmp_path
    ):
        from repro.core.indexing import SeeSawIndex
        from repro.vectorstore import QuantizedVectorStore

        config = SeeSawConfig(embedding_dim=64, seed=7, quantized_rerank_factor=6)
        index = SeeSawIndex.build(
            tiny_dataset, tiny_clip, config, store_kind="quantized"
        )
        directory = tmp_path / "quantized-entry"
        save_index(index, directory)
        loaded = load_index(directory, tiny_dataset, tiny_clip)
        assert isinstance(loaded.store, QuantizedVectorStore)
        assert loaded.store.rerank_factor == 6


class TestBuildSingleFlight:
    """Concurrent cold starts sharing a cache dir pay exactly one build."""

    def _config(self) -> SeeSawConfig:
        return SeeSawConfig(embedding_dim=64, seed=7)

    def test_concurrent_load_or_build_builds_once(
        self, tmp_path, tiny_dataset, tiny_clip, monkeypatch
    ):
        import threading

        from repro.core.indexing import SeeSawIndex

        # Two caches over one directory model two cold processes.
        caches = [
            IndexCache(tmp_path / "cache", lock_poll_seconds=0.005) for _ in range(2)
        ]
        real_build = SeeSawIndex.build
        builds = []
        entered = threading.Event()

        def slow_build(*args, **kwargs):
            builds.append(threading.get_ident())
            entered.set()
            import time as _time

            _time.sleep(0.05)  # hold the build long enough for a real race
            return real_build(*args, **kwargs)

        monkeypatch.setattr(SeeSawIndex, "build", slow_build)
        results = [None, None]

        def run(slot):
            results[slot] = caches[slot].load_or_build(
                tiny_dataset, tiny_clip, self._config()
            )

        threads = [threading.Thread(target=run, args=(slot,)) for slot in range(2)]
        threads[0].start()
        entered.wait(timeout=5)
        threads[1].start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(builds) == 1
        cached_flags = sorted(result[1] for result in results)
        assert cached_flags == [False, True]
        assert np.allclose(
            results[0][0].store.vectors, results[1][0].store.vectors
        )
        # The sentinel was released.
        key = caches[0].key(tiny_dataset, tiny_clip, self._config())
        assert not caches[0].build_lock_path(key).exists()

    def test_waiter_loads_entry_finished_by_lock_holder(
        self, tmp_path, tiny_dataset, tiny_clip
    ):
        import threading

        cache = IndexCache(tmp_path / "cache", lock_poll_seconds=0.005)
        config = self._config()
        key = cache.key(tiny_dataset, tiny_clip, config)
        # A foreign "process" holds the build lock...
        token = cache._try_acquire_build_lock(key)
        assert token is not None
        result = {}

        def run():
            result["value"] = cache.load_or_build(tiny_dataset, tiny_clip, config)

        thread = threading.Thread(target=run)
        thread.start()
        # ...finishes its build and releases; the waiter must load, not build.
        builder = IndexCache(tmp_path / "cache")
        from repro.core.indexing import SeeSawIndex

        builder.store(key, SeeSawIndex.build(tiny_dataset, tiny_clip, config))
        cache._release_build_lock(key, token)
        thread.join(timeout=30)
        index, was_cached = result["value"]
        assert was_cached
        assert index.store.vectors.shape[0] > 0

    def test_stale_lock_is_stolen(self, tmp_path, tiny_dataset, tiny_clip):
        import os
        import time

        cache = IndexCache(
            tmp_path / "cache", lock_poll_seconds=0.005, lock_stale_seconds=0.01
        )
        config = self._config()
        key = cache.key(tiny_dataset, tiny_clip, config)
        # A crashed builder left its sentinel behind, long ago.
        assert cache._try_acquire_build_lock(key) is not None
        stale = time.time() - 60.0
        os.utime(cache.build_lock_path(key), (stale, stale))
        index, was_cached = cache.load_or_build(tiny_dataset, tiny_clip, config)
        assert not was_cached  # the steal proceeded to a fresh build
        assert cache.contains(key)
        assert not cache.build_lock_path(key).exists()


class TestServiceStoreTiers:
    """The service applies runtime tiers on load and reports them."""

    def test_quantized_tier_applied_and_composed_with_sharding(
        self, tiny_dataset, tiny_clip, tmp_path
    ):
        from repro.server import SeeSawService
        from repro.vectorstore import QuantizedVectorStore, ShardedVectorStore

        cache_dir = str(tmp_path / "cache")
        flat = SeeSawService(
            SeeSawConfig(embedding_dim=64, seed=7, index_cache_dir=cache_dir)
        )
        flat.register_dataset(tiny_dataset, tiny_clip, preprocess=True)

        tiered = SeeSawService(
            SeeSawConfig(
                embedding_dim=64,
                seed=7,
                index_cache_dir=cache_dir,
                quantized_store=True,
                quantized_rerank_factor=5,
                n_shards=2,
            )
        )
        tiered.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        # Same cache entry (runtime tiers are excluded from the key)...
        assert tiered.cache_hits == 1
        store = tiered.index_for("tiny").store
        # ...loaded as quantized shards.
        assert isinstance(store, ShardedVectorStore)
        assert all(
            isinstance(inner, QuantizedVectorStore) for inner in store.shard_stores
        )
        tiers = tiered.store_tiers
        assert tiers["tiny"]["quantized"] is True
        assert tiers["tiny"]["rerank_factor"] == 5
        assert tiers["tiny"]["shards"] == 2
        assert tiers["tiny"]["compute_dtype"] == "float64"

    def test_healthz_reports_storage_and_compute_tiers(
        self, tiny_dataset, tiny_clip, tmp_path
    ):
        from repro.server import SeeSawService
        from repro.server.manager import SessionManager

        service = SeeSawService(
            SeeSawConfig(
                embedding_dim=64,
                seed=7,
                index_cache_dir=str(tmp_path / "cache"),
                compute_dtype="float32",
                quantized_store=True,
            )
        )
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        health = SessionManager(service).health()
        assert health["compute_dtype"] == "float32"
        assert health["quantized_store"] is True
        assert health["mmap_index"] is True
        assert health["store_tiers"]["tiny"]["compute_dtype"] == "float32"
        assert health["store_tiers"]["tiny"]["quantized"] is True

    def test_float32_sessions_return_results(self, tiny_dataset, tiny_clip, tmp_path):
        """A float32 + quantized service serves a full interactive round."""
        from repro.server import SeeSawService
        from repro.server.api import StartSessionRequest

        service = SeeSawService(
            SeeSawConfig(
                embedding_dim=64,
                seed=7,
                compute_dtype="float32",
                quantized_store=True,
            )
        )
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        info = service.start_session(
            StartSessionRequest(dataset="tiny", text_query="cat_easy", batch_size=4)
        )
        response = service.next_results(info.session_id)
        assert len(response.items) == 4
        assert all(np.isfinite(item.score) for item in response.items)


class TestReviewRegressions:
    """Pins for the review findings on the tier/lock machinery."""

    def test_rerank_factor_keys_quantized_builds_only(self, tiny_dataset, tiny_clip):
        base = SeeSawConfig(embedding_dim=64, seed=7)
        retuned = base.with_overrides(quantized_rerank_factor=8)
        # For the quantized store kind the factor is baked into the entry,
        # so it must change the key...
        assert index_cache_key(
            tiny_dataset, tiny_clip, base, store_kind="quantized"
        ) != index_cache_key(tiny_dataset, tiny_clip, retuned, store_kind="quantized")
        # ...while for exact entries (the runtime-tier path) it stays out.
        assert index_cache_key(tiny_dataset, tiny_clip, base) == index_cache_key(
            tiny_dataset, tiny_clip, retuned
        )

    def test_zero_row_corpus_round_trips_through_mmap(self, tmp_path):
        """Zero vectors are canonical: they must not break the zero-copy load."""
        from repro.data.geometry import BoundingBox
        from repro.vectorstore import ExactVectorStore, VectorRecord

        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((6, 8))
        vectors[2] = 0.0  # a legitimately zero (e.g. padded) vector
        records = [
            VectorRecord(vector_id=i, image_id=i, box=BoundingBox(0, 0, 4, 4))
            for i in range(6)
        ]
        store = ExactVectorStore(vectors, records)
        assert np.all(store.vectors[2] == 0.0)
        # Re-adopting the canonical rows (as a cache load does) is zero-copy.
        readopted = ExactVectorStore(store.vectors, records)
        assert np.shares_memory(readopted.vectors, store.vectors)

    def test_slow_builder_does_not_release_a_stolen_lock(
        self, tmp_path, tiny_dataset, tiny_clip
    ):
        cache_a = IndexCache(tmp_path / "cache")
        cache_b = IndexCache(tmp_path / "cache", lock_stale_seconds=0.01)
        config = SeeSawConfig(embedding_dim=64, seed=7)
        key = cache_a.key(tiny_dataset, tiny_clip, config)
        # A claims, then stalls past staleness; B steals and re-claims.
        token_a = cache_a._try_acquire_build_lock(key)
        assert token_a is not None
        import os as _os
        import time as _time

        stale = _time.time() - 60.0
        _os.utime(cache_a.build_lock_path(key), (stale, stale))
        assert cache_b._lock_is_stale(key)
        cache_b._steal_stale_lock(key)
        token_b = cache_b._try_acquire_build_lock(key)
        assert token_b is not None
        # A finishing late must not delete B's live sentinel — even when A
        # and B are threads of the same cache instance (tokens are local to
        # each claim, never shared instance state).
        cache_a._release_build_lock(key, token_a)
        assert cache_a.build_lock_path(key).exists()
        cache_b._release_build_lock(key, token_b)
        assert not cache_b.build_lock_path(key).exists()

    def test_stale_steal_is_single_winner(self, tmp_path, tiny_dataset, tiny_clip):
        cache = IndexCache(tmp_path / "cache")
        config = SeeSawConfig(embedding_dim=64, seed=7)
        key = cache.key(tiny_dataset, tiny_clip, config)
        assert cache._try_acquire_build_lock(key) is not None
        # A steal decided against a sentinel that turned out to be fresh
        # (another waiter re-claimed between the staleness check and the
        # rename) must restore it, not delete it.
        cache._steal_stale_lock(key)
        assert cache.build_lock_path(key).exists()
        # Once genuinely stale, exactly one stealer removes it; a second
        # stealer's rename has already lost and is a silent no-op.
        import os as _os
        import time as _time

        stale = _time.time() - 2 * cache.lock_stale_seconds
        _os.utime(cache.build_lock_path(key), (stale, stale))
        cache._steal_stale_lock(key)
        cache._steal_stale_lock(key)
        other = IndexCache(tmp_path / "cache")
        assert other._try_acquire_build_lock(key) is not None


class TestGraphStoreSerialization:
    """The graph kind on disk: adjacency artifacts, back-compat, rebuild."""

    @pytest.fixture(scope="class")
    def graph_index(self, tiny_dataset, tiny_clip):
        from repro.core.indexing import SeeSawIndex

        config = SeeSawConfig(
            embedding_dim=64, seed=7, ann_search=True, ann_ef=48, ann_graph_degree=8
        )
        return SeeSawIndex.build(tiny_dataset, tiny_clip, config, store_kind="graph")

    def test_adjacency_persisted_and_mmap_adopted(
        self, graph_index, tiny_dataset, tiny_clip, tmp_path_factory
    ):
        from repro.vectorstore import GraphANNVectorStore

        directory = tmp_path_factory.mktemp("graph") / "entry"
        save_index(graph_index, directory)
        for name in ("graph_offsets", "graph_neighbors", "graph_entries"):
            assert (directory / f"{name}.npy").exists()
        loaded = load_index(directory, tiny_dataset, tiny_clip, mmap=True)
        store = loaded.store
        assert isinstance(store, GraphANNVectorStore)
        assert store.graph_degree == 8 and store.ef == 48 and store.seed == 7
        # The adjacency was adopted from the mapping, not rebuilt: the
        # neighbor array's base chain bottoms out at the memmap.
        base = store.graph_neighbors
        while isinstance(base.base, np.ndarray):
            base = base.base
        assert isinstance(base, np.memmap)
        # Same descent, same answers as the in-memory build.
        query = graph_index.embed_query("anything")
        built_ids, built_scores = graph_index.store.search_arrays(query, 5)
        loaded_ids, loaded_scores = store.search_arrays(query, 5)
        assert np.array_equal(built_ids, loaded_ids)
        np.testing.assert_allclose(built_scores, loaded_scores, rtol=0, atol=1e-12)

    def test_graph_entry_without_adjacency_rebuilds(
        self, graph_index, tiny_dataset, tiny_clip, tmp_path
    ):
        """Entries persisting parameters alone (e.g. written from a sharded
        graph store) rebuild the flat graph deterministically at load."""
        from repro.vectorstore import GraphANNVectorStore

        directory = tmp_path / "entry"
        save_index(graph_index, directory)
        for name in ("graph_offsets", "graph_neighbors", "graph_entries"):
            (directory / f"{name}.npy").unlink()
        loaded = load_index(directory, tiny_dataset, tiny_clip)
        store = loaded.store
        assert isinstance(store, GraphANNVectorStore)
        assert store.graph_degree == 8 and store.ef == 48
        query = graph_index.embed_query("anything")
        built_ids, _ = graph_index.store.search_arrays(query, 5)
        rebuilt_ids, _ = store.search_arrays(query, 5)
        assert np.array_equal(built_ids, rebuilt_ids)

    def test_sharded_graph_serializes_params_only(
        self, graph_index, tiny_dataset, tiny_clip, tmp_path
    ):
        from repro.core.indexing import SeeSawIndex
        from repro.vectorstore import GraphANNVectorStore, ShardedVectorStore

        sharded = SeeSawIndex(
            dataset=tiny_dataset,
            embedding=tiny_clip,
            store=ShardedVectorStore.wrap(graph_index.store, 3),
            image_vector_ids={
                image_id: graph_index.vector_ids_for_image(image_id)
                for image_id in graph_index.image_ids
            },
            knn_graph=graph_index.knn_graph,
            db_matrix=graph_index.db_matrix,
            config=graph_index.config,
            build_report=graph_index.build_report,
        )
        directory = tmp_path / "sharded-graph"
        save_index(sharded, directory)
        # No shard-local adjacency leaks into the flat artifact...
        assert not (directory / "graph_neighbors.npy").exists()
        # ...and the entry loads back as a flat graph store with the same
        # parameters (the service re-applies its shard topology).
        loaded = load_index(directory, tiny_dataset, tiny_clip)
        assert isinstance(loaded.store, GraphANNVectorStore)
        assert loaded.store.graph_degree == 8

    def test_pre_graph_entries_still_load(
        self, tiny_index, tiny_dataset, tiny_clip, tmp_path
    ):
        """Exact-kind artifacts (npy and npz, no graph_* arrays) are untouched
        by the graph tier's serialization additions."""
        for layout in ("npy", "npz"):
            directory = tmp_path / f"pre-graph-{layout}"
            save_index(tiny_index, directory, arrays_format=layout)
            assert not (directory / "graph_neighbors.npy").exists()
            loaded = load_index(directory, tiny_dataset, tiny_clip)
            assert np.array_equal(
                np.asarray(loaded.store.vectors), np.asarray(tiny_index.store.vectors)
            )

    def test_graph_key_includes_degree_but_not_ef(self, tiny_dataset, tiny_clip):
        base = SeeSawConfig(embedding_dim=64, seed=7)
        degree = base.with_overrides(ann_graph_degree=32)
        ef = base.with_overrides(ann_ef=256)
        assert index_cache_key(
            tiny_dataset, tiny_clip, base, store_kind="graph"
        ) != index_cache_key(tiny_dataset, tiny_clip, degree, store_kind="graph")
        assert index_cache_key(
            tiny_dataset, tiny_clip, base, store_kind="graph"
        ) == index_cache_key(tiny_dataset, tiny_clip, ef, store_kind="graph")
        # For every other kind the degree is a runtime knob, out of the key.
        assert index_cache_key(tiny_dataset, tiny_clip, base) == index_cache_key(
            tiny_dataset, tiny_clip, degree
        )

    def test_service_applies_ann_tier_and_reports_it(
        self, tiny_dataset, tiny_clip, tmp_path
    ):
        from repro.server import SeeSawService
        from repro.vectorstore import GraphANNVectorStore

        config = SeeSawConfig(
            embedding_dim=64,
            seed=7,
            index_cache_dir=str(tmp_path / "cache"),
            ann_search=True,
            ann_ef=48,
            ann_graph_degree=8,
        )
        service = SeeSawService(config)
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        store = service.index_for("tiny").store
        assert isinstance(store, GraphANNVectorStore)
        tier = service.store_tiers["tiny"]
        assert tier["graph"] is True
        assert tier["ann_graph_degree"] == 8
        assert tier["ann_ef"] == 48


class TestCacheSweep:
    """LRU bounding and sentinel cleanup (the live-merge growth guard)."""

    def _fill(self, tmp_path, tiny_dataset, tiny_clip, seeds, max_entries=None):
        cache = IndexCache(tmp_path / "cache", max_entries=max_entries)
        keys = []
        for seed in seeds:
            config = SeeSawConfig(embedding_dim=64, seed=seed)
            cache.load_or_build(tiny_dataset, tiny_clip, config)
            keys.append(cache.key(tiny_dataset, tiny_clip, config))
        return cache, keys

    def test_max_entries_validated(self, tmp_path):
        with pytest.raises(StoreError, match="max_entries"):
            IndexCache(tmp_path / "cache", max_entries=0)

    def test_unbounded_sweep_keeps_everything(
        self, tmp_path, tiny_dataset, tiny_clip
    ):
        cache, _ = self._fill(tmp_path, tiny_dataset, tiny_clip, (1, 2, 3))
        assert cache.sweep() == []
        assert len(cache.entries()) == 3

    def test_sweep_evicts_oldest_first(self, tmp_path, tiny_dataset, tiny_clip):
        import os as _os
        import time as _time

        cache, keys = self._fill(
            tmp_path, tiny_dataset, tiny_clip, (1, 2, 3), max_entries=2
        )
        # Make the first entry unambiguously the oldest.
        now = _time.time()
        _os.utime(cache.path_for(keys[0]), (now - 1000, now - 1000))
        evicted = cache.sweep()
        assert [path.name for path in evicted] == [keys[0][:32]]
        assert not cache.contains(keys[0])
        assert cache.contains(keys[1]) and cache.contains(keys[2])

    def test_pinned_entries_survive_even_over_budget(
        self, tmp_path, tiny_dataset, tiny_clip
    ):
        import os as _os
        import time as _time

        cache, keys = self._fill(
            tmp_path, tiny_dataset, tiny_clip, (1, 2, 3), max_entries=1
        )
        now = _time.time()
        for offset, key in enumerate(keys):
            stamp = now - 1000 + offset
            _os.utime(cache.path_for(key), (stamp, stamp))
        evicted = cache.sweep(pinned=[keys[0], keys[1]])
        # Only the unpinned entry can go; the pinned two stay although the
        # cache remains above max_entries.
        assert [path.name for path in evicted] == [keys[2][:32]]
        assert cache.contains(keys[0]) and cache.contains(keys[1])

    def test_orphaned_sentinels_cleaned(self, tmp_path, tiny_dataset, tiny_clip):
        import os as _os
        import time as _time

        cache = IndexCache(tmp_path / "cache", lock_stale_seconds=60.0)
        stale = cache.cache_dir / "deadbeef.building"
        fresh = cache.cache_dir / "cafebabe.building"
        stale.touch()
        fresh.touch()
        old = _time.time() - 3600
        _os.utime(stale, (old, old))
        cache.sweep()
        assert not stale.exists()  # crashed builder's orphan removed
        assert fresh.exists()  # an in-progress build is left alone


class TestAtomicManifestWrite:
    """Crash-safety of :func:`repro.store.serialize.write_json_atomic`."""

    def test_round_trip_and_canonical_bytes(self, tmp_path):
        import json

        from repro.store import write_json_atomic

        target = tmp_path / "nested" / "manifest.json"
        write_json_atomic(target, {"b": 2, "a": 1})
        assert json.loads(target.read_text(encoding="utf-8")) == {"a": 1, "b": 2}
        # Keys are sorted so repeated writes of equal payloads are identical.
        first = target.read_bytes()
        write_json_atomic(target, {"a": 1, "b": 2})
        assert target.read_bytes() == first
        assert not list(target.parent.glob(".manifest.json.*"))

    def test_crash_before_replace_preserves_old_manifest(
        self, tmp_path, monkeypatch
    ):
        import json
        import os as _os

        from repro.store import write_json_atomic

        target = tmp_path / "manifest.json"
        write_json_atomic(target, {"version": 1})

        def exploding_replace(src, dst):
            raise OSError("simulated crash at the rename boundary")

        monkeypatch.setattr(_os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            write_json_atomic(target, {"version": 2})
        monkeypatch.undo()
        # Old manifest intact, no temp litter left behind.
        assert json.loads(target.read_text(encoding="utf-8")) == {"version": 1}
        assert list(tmp_path.iterdir()) == [target]

    def test_crash_mid_write_preserves_old_manifest(self, tmp_path, monkeypatch):
        import json

        from repro.store import serialize as serialize_module
        from repro.store.serialize import write_json_atomic

        target = tmp_path / "manifest.json"
        write_json_atomic(target, {"version": 1})

        def exploding_dump(payload, handle, **kwargs):
            handle.write('{"version": ')  # partial bytes hit the temp file
            raise OSError("simulated crash mid-serialization")

        monkeypatch.setattr(serialize_module.json, "dump", exploding_dump)
        with pytest.raises(OSError, match="mid-serialization"):
            write_json_atomic(target, {"version": 2})
        monkeypatch.undo()
        assert json.loads(target.read_text(encoding="utf-8")) == {"version": 1}
        assert list(tmp_path.iterdir()) == [target]
