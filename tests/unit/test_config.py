"""Tests for configuration dataclasses and their validation."""

import pytest

from repro.config import (
    PAPER_DEFAULT_CONFIG,
    BenchmarkTaskConfig,
    KnnGraphConfig,
    LossWeights,
    MultiscaleConfig,
    OptimizerConfig,
    SeeSawConfig,
)
from repro.exceptions import ConfigurationError


class TestLossWeights:
    def test_defaults_are_positive(self):
        weights = LossWeights()
        assert weights.lambda_norm > 0
        assert weights.lambda_clip > 0
        assert weights.lambda_db > 0

    def test_zero_weights_allowed(self):
        weights = LossWeights(lambda_norm=0, lambda_clip=0, lambda_db=0)
        assert weights.lambda_clip == 0

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            LossWeights(lambda_norm=-1)


class TestKnnGraphConfig:
    def test_defaults(self):
        config = KnnGraphConfig()
        assert config.k == 10
        assert config.sigma == pytest.approx(0.05)

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            KnnGraphConfig(k=0)

    def test_invalid_sigma(self):
        with pytest.raises(ConfigurationError):
            KnnGraphConfig(sigma=0)

    def test_invalid_sample_rate(self):
        with pytest.raises(ConfigurationError):
            KnnGraphConfig(nn_descent_sample_rate=1.5)


class TestMultiscaleConfig:
    def test_defaults_match_paper(self):
        config = MultiscaleConfig()
        assert config.min_patch_pixels == 224
        assert config.patch_fraction == pytest.approx(0.5)

    def test_zero_patch_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiscaleConfig(patch_fraction=0.0)


class TestOptimizerConfig:
    def test_wolfe_constants_ordering(self):
        with pytest.raises(ConfigurationError):
            OptimizerConfig(wolfe_c1=0.9, wolfe_c2=0.1)

    def test_invalid_iterations(self):
        with pytest.raises(ConfigurationError):
            OptimizerConfig(max_iterations=0)


class TestBenchmarkTaskConfig:
    def test_paper_cutoffs(self):
        config = BenchmarkTaskConfig()
        assert config.target_results == 10
        assert config.max_images == 60

    def test_budget_must_cover_target(self):
        with pytest.raises(ConfigurationError):
            BenchmarkTaskConfig(target_results=10, max_images=5)


class TestSeeSawConfig:
    def test_with_overrides_returns_new_object(self):
        config = SeeSawConfig()
        changed = config.with_overrides(use_db_alignment=False)
        assert changed.use_db_alignment is False
        assert config.use_db_alignment is True

    def test_describe_contains_key_knobs(self):
        described = SeeSawConfig().describe()
        assert "lambda_db" in described
        assert "knn_k" in described

    def test_invalid_dimension(self):
        with pytest.raises(ConfigurationError):
            SeeSawConfig(embedding_dim=1)

    def test_paper_default_config_exists(self):
        assert PAPER_DEFAULT_CONFIG.task.target_results == 10


class TestScalingKnobs:
    def test_defaults_keep_flat_store_and_no_window(self):
        config = SeeSawConfig()
        assert config.n_shards == 1
        assert config.batch_window_ms == 0.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError, match="n_shards"):
            SeeSawConfig(n_shards=0)
        with pytest.raises(ConfigurationError, match="batch_window_ms"):
            SeeSawConfig(batch_window_ms=-1.0)

    def test_round_trip_through_dict(self):
        config = SeeSawConfig(n_shards=4, batch_window_ms=2.5)
        rebuilt = SeeSawConfig.from_dict(config.to_dict())
        assert rebuilt.n_shards == 4
        assert rebuilt.batch_window_ms == 2.5

    def test_describe_reports_the_knobs(self):
        described = SeeSawConfig(n_shards=3, batch_window_ms=5.0).describe()
        assert described["n_shards"] == 3
        assert described["batch_window_ms"] == 5.0


class TestStorageComputeTierKnobs:
    def test_defaults_are_bit_parity_float64_with_mmap(self):
        config = SeeSawConfig()
        assert config.compute_dtype == "float64"
        assert config.quantized_store is False
        assert config.quantized_rerank_factor == 4
        assert config.mmap_index is True

    def test_invalid_tier_values_rejected(self):
        with pytest.raises(ConfigurationError, match="compute_dtype"):
            SeeSawConfig(compute_dtype="float16")
        with pytest.raises(ConfigurationError, match="quantized_rerank_factor"):
            SeeSawConfig(quantized_rerank_factor=0)

    def test_round_trip_through_dict(self):
        config = SeeSawConfig(
            compute_dtype="float32",
            quantized_store=True,
            quantized_rerank_factor=8,
            mmap_index=False,
        )
        rebuilt = SeeSawConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_describe_reports_the_tier_knobs(self):
        described = SeeSawConfig(
            compute_dtype="float32", quantized_store=True
        ).describe()
        assert described["compute_dtype"] == "float32"
        assert described["quantized_store"] is True
        assert described["quantized_rerank_factor"] == 4
        assert described["mmap_index"] is True
