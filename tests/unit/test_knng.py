"""Tests for the kNN-graph substrate (kernels, exact, NN-descent, graph matrices)."""

import numpy as np
import pytest
from scipy import sparse

from repro.config import KnnGraphConfig
from repro.exceptions import IndexingError
from repro.knng.graph import build_knn_graph
from repro.knng.kernels import gaussian_similarity, squared_distance_from_inner
from repro.knng.nndescent import exact_knn, nn_descent
from repro.utils.linalg import normalize_rows


@pytest.fixture()
def clustered_vectors(rng):
    """Three well-separated clusters of unit vectors."""
    centers = normalize_rows(rng.standard_normal((3, 16)))
    points = []
    for center in centers:
        points.append(normalize_rows(center + 0.05 * rng.standard_normal((40, 16))))
    return np.vstack(points)


class TestKernels:
    def test_gaussian_similarity_range(self):
        distances = np.array([0.0, 0.1, 1.0])
        weights = gaussian_similarity(distances, sigma=0.3)
        assert weights[0] == pytest.approx(1.0)
        assert np.all(np.diff(weights) < 0)

    def test_invalid_sigma(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            gaussian_similarity(np.array([1.0]), sigma=0.0)

    def test_squared_distance_from_inner(self):
        inner = np.array([1.0, 0.0, -1.0])
        expected = np.array([0.0, 2.0, 4.0])
        assert np.allclose(squared_distance_from_inner(inner), expected)


class TestExactKnn:
    def test_neighbors_are_sorted_and_exclude_self(self, clustered_vectors):
        ids, sims = exact_knn(clustered_vectors, k=5)
        assert ids.shape == (120, 5)
        for node in range(ids.shape[0]):
            assert node not in ids[node]
            assert np.all(np.diff(sims[node]) <= 1e-12)

    def test_matches_bruteforce_for_small_input(self, rng):
        vectors = normalize_rows(rng.standard_normal((30, 8)))
        ids, _ = exact_knn(vectors, k=3)
        sims = vectors @ vectors.T
        np.fill_diagonal(sims, -np.inf)
        expected = np.argsort(-sims, axis=1)[:, :3]
        assert np.array_equal(np.sort(ids, axis=1), np.sort(expected, axis=1))

    def test_requires_two_vectors(self):
        with pytest.raises(IndexingError):
            exact_knn(np.ones((1, 4)), k=1)


class TestNnDescent:
    def test_recall_against_exact(self, clustered_vectors):
        exact_ids, _ = exact_knn(clustered_vectors, k=5)
        approx_ids, _ = nn_descent(clustered_vectors, k=5, iterations=10, seed=0)
        recall = np.mean(
            [
                len(set(exact_ids[i]) & set(approx_ids[i])) / 5
                for i in range(clustered_vectors.shape[0])
            ]
        )
        assert recall > 0.8

    def test_invalid_arguments(self):
        with pytest.raises(IndexingError):
            nn_descent(np.ones((1, 4)), k=1)
        with pytest.raises(IndexingError):
            nn_descent(np.ones((10, 4)), k=2, sample_rate=0.0)

    def test_similarities_sorted(self, clustered_vectors):
        _, sims = nn_descent(clustered_vectors, k=4, seed=1)
        assert np.all(np.diff(sims, axis=1) <= 1e-12)


class TestKnnGraph:
    def test_adjacency_is_symmetric_and_sparse(self, clustered_vectors):
        graph = build_knn_graph(clustered_vectors, KnnGraphConfig(k=5))
        adjacency = graph.adjacency()
        assert sparse.issparse(adjacency)
        assert (abs(adjacency - adjacency.T)).nnz == 0

    def test_laplacian_is_psd(self, clustered_vectors):
        graph = build_knn_graph(clustered_vectors, KnnGraphConfig(k=5))
        laplacian = graph.laplacian().toarray()
        eigenvalues = np.linalg.eigvalsh((laplacian + laplacian.T) / 2)
        assert eigenvalues.min() > -1e-8

    def test_degree_matches_adjacency_row_sums(self, clustered_vectors):
        graph = build_knn_graph(clustered_vectors, KnnGraphConfig(k=4))
        adjacency = graph.adjacency()
        degree = graph.degree(adjacency).diagonal()
        assert np.allclose(degree, np.asarray(adjacency.sum(axis=1)).ravel())

    def test_neighbors_within_cluster(self, clustered_vectors):
        graph = build_knn_graph(clustered_vectors, KnnGraphConfig(k=5))
        # Points 0..39 belong to cluster 0; their neighbours should too.
        ids, _ = graph.neighbors_of(0)
        assert np.all(ids < 40)

    def test_nn_descent_path(self, clustered_vectors):
        config = KnnGraphConfig(k=5, use_nn_descent=True, nn_descent_iterations=5)
        graph = build_knn_graph(clustered_vectors, config, seed=0)
        assert graph.node_count == clustered_vectors.shape[0]

    def test_adaptive_sigma_keeps_weights_informative(self, clustered_vectors):
        graph = build_knn_graph(clustered_vectors, KnnGraphConfig(k=5, sigma=0.05))
        assert graph.neighbor_weights.max() > 0.1

    def test_unknown_node_raises(self, clustered_vectors):
        graph = build_knn_graph(clustered_vectors, KnnGraphConfig(k=3))
        with pytest.raises(IndexingError):
            graph.neighbors_of(10**6)
