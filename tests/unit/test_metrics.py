"""Tests for the paper-style AP metric and its aggregates."""

import numpy as np
import pytest

from repro.exceptions import BenchmarkError
from repro.metrics import (
    ApDistribution,
    average_precision_at_cutoff,
    average_precision_full,
    cumulative_distribution,
    delta_ap,
    hard_subset,
    mean_average_precision,
    precision_at_k,
    quantile_interval,
)


class TestAveragePrecisionAtCutoff:
    def test_perfect_run_scores_one(self):
        relevance = [True] * 10 + [False] * 50
        assert average_precision_at_cutoff(relevance, total_relevant=50) == pytest.approx(1.0)

    def test_no_results_scores_zero(self):
        assert average_precision_at_cutoff([False] * 60, total_relevant=30) == 0.0

    def test_earlier_results_score_higher(self):
        early = [True, True, False, False] + [False] * 20
        late = [False, False, True, True] + [False] * 20
        ap_early = average_precision_at_cutoff(early, total_relevant=2)
        ap_late = average_precision_at_cutoff(late, total_relevant=2)
        assert ap_early > ap_late

    def test_uses_r_when_fewer_than_target_positives_exist(self):
        # 3 positives in the dataset, all found immediately: AP should be 1.
        relevance = [True, True, True] + [False] * 10
        assert average_precision_at_cutoff(relevance, total_relevant=3) == pytest.approx(1.0)

    def test_missing_positives_counted_as_zero_precision(self):
        relevance = [True] + [False] * 59
        ap = average_precision_at_cutoff(relevance, total_relevant=10)
        assert ap == pytest.approx(0.1)

    def test_results_beyond_budget_ignored(self):
        relevance = [False] * 60 + [True] * 10
        assert average_precision_at_cutoff(relevance, total_relevant=10) == 0.0

    def test_stops_counting_after_target(self):
        relevance = [True] * 20
        ap = average_precision_at_cutoff(relevance, total_relevant=20, target_results=10)
        assert ap == pytest.approx(1.0)

    def test_zero_relevant_in_dataset(self):
        assert average_precision_at_cutoff([False, False], total_relevant=0) == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(BenchmarkError):
            average_precision_at_cutoff([True], total_relevant=-1)
        with pytest.raises(BenchmarkError):
            average_precision_at_cutoff([True], total_relevant=1, target_results=0)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            relevance = (rng.random(60) < 0.2).tolist()
            ap = average_precision_at_cutoff(relevance, total_relevant=30)
            assert 0.0 <= ap <= 1.0


class TestFullAveragePrecision:
    def test_perfect_ranking(self):
        scores = np.array([0.9, 0.8, 0.1, 0.05])
        labels = np.array([1.0, 1.0, 0.0, 0.0])
        assert average_precision_full(scores, labels) == pytest.approx(1.0)

    def test_worst_ranking(self):
        scores = np.array([0.9, 0.8, 0.1, 0.05])
        labels = np.array([0.0, 0.0, 1.0, 1.0])
        assert average_precision_full(scores, labels) == pytest.approx((1 / 3 + 2 / 4) / 2)

    def test_no_positives(self):
        assert average_precision_full(np.array([1.0, 2.0]), np.zeros(2)) == 0.0

    def test_mismatched_shapes(self):
        with pytest.raises(BenchmarkError):
            average_precision_full(np.array([1.0]), np.array([1.0, 0.0]))


class TestPrecisionAtK:
    def test_basic(self):
        assert precision_at_k([True, False, True, False], 2) == pytest.approx(0.5)

    def test_invalid_k(self):
        with pytest.raises(BenchmarkError):
            precision_at_k([True], 0)


class TestAggregates:
    def test_mean_ignores_nan(self):
        assert mean_average_precision([0.5, float("nan"), 1.0]) == pytest.approx(0.75)

    def test_delta_ap(self):
        deltas = delta_ap({"a": 0.8, "b": 0.3}, {"a": 0.5, "b": 0.4})
        assert deltas == {"a": pytest.approx(0.3), "b": pytest.approx(-0.1)}

    def test_delta_ap_missing_baseline(self):
        with pytest.raises(BenchmarkError):
            delta_ap({"a": 1.0}, {})

    def test_hard_subset_threshold(self):
        hard = hard_subset({"a": 0.2, "b": 0.7, "c": 0.49})
        assert hard == ["a", "c"]

    def test_cumulative_distribution(self):
        values, fractions = cumulative_distribution([0.3, 0.1, 0.2])
        assert np.allclose(values, [0.1, 0.2, 0.3])
        assert fractions[-1] == pytest.approx(1.0)

    def test_quantile_interval(self):
        low, high = quantile_interval(list(np.linspace(0, 1, 101)), 0.1, 0.9)
        assert low == pytest.approx(0.1, abs=0.02)
        assert high == pytest.approx(0.9, abs=0.02)

    def test_ap_distribution_summaries(self):
        dist = ApDistribution("coco", "zero_shot", {"a": 0.2, "b": 1.0, "c": 0.4})
        assert dist.mean == pytest.approx(np.mean([0.2, 1.0, 0.4]))
        assert dist.median == pytest.approx(0.4)
        assert dist.fraction_below(0.5) == pytest.approx(2 / 3)
        assert dist.count_below(0.5) == 2
        restricted = dist.restricted_to(["a"])
        assert restricted.per_query == {"a": 0.2}
