"""Shared fixtures: tiny datasets and indexes reused across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.suite import DatasetBundle, ExperimentScale, build_bundle
from repro.config import SeeSawConfig
from repro.core.indexing import SeeSawIndex
from repro.data.catalogs import load_dataset
from repro.data.dataset import CategoryInfo, ImageDataset
from repro.data.generators import CategorySpec, DatasetProfile, SceneGenerator
from repro.data.geometry import BoundingBox
from repro.data.image import ObjectInstance, SyntheticImage
from repro.embedding.synthetic_clip import SyntheticClip


@pytest.fixture(scope="session")
def tiny_scale() -> ExperimentScale:
    """The smallest experiment scale, used for integration tests."""
    return ExperimentScale.tiny()


@pytest.fixture(scope="session")
def bdd_bundle(tiny_scale: ExperimentScale) -> DatasetBundle:
    """A tiny BDD-like bundle (has both easy and hard named categories)."""
    return build_bundle("bdd", tiny_scale)


@pytest.fixture(scope="session")
def objectnet_bundle(tiny_scale: ExperimentScale) -> DatasetBundle:
    """A tiny ObjectNet-like bundle (single-object 224x224 images)."""
    return build_bundle("objectnet", tiny_scale)


@pytest.fixture(scope="session")
def bdd_multiscale_index(bdd_bundle: DatasetBundle) -> SeeSawIndex:
    """Multiscale index over the tiny BDD-like dataset."""
    return bdd_bundle.multiscale_index


@pytest.fixture(scope="session")
def bdd_coarse_index(bdd_bundle: DatasetBundle) -> SeeSawIndex:
    """Coarse (one vector per image) index over the tiny BDD-like dataset."""
    return bdd_bundle.coarse_index


@pytest.fixture(scope="session")
def tiny_dataset() -> ImageDataset:
    """A handcrafted four-category dataset small enough to reason about."""
    profile = DatasetProfile(
        name="tiny",
        description="hand-sized dataset for unit tests",
        image_count=60,
        category_count=6,
        image_sizes=((640, 480),),
        contexts=("indoor", "outdoor"),
        objects_per_image=(1, 3),
        object_scale_range=(0.2, 0.6),
        frequency_range=(0.05, 0.3),
        rare_fraction=0.2,
        easy_query_fraction=0.5,
        hard_deficit_range=(0.9, 1.2),
        min_positives=3,
        named_categories=(
            CategorySpec("cat_easy", frequency=0.3, alignment_deficit=0.05, object_scale=0.5),
            CategorySpec("cat_hard", frequency=0.08, alignment_deficit=1.1, object_scale=0.4),
        ),
    )
    return SceneGenerator(profile, seed=7).generate()


@pytest.fixture(scope="session")
def tiny_clip(tiny_dataset: ImageDataset) -> SyntheticClip:
    """Embedding model matching the handcrafted dataset."""
    return SyntheticClip.for_dataset(tiny_dataset, dim=64, seed=7)


@pytest.fixture(scope="session")
def tiny_index(tiny_dataset: ImageDataset, tiny_clip: SyntheticClip) -> SeeSawIndex:
    """Multiscale index over the handcrafted dataset."""
    config = SeeSawConfig(embedding_dim=64, seed=7)
    return SeeSawIndex.build(tiny_dataset, tiny_clip, config)


@pytest.fixture()
def simple_image() -> SyntheticImage:
    """One image with two objects, for geometry and feedback tests."""
    return SyntheticImage(
        image_id=1,
        width=640,
        height=480,
        context="indoor",
        objects=(
            ObjectInstance("dog", BoundingBox(50, 60, 200, 150), instance_id=1),
            ObjectInstance("chair", BoundingBox(400, 200, 150, 200), instance_id=2),
        ),
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic random generator for test data."""
    return np.random.default_rng(1234)
