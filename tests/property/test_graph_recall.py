"""Property: the graph-ANN tier's descent finds (almost all of) the exact top-k.

Unlike the quantized tier, the graph store makes no exactness guarantee —
greedy descent over a navigable proximity graph can miss true neighbours.
What it *does* sell: recall@k against the exact oracle stays high at sane
``ef``, returned scores are true inner products (the re-rank is exact),
results are deterministic under a fixed seed, exclusions are absolute, the
descent genuinely visits a strict subset of the corpus (non-vacuity), and
bad parameters fail loudly.  This suite pins all of that with seeded random
corpora in both compute dtypes, flat and sharded.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.geometry import BoundingBox
from repro.exceptions import VectorStoreError
from repro.vectorstore import (
    ExactVectorStore,
    GraphANNVectorStore,
    ShardedVectorStore,
    VectorRecord,
)

DIM = 48
COUNT = 600
K = 10


def _corpus(seed: int):
    rng = np.random.default_rng(seed)
    records = [
        VectorRecord(vector_id=i, image_id=i, box=BoundingBox(0.0, 0.0, 16.0, 16.0))
        for i in range(COUNT)
    ]
    return rng.standard_normal((COUNT, DIM)), records


def _recall(exact_ids: np.ndarray, graph_ids: np.ndarray) -> float:
    return len(set(exact_ids.tolist()) & set(graph_ids.tolist())) / exact_ids.size


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
@pytest.mark.parametrize("compute_dtype", ["float64", "float32"])
def test_recall_against_exact_oracle(seed, compute_dtype):
    vectors, records = _corpus(seed)
    exact = ExactVectorStore(vectors, records, compute_dtype=compute_dtype)
    graph = GraphANNVectorStore(
        vectors, records, graph_degree=16, ef=64, seed=seed, compute_dtype=compute_dtype
    )
    queries = np.random.default_rng(seed + 1000).standard_normal((20, DIM))
    recalls = []
    for query in queries:
        exact_ids, _ = exact.search_arrays(query, k=K)
        graph_ids, graph_scores = graph.search_arrays(query, k=K)
        recalls.append(_recall(exact_ids, graph_ids))
        # Whatever the descent surfaces, the returned scores are the *true*
        # inner products in the compute dtype — the re-rank is exact.
        expected = np.asarray(graph.vectors, dtype=np.float64)[graph_ids] @ query
        atol = 1e-5 if compute_dtype == "float32" else 1e-12
        np.testing.assert_allclose(graph_scores, expected, rtol=0, atol=atol)
    assert float(np.mean(recalls)) >= 0.95


def test_search_is_deterministic_under_fixed_seed():
    vectors, records = _corpus(6)
    first = GraphANNVectorStore(vectors, records, graph_degree=12, ef=48, seed=9)
    second = GraphANNVectorStore(vectors, records, graph_degree=12, ef=48, seed=9)
    for query in np.random.default_rng(7).standard_normal((10, DIM)):
        ids_a, scores_a = first.search_arrays(query, k=K)
        ids_b, scores_b = second.search_arrays(query, k=K)
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(scores_a, scores_b)
        # And within one store across repeated calls.
        ids_c, _ = first.search_arrays(query, k=K)
        assert np.array_equal(ids_a, ids_c)


@pytest.mark.parametrize("seed", [0, 7])
def test_exclusions_are_absolute(seed):
    vectors, records = _corpus(seed)
    graph = GraphANNVectorStore(vectors, records, graph_degree=16, ef=64, seed=seed)
    rng = np.random.default_rng(seed + 1)
    for query in rng.standard_normal((10, DIM)):
        mask = rng.random(COUNT) < 0.4
        ids, _ = graph.search_arrays(query, k=K, exclude_mask=mask)
        assert not mask[ids].any()


@pytest.mark.parametrize("n_shards", [2, 3])
def test_sharded_graph_recall(n_shards):
    vectors, records = _corpus(11)
    exact = ExactVectorStore(vectors, records)
    sharded = ShardedVectorStore.wrap(
        GraphANNVectorStore(vectors, records, graph_degree=16, ef=64, seed=11), n_shards
    )
    rng = np.random.default_rng(12)
    recalls = []
    for query in rng.standard_normal((10, DIM)):
        exact_ids, _ = exact.search_arrays(query, k=K)
        graph_ids, _ = sharded.search_arrays(query, k=K)
        recalls.append(_recall(exact_ids, graph_ids))
    assert float(np.mean(recalls)) >= 0.95


def test_descent_really_is_sublinear():
    """Guard against vacuity: the descent must visit a strict subset.

    If the beam degraded to a full scan the recall assertions above would
    pass trivially; ``last_search_stats`` pins that the traversal actually
    pruned, while still scoring enough of the corpus to be a search.
    """
    vectors, records = _corpus(3)
    graph = GraphANNVectorStore(vectors, records, graph_degree=12, ef=32, seed=3)
    query = np.random.default_rng(4).standard_normal(DIM)
    graph.search_arrays(query, k=K)
    stats = graph.last_search_stats
    assert 0 < stats["visited"] < COUNT
    assert stats["hops"] > 0


def test_ef_override_widens_the_beam():
    vectors, records = _corpus(8)
    graph = GraphANNVectorStore(vectors, records, graph_degree=8, ef=8, seed=8)
    query = np.random.default_rng(9).standard_normal(DIM)
    graph.search_arrays(query, k=K)
    narrow = graph.last_search_stats["visited"]
    graph.search_arrays(query, k=K, ef=128)
    wide = graph.last_search_stats["visited"]
    assert wide > narrow


def test_parameters_validated():
    vectors, records = _corpus(5)
    with pytest.raises(VectorStoreError, match="graph_degree"):
        GraphANNVectorStore(vectors, records, graph_degree=1)
    with pytest.raises(VectorStoreError, match="ef"):
        GraphANNVectorStore(vectors, records, ef=0)
    graph = GraphANNVectorStore(vectors, records)
    with pytest.raises(VectorStoreError, match="ef"):
        graph.search_arrays(np.zeros(DIM), k=1, ef=0)
