"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.config import LossWeights
from repro.core.loss import SeeSawLoss
from repro.data.geometry import BoundingBox
from repro.metrics import average_precision_at_cutoff, average_precision_full
from repro.optim.objective import numerical_gradient
from repro.utils.linalg import normalize_rows, normalize_vector
from repro.vectorstore.base import VectorRecord
from repro.vectorstore.exact import ExactVectorStore

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(
    min_value=0.5, max_value=500.0, allow_nan=False, allow_infinity=False
)


# ---------------------------------------------------------------------------
# geometry
# ---------------------------------------------------------------------------
boxes = st.builds(
    BoundingBox,
    x=st.floats(min_value=-100, max_value=100, allow_nan=False),
    y=st.floats(min_value=-100, max_value=100, allow_nan=False),
    width=positive_floats,
    height=positive_floats,
)


@given(boxes, boxes)
def test_intersection_is_symmetric(a: BoundingBox, b: BoundingBox) -> None:
    assert a.intersection(b) == b.intersection(a)


@given(boxes, boxes)
def test_iou_bounds_and_symmetry(a: BoundingBox, b: BoundingBox) -> None:
    iou = a.iou(b)
    assert 0.0 <= iou <= 1.0 + 1e-9
    assert iou == b.iou(a)


@given(boxes)
def test_self_iou_is_one(a: BoundingBox) -> None:
    assert a.iou(a) == pytest.approx(1.0, abs=1e-9)


@given(boxes, boxes)
def test_intersection_bounded_by_each_area(a: BoundingBox, b: BoundingBox) -> None:
    inter = a.intersection(b)
    assert inter <= a.area + 1e-9
    assert inter <= b.area + 1e-9


# ---------------------------------------------------------------------------
# linear algebra
# ---------------------------------------------------------------------------
vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=32),
    elements=finite_floats,
)


@given(vectors)
def test_normalize_vector_is_unit_or_zero(vector: np.ndarray) -> None:
    normalized = normalize_vector(vector)
    norm = np.linalg.norm(normalized)
    assert norm == 0.0 or abs(norm - 1.0) < 1e-9


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 10), st.integers(2, 16)),
        elements=finite_floats,
    )
)
def test_normalize_rows_preserves_shape(matrix: np.ndarray) -> None:
    normalized = normalize_rows(matrix)
    assert normalized.shape == matrix.shape
    norms = np.linalg.norm(normalized, axis=1)
    # Rows are either unit norm or left (nearly) untouched because their norm
    # falls below the normalisation epsilon.
    assert np.all((np.abs(norms - 1.0) < 1e-9) | (norms < 1e-6))


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------
@given(
    st.lists(st.booleans(), min_size=0, max_size=80),
    st.integers(min_value=0, max_value=200),
)
def test_cutoff_ap_is_bounded(relevance: list[bool], total_relevant: int) -> None:
    ap = average_precision_at_cutoff(relevance, total_relevant=total_relevant)
    assert 0.0 <= ap <= 1.0


@given(st.lists(st.booleans(), min_size=1, max_size=60), st.integers(1, 100))
def test_prepending_a_positive_never_hurts(relevance: list[bool], total_relevant: int) -> None:
    base = average_precision_at_cutoff(relevance, total_relevant=total_relevant)
    improved = average_precision_at_cutoff([True] + relevance, total_relevant=total_relevant)
    assert improved >= base - 1e-12


@given(
    hnp.arrays(dtype=np.float64, shape=st.integers(2, 40), elements=finite_floats),
    st.data(),
)
def test_full_ap_invariant_to_score_scaling(scores: np.ndarray, data) -> None:
    labels = np.array(
        data.draw(st.lists(st.booleans(), min_size=scores.size, max_size=scores.size)),
        dtype=float,
    )
    ap = average_precision_full(scores, labels)
    scaled = average_precision_full(scores * 3.0 + 0.0, labels)
    assert 0.0 <= ap <= 1.0
    assert abs(ap - scaled) < 1e-9


# ---------------------------------------------------------------------------
# exact vector store vs numpy reference
# ---------------------------------------------------------------------------
@settings(deadline=None, max_examples=25)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(3, 40), st.integers(2, 12)),
        elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
    ),
    st.integers(min_value=1, max_value=10),
)
def test_exact_store_matches_numpy_argsort(matrix: np.ndarray, k: int) -> None:
    # Rows that normalise to zero are acceptable; the store keeps them as zeros.
    records = [
        VectorRecord(vector_id=i, image_id=i, box=BoundingBox(0, 0, 1, 1))
        for i in range(matrix.shape[0])
    ]
    store = ExactVectorStore(matrix, records)
    query = normalize_vector(matrix[0]) if np.any(matrix[0]) else np.ones(matrix.shape[1])
    query = normalize_vector(query)
    hits = store.search(query, k=min(k, matrix.shape[0]))
    scores = store.vectors @ query
    best_scores = np.sort(scores)[::-1][: len(hits)]
    hit_scores = np.array([hit.score for hit in hits])
    assert np.allclose(np.sort(hit_scores)[::-1], best_scores, atol=1e-9)


# ---------------------------------------------------------------------------
# loss gradients
# ---------------------------------------------------------------------------
@settings(deadline=None, max_examples=20)
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=3, max_value=10),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_loss_gradient_matches_numerical(
    examples: int,
    dim: int,
    lambda_norm: float,
    lambda_clip: float,
    lambda_db: float,
    seed: int,
) -> None:
    rng = np.random.default_rng(seed)
    features = normalize_rows(rng.standard_normal((examples, dim)))
    labels = (rng.random(examples) < 0.5).astype(float)
    query = normalize_vector(rng.standard_normal(dim))
    raw = rng.standard_normal((dim, dim))
    db_matrix = raw @ raw.T / 50.0
    loss = SeeSawLoss(
        features,
        labels,
        query,
        db_matrix,
        LossWeights(lambda_norm, lambda_clip, lambda_db),
    )
    point = normalize_vector(rng.standard_normal(dim)) * 0.8
    _, analytic = loss(point)
    numeric = numerical_gradient(loss, point, step=1e-6)
    assert np.allclose(analytic, numeric, atol=2e-3, rtol=1e-3)
