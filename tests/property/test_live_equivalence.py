"""Bit-identity of the live (delta-over-base) view against rebuilds.

The mutable tier's core contract: after any sequence of upserts and
deletes, a session served by the delta view returns *exactly* — bit for
bit, through score ties — what a session over a from-scratch index of the
same logical corpus returns, on every exhaustive tier composition; and
after a merge, the sealed generation is exactly a cold build of the merged
corpus on every tier, including the candidate tiers (quantized, graph-ANN)
whose pre-merge delta path is exact-over-delta but approximate-over-base.

Plus the zero-downtime property: concurrent readers across a background
merge swap observe no errors and no stale-generation leaks.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import SeeSawConfig
from repro.core.indexing import SeeSawIndex
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.core.session import SearchSession
from repro.data.generators import DatasetProfile, SceneGenerator
from repro.data.geometry import BoundingBox
from repro.data.image import ObjectInstance, SyntheticImage
from repro.embedding.synthetic_clip import SyntheticClip
from repro.live import DeltaVectorStore
from repro.server.api import FeedbackRequest, StartSessionRequest
from repro.server.service import SeeSawService

TIERS = {
    "flat": {},
    "sharded": {"n_shards": 3},
    "quantized": {"quantized_store": True},
    "graph": {"ann_search": True, "ann_graph_degree": 8, "ann_ef": 48},
}
EXHAUSTIVE_TIERS = ("flat", "sharded")


def build_corpus(seed: int = 23, image_count: int = 14):
    profile = DatasetProfile(
        name="live",
        description="live-equivalence corpus",
        image_count=image_count,
        category_count=4,
        image_sizes=((640, 480),),
        contexts=("indoor", "outdoor"),
        objects_per_image=(1, 2),
        object_scale_range=(0.2, 0.5),
        frequency_range=(0.1, 0.4),
        rare_fraction=0.2,
        easy_query_fraction=0.5,
        hard_deficit_range=(0.9, 1.2),
        min_positives=2,
    )
    dataset = SceneGenerator(profile, seed=seed).generate()
    clip = SyntheticClip.for_dataset(dataset, dim=32, seed=seed)
    return dataset, clip


def make_service(tier: str) -> "tuple[SeeSawService, object, object]":
    config = SeeSawConfig(
        embedding_dim=32, seed=23, live_datasets=True, **TIERS[tier]
    )
    dataset, clip = build_corpus()
    service = SeeSawService(config)
    service.register_dataset(dataset, clip, preprocess=True)
    return service, dataset, clip


def added_image(image_id: int, category: str) -> SyntheticImage:
    rng = np.random.default_rng(image_id)
    return SyntheticImage(
        image_id=image_id,
        width=640,
        height=480,
        context="indoor",
        objects=(
            ObjectInstance(
                category=category,
                box=BoundingBox(
                    float(rng.integers(0, 300)),
                    float(rng.integers(0, 200)),
                    200.0,
                    180.0,
                ),
            ),
        ),
    )


def mutate(service: SeeSawService, dataset) -> None:
    """A fixed mutation script: add two, replace one, delete one."""
    categories = [info.name for info in dataset.categories]
    service.live.upsert_images(
        "live",
        [added_image(800, categories[0]), added_image(801, categories[1])],
    )
    service.live.upsert_images(
        "live", [added_image(dataset.images[2].image_id, categories[0])]
    )
    service.live.delete_images("live", [dataset.images[5].image_id])


def run_session(index: SeeSawIndex, config: SeeSawConfig, query: str, rounds: int = 4):
    """Drive a fixed-feedback session; returns the exact (id, score) trace."""
    session = SearchSession(
        index=index,
        method=SeeSawSearchMethod(config),
        text_query=query,
        batch_size=3,
    )
    trace = []
    positives = {
        image.image_id
        for image in index.dataset.images
        if query.split()[-1] in image.categories
    }
    for _ in range(rounds):
        batch = session.next_batch()
        if not batch:
            break
        for result in batch:
            trace.append((result.image_id, result.score))
            session.give_feedback(result.image_id, result.image_id in positives)
    return trace


def rebuild_like_live(service, clip, full: bool):
    """A from-scratch index of the current logical corpus, same tier stack.

    ``full=False`` mirrors the delta view's degraded artifacts (no kNN
    graph, no DB-alignment matrix); ``full=True`` mirrors a sealed merge
    generation (everything a cold build gets).
    """
    state = service.live.state_for("live")
    merged = state.merged_dataset()
    rebuilt = SeeSawIndex.build(
        merged,
        clip,
        state.config,
        compute_db_alignment=full,
        build_graph=full,
    )
    service._apply_store_tiers(rebuilt)
    return rebuilt


class TestMutationEquivalence:
    @pytest.mark.parametrize("tier", EXHAUSTIVE_TIERS)
    def test_pre_merge_sessions_bit_identical_to_rebuild(self, tier):
        service, dataset, clip = make_service(tier)
        try:
            mutate(service, dataset)
            live_index = service.index_for("live", multiscale=True)
            assert isinstance(live_index.store, DeltaVectorStore)
            rebuilt = rebuild_like_live(service, clip, full=False)
            for category in [info.name for info in dataset.categories[:2]]:
                query = f"a {category}"
                live_trace = run_session(live_index, service.config, query)
                rebuilt_trace = run_session(rebuilt, service.config, query)
                assert live_trace == rebuilt_trace  # ids AND score bits
        finally:
            service.live.close()

    @pytest.mark.parametrize("tier", sorted(TIERS))
    def test_post_merge_sessions_bit_identical_to_cold_build(self, tier):
        service, dataset, clip = make_service(tier)
        try:
            mutate(service, dataset)
            service.live.force_merge("live")
            sealed = service.index_for("live", multiscale=True)
            assert not isinstance(sealed.store, DeltaVectorStore)
            rebuilt = rebuild_like_live(service, clip, full=True)
            for category in [info.name for info in dataset.categories[:2]]:
                query = f"a {category}"
                sealed_trace = run_session(sealed, service.config, query)
                rebuilt_trace = run_session(rebuilt, service.config, query)
                assert sealed_trace == rebuilt_trace
        finally:
            service.live.close()

    @pytest.mark.parametrize("tier", sorted(TIERS))
    def test_candidate_tiers_serve_delta_rows_exactly(self, tier):
        """Even approximate bases must surface fresh delta rows (exact scan)."""
        service, dataset, clip = make_service(tier)
        try:
            category = dataset.categories[0].name
            service.live.upsert_images("live", [added_image(850, category)])
            index = service.index_for("live", multiscale=True)
            store = index.store
            vector_ids = index.vector_ids_for_image(850)
            query = store.vector(vector_ids[0])
            ids, scores = store.search_arrays(query, 5)
            assert vector_ids[0] in ids
            assert scores[list(ids).index(vector_ids[0])] == pytest.approx(1.0)
        finally:
            service.live.close()

    def test_interleaved_merge_and_mutations_converge(self):
        """Ops landing after a merge snapshot replay onto the new base."""
        service, dataset, clip = make_service("flat")
        try:
            categories = [info.name for info in dataset.categories]
            mutate(service, dataset)
            service.live.force_merge("live")
            service.live.upsert_images("live", [added_image(860, categories[0])])
            service.live.delete_images("live", [800])
            service.live.force_merge("live")
            sealed = service.index_for("live", multiscale=True)
            rebuilt = rebuild_like_live(service, clip, full=True)
            assert sealed.image_ids == rebuilt.image_ids
            trace = run_session(sealed, service.config, f"a {categories[0]}")
            assert trace == run_session(rebuilt, service.config, f"a {categories[0]}")
            assert 860 in sealed.image_ids and 800 not in sealed.image_ids
        finally:
            service.live.close()


class TestConcurrentSwap:
    def test_queries_see_no_errors_across_merge_swaps(self):
        """Zero-downtime: readers race mutations + merges without failures."""
        service, dataset, clip = make_service("flat")
        try:
            category = dataset.categories[0].name
            errors: "list[BaseException]" = []
            stop = threading.Event()

            def reader() -> None:
                while not stop.is_set():
                    try:
                        info = service.start_session(
                            StartSessionRequest(
                                dataset="live", text_query=f"a {category}"
                            )
                        )
                        response = service.next_results(info.session_id)
                        for item in response.items:
                            service.give_feedback(
                                FeedbackRequest(
                                    session_id=info.session_id,
                                    image_id=item.image_id,
                                    relevant=False,
                                )
                            )
                        service.next_results(info.session_id)
                        service.close_session(info.session_id)
                    except BaseException as exc:  # noqa: BLE001 - recorded
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                for step in range(6):
                    service.live.upsert_images(
                        "live", [added_image(900 + step, category)]
                    )
                    service.live.force_merge("live")
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)
            assert errors == []
            manifest = service.live.describe("live")
            assert manifest["merges_completed"] == 6
            assert manifest["delta_rows"] == 0
            # No stale-generation leak: the serving index is the newest one.
            state = service.live.state_for("live")
            assert service.index_for("live", multiscale=True) is state.current
        finally:
            service.live.close()

    def test_background_merge_trigger_is_transparent_to_readers(self):
        service, dataset, clip = make_service("flat")
        # Re-register with an aggressive ratio so every upsert triggers.
        config = SeeSawConfig(
            embedding_dim=32, seed=23, live_datasets=True, merge_trigger_ratio=0.01
        )
        service = SeeSawService(config)
        service.register_dataset(dataset, clip, preprocess=True)
        try:
            category = dataset.categories[0].name
            for step in range(3):
                service.live.upsert_images(
                    "live", [added_image(930 + step, category)]
                )
                info = service.start_session(
                    StartSessionRequest(dataset="live", text_query=f"a {category}")
                )
                assert service.next_results(info.session_id).items
            service.live.merger.join()
            manifest = service.live.describe("live")
            assert manifest["merges_completed"] >= 1
            index = service.index_for("live", multiscale=True)
            assert {930, 931, 932} <= set(index.image_ids)
        finally:
            service.live.close()
