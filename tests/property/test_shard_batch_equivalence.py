"""Equivalence properties: sharding and batching must not change results.

Two families of randomized (seeded) properties back the scaling layer:

* **Shard-merge equivalence** — ``ShardedVectorStore`` over exact shards is
  *bit-identical* to a single ``ExactVectorStore``: same scores (via the
  shard-stable ``dot_rows`` kernel), same ids, same order, ties included.
* **Batch-engine equivalence** — ``BatchQueryEngine`` over Q sessions
  returns the same images, in the same order, as Q independent
  ``QueryEngine`` rounds with the same evolving ``SeenMask`` state; scores
  agree to a tight tolerance (the fused GEMM blocks its reduction
  differently from the row-wise kernel, a last-bit effect).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.geometry import BoundingBox
from repro.engine import BatchQueryEngine, ImageSegments, QueryEngine
from repro.utils.linalg import dot_rows
from repro.vectorstore import (
    ExactVectorStore,
    RandomProjectionForest,
    ShardedVectorStore,
    VectorRecord,
)

DIM = 16


def make_corpus(seed: int, image_count: int = 40):
    """Random multiscale-shaped corpus plus its CSR segment layout."""
    rng = np.random.default_rng(seed)
    records: "list[VectorRecord]" = []
    image_vector_ids: "dict[int, list[int]]" = {}
    vector_id = 0
    for image_id in range(image_count):
        ids: "list[int]" = []
        for patch in range(int(rng.integers(1, 5))):
            records.append(
                VectorRecord(
                    vector_id=vector_id,
                    image_id=image_id,
                    box=BoundingBox(0.0, 0.0, 16.0, 16.0),
                    scale_level=0 if patch == 0 else 1,
                )
            )
            ids.append(vector_id)
            vector_id += 1
        image_vector_ids[image_id] = ids
    vectors = rng.standard_normal((vector_id, DIM))
    segments = ImageSegments.from_mapping(
        {k: tuple(v) for k, v in image_vector_ids.items()}, vector_id
    )
    return vectors, records, segments, rng


# ---------------------------------------------------------------------------
# the kernel invariant everything rests on
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=200),
    split=st.integers(min_value=1, max_value=199),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_dot_rows_is_bit_stable_under_row_partitioning(rows, split, seed):
    """dot_rows(M[a:b], q) == dot_rows(M, q)[a:b] bit for bit, any split."""
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((rows, DIM))
    query = rng.standard_normal(DIM)
    full = dot_rows(matrix, query)
    split = min(split, rows)
    parts = np.concatenate(
        [dot_rows(matrix[start : start + split], query) for start in range(0, rows, split)]
    )
    assert np.array_equal(full, parts)


# ---------------------------------------------------------------------------
# shard-merge equivalence (bit-identical)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sharded_exact_store_is_bit_identical(n_shards, seed):
    vectors, records, _, rng = make_corpus(seed)
    flat = ExactVectorStore(vectors, records)
    sharded = ShardedVectorStore(vectors, records, n_shards=n_shards)
    for _ in range(5):
        query = rng.standard_normal(DIM)
        assert np.array_equal(flat.score_all(query), sharded.score_all(query))
        for k in (1, 4, len(flat) // 2, len(flat), len(flat) + 9):
            flat_ids, flat_scores = flat.search_arrays(query, k)
            sharded_ids, sharded_scores = sharded.search_arrays(query, k)
            assert np.array_equal(flat_ids, sharded_ids)
            assert np.array_equal(flat_scores, sharded_scores)
        mask = rng.random(len(flat)) < rng.uniform(0.1, 0.9)
        flat_ids, flat_scores = flat.search_arrays(query, 10, exclude_mask=mask)
        sharded_ids, sharded_scores = sharded.search_arrays(query, 10, exclude_mask=mask)
        assert np.array_equal(flat_ids, sharded_ids)
        assert np.array_equal(flat_scores, sharded_scores)


@pytest.mark.parametrize("seed", [0, 5])
def test_sharded_store_tie_order_matches_flat(seed):
    """Duplicate vectors produce exact ties; both stores break them by id."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((6, DIM))
    vectors = np.vstack([base, base, base])  # every row duplicated 3x
    records = [
        VectorRecord(i, image_id=i, box=BoundingBox(0, 0, 8, 8), scale_level=0)
        for i in range(vectors.shape[0])
    ]
    flat = ExactVectorStore(vectors, records)
    sharded = ShardedVectorStore(vectors, records, n_shards=3)
    query = rng.standard_normal(DIM)
    # Every k, including every cut *through* a tie group: the selected tied
    # subset must be deterministic (smallest ids win), not argpartition's
    # arbitrary pick — the case that breaks naive top-k merging.
    for k in range(1, len(flat) + 1):
        flat_ids, flat_scores = flat.search_arrays(query, k)
        sharded_ids, sharded_scores = sharded.search_arrays(query, k)
        assert np.array_equal(flat_ids, sharded_ids), k
        assert np.array_equal(flat_scores, sharded_scores), k
    flat_ids, flat_scores = flat.search_arrays(query, len(flat))
    # Within each tie group the ids must ascend — the deterministic rule.
    for position in range(1, flat_ids.size):
        if flat_scores[position] == flat_scores[position - 1]:
            assert flat_ids[position] > flat_ids[position - 1]


@pytest.mark.parametrize("seed", [0, 1])
def test_shards_are_image_aligned(seed):
    vectors, records, _, _ = make_corpus(seed)
    sharded = ShardedVectorStore(vectors, records, n_shards=5)
    boundaries = np.cumsum((0,) + sharded.shard_sizes)
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        inside = {records[i].image_id for i in range(start, stop)}
        outside = {
            records[i].image_id for i in range(len(records)) if not start <= i < stop
        }
        assert inside.isdisjoint(outside)


def test_sharded_forest_obeys_exclusions_and_scores():
    """No bit-identity promise for approximate shards, but exactness of the
    returned candidates' scores and exclusion honoring still hold."""
    vectors, records, _, rng = make_corpus(3)
    forest = RandomProjectionForest(vectors, records, tree_count=4, leaf_size=8, seed=1)
    sharded = ShardedVectorStore.wrap(forest, 3)
    query = rng.standard_normal(DIM)
    mask = rng.random(len(sharded)) < 0.4
    ids, scores = sharded.search_arrays(query, 12, exclude_mask=mask)
    assert not mask[ids].any()
    assert np.allclose(scores, np.asarray(sharded.vectors)[ids] @ query)


# ---------------------------------------------------------------------------
# batch-engine equivalence (mask state included)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("n_shards", [1, 3])
def test_batch_engine_matches_sequential_rounds(seed, n_shards):
    vectors, records, segments, rng = make_corpus(seed)
    store = (
        ExactVectorStore(vectors, records)
        if n_shards == 1
        else ShardedVectorStore(vectors, records, n_shards=n_shards)
    )
    engine = QueryEngine(store, segments)
    batch_engine = BatchQueryEngine(engine)
    session_count, batch_size, rounds = 8, 3, 4
    queries = rng.standard_normal((session_count, DIM))
    batch_masks = [engine.new_mask() for _ in range(session_count)]
    sequential_masks = [engine.new_mask() for _ in range(session_count)]
    for _ in range(rounds):
        fused = batch_engine.top_unseen_batch(queries, batch_size, batch_masks)
        for row in range(session_count):
            ids, scores, vector_ids = engine.top_unseen_arrays(
                queries[row], batch_size, sequential_masks[row]
            )
            fused_ids, fused_scores, fused_vector_ids = fused[row]
            assert np.array_equal(ids, fused_ids)
            assert np.array_equal(vector_ids, fused_vector_ids)
            assert np.allclose(scores, fused_scores, rtol=0, atol=1e-10)
            batch_masks[row].mark_images(fused_ids.tolist())
            sequential_masks[row].mark_images(ids.tolist())
    # Mask state evolved identically on both sides.
    for fused_mask, sequential_mask in zip(batch_masks, sequential_masks):
        assert np.array_equal(fused_mask.image_seen, sequential_mask.image_seen)
        assert np.array_equal(fused_mask.vector_seen, sequential_mask.vector_seen)
        assert fused_mask.seen_count == sequential_mask.seen_count


def test_batch_engine_rows_are_isolated():
    """One session's mask must never affect another session's results."""
    vectors, records, segments, rng = make_corpus(7)
    engine = QueryEngine(ExactVectorStore(vectors, records), segments)
    batch_engine = BatchQueryEngine(engine)
    query = rng.standard_normal(DIM)
    blind_mask = engine.new_mask()
    seen_mask = engine.new_mask()
    first_ids, _, _ = engine.top_unseen_arrays(query, 5, None)
    seen_mask.mark_images(first_ids.tolist())
    fused = batch_engine.top_unseen_batch(
        np.stack([query, query]), 5, [blind_mask, seen_mask]
    )
    assert np.array_equal(fused[0][0], first_ids)  # blind row: the global top
    assert not set(fused[1][0].tolist()) & set(first_ids.tolist())  # masked row skips them


def test_batch_engine_falls_back_for_candidate_stores():
    vectors, records, segments, rng = make_corpus(9)
    forest = RandomProjectionForest(vectors, records, tree_count=4, leaf_size=8, seed=2)
    engine = QueryEngine(forest, segments)
    batch_engine = BatchQueryEngine(engine)
    queries = rng.standard_normal((3, DIM))
    masks = [engine.new_mask() for _ in range(3)]
    fused = batch_engine.top_unseen_batch(queries, 4, masks)
    for row in range(3):
        ids, scores, vector_ids = engine.top_unseen_arrays(queries[row], 4, masks[row])
        assert np.array_equal(ids, fused[row][0])
        assert np.array_equal(scores, fused[row][1])
        assert np.array_equal(vector_ids, fused[row][2])
