"""Property: the quantized tier's re-ranked top-k equals the exact top-k.

The int8 candidate pass is approximate, but the contract the tier sells is
that after over-fetching ``rerank_factor * k`` candidates and re-ranking
them exactly, the *returned* top-k matches the exact store's top-k — i.e.
recall@k = 1.0 at the default re-rank factor.  This suite pins that with
seeded random corpora in both compute dtypes, flat and sharded, with and
without exclusions, and also pins that the guarantee comes from the re-rank
(the raw int8 scores really are approximate, so the test is not vacuous).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.geometry import BoundingBox
from repro.vectorstore import (
    ExactVectorStore,
    QuantizedVectorStore,
    ShardedVectorStore,
    VectorRecord,
)

DIM = 48
COUNT = 600
K = 10


def _corpus(seed: int):
    rng = np.random.default_rng(seed)
    records = [
        VectorRecord(vector_id=i, image_id=i, box=BoundingBox(0.0, 0.0, 16.0, 16.0))
        for i in range(COUNT)
    ]
    return rng.standard_normal((COUNT, DIM)), records


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
@pytest.mark.parametrize("compute_dtype", ["float64", "float32"])
def test_reranked_top_k_matches_exact_top_k(seed, compute_dtype):
    vectors, records = _corpus(seed)
    exact = ExactVectorStore(vectors, records, compute_dtype=compute_dtype)
    quantized = QuantizedVectorStore(vectors, records, compute_dtype=compute_dtype)
    assert quantized.rerank_factor == 4  # the default the guarantee is stated at
    queries = np.random.default_rng(seed + 1000).standard_normal((20, DIM))
    for query in queries:
        exact_ids, exact_scores = exact.search_arrays(query, k=K)
        quant_ids, quant_scores = quantized.search_arrays(query, k=K)
        # Identical id sets *and* identical deterministic ordering: the
        # re-rank selects with the same (score desc, id asc) rule.
        assert quant_ids.tolist() == exact_ids.tolist()
        np.testing.assert_allclose(quant_scores, exact_scores, rtol=0, atol=1e-6)


@pytest.mark.parametrize("seed", [0, 7])
def test_recall_holds_under_exclusions(seed):
    vectors, records = _corpus(seed)
    exact = ExactVectorStore(vectors, records)
    quantized = QuantizedVectorStore(vectors, records)
    rng = np.random.default_rng(seed + 1)
    for query in rng.standard_normal((10, DIM)):
        mask = rng.random(COUNT) < 0.4
        exact_ids, _ = exact.search_arrays(query, k=K, exclude_mask=mask)
        quant_ids, _ = quantized.search_arrays(query, k=K, exclude_mask=mask)
        assert quant_ids.tolist() == exact_ids.tolist()


@pytest.mark.parametrize("n_shards", [2, 3])
def test_sharded_quantized_recall(n_shards):
    vectors, records = _corpus(11)
    exact = ExactVectorStore(vectors, records)
    sharded = ShardedVectorStore.wrap(QuantizedVectorStore(vectors, records), n_shards)
    rng = np.random.default_rng(12)
    for query in rng.standard_normal((10, DIM)):
        exact_ids, _ = exact.search_arrays(query, k=K)
        quant_ids, _ = sharded.search_arrays(query, k=K)
        assert quant_ids.tolist() == exact_ids.tolist()


def test_int8_candidate_scores_really_are_approximate():
    """Guard against vacuity: the candidate pass must differ from exact."""
    vectors, records = _corpus(3)
    exact = ExactVectorStore(vectors, records)
    quantized = QuantizedVectorStore(vectors, records)
    query = np.random.default_rng(4).standard_normal(DIM)
    approximate = quantized.quantized_scores(query)
    true_scores = exact.score_all(query)
    error = np.abs(approximate - true_scores)
    assert error.max() > 0.0  # quantization actually quantized something...
    assert error.max() < 0.05  # ...but the 8-bit error stays far below score gaps


def test_rerank_factor_validated():
    vectors, records = _corpus(5)
    from repro.exceptions import VectorStoreError

    with pytest.raises(VectorStoreError, match="rerank_factor"):
        QuantizedVectorStore(vectors, records, rerank_factor=0)
