"""End-to-end HTTP service test: real sockets, concurrent clients, caching."""

from __future__ import annotations

import threading

import pytest

from repro.config import SeeSawConfig
from repro.exceptions import TransportError, UnknownResourceError
from repro.server import (
    FeedbackRequest,
    SeeSawApp,
    SeeSawService,
    ServiceClient,
    SessionManager,
    StartSessionRequest,
    serve_in_background,
)


@pytest.fixture(scope="module")
def running_server(tiny_dataset, tiny_clip):
    """An HTTP server on an ephemeral port over the tiny dataset."""
    service = SeeSawService(SeeSawConfig(embedding_dim=64, seed=7))
    service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
    app = SeeSawApp(SessionManager(service))
    with serve_in_background(app) as server:
        yield server


@pytest.fixture()
def client(running_server):
    return ServiceClient(running_server.url)


def run_full_session(client: ServiceClient, query: str, rounds: int = 2) -> object:
    """start → (next → feedback)*rounds → info, through real HTTP."""
    info = client.start_session(
        StartSessionRequest(dataset="tiny", text_query=query, batch_size=2)
    )
    for _ in range(rounds):
        batch = client.next_results(info.session_id)
        assert batch.session_id == info.session_id
        assert len(batch.items) == 2
        for item in batch.items:
            client.give_feedback(
                FeedbackRequest(
                    session_id=info.session_id,
                    image_id=item.image_id,
                    relevant=False,
                )
            )
    summary = client.session_info(info.session_id)
    client.close_session(info.session_id)
    return summary


class TestHttpRoundTrip:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["datasets"] == ["tiny"]

    def test_full_session_over_http(self, client):
        summary = run_full_session(client, "a cat_easy")
        assert summary.dataset == "tiny"
        assert summary.total_shown == 4
        assert summary.rounds == 2

    def test_next_count_query_parameter(self, client):
        info = client.start_session(
            StartSessionRequest(dataset="tiny", text_query="a cat_easy", batch_size=1)
        )
        batch = client.next_results(info.session_id, count=3)
        assert len(batch.items) == 3
        client.close_session(info.session_id)

    def test_two_concurrent_client_threads(self, client, running_server):
        results: dict[str, object] = {}
        errors: list[BaseException] = []

        def worker(name: str, query: str) -> None:
            try:
                own_client = ServiceClient(running_server.url)
                results[name] = run_full_session(own_client, query)
            except BaseException as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=("a", "a cat_easy")),
            threading.Thread(target=worker, args=("b", "a cat_hard")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        assert {name for name in results} == {"a", "b"}
        assert all(summary.total_shown == 4 for summary in results.values())


class TestHttpErrors:
    def test_unknown_session_is_404(self, client):
        with pytest.raises(UnknownResourceError, match="no-such-session"):
            client.session_info("no-such-session")

    def test_unknown_dataset_is_404(self, client):
        with pytest.raises(UnknownResourceError, match="not registered"):
            client.start_session(
                StartSessionRequest(dataset="missing", text_query="a cat")
            )

    def test_malformed_body_is_400(self, client):
        # Bypass the typed client: send a body missing required fields.
        with pytest.raises(TransportError, match="text_query"):
            client._request("POST", "/sessions", {"dataset": "tiny"})

    def test_bad_count_is_400(self, client):
        info = client.start_session(
            StartSessionRequest(dataset="tiny", text_query="a cat_easy")
        )
        with pytest.raises(TransportError, match="count"):
            client._request("GET", f"/sessions/{info.session_id}/next?count=zero")
        client.close_session(info.session_id)

    def test_unroutable_path_is_404(self, client):
        with pytest.raises(UnknownResourceError, match="No route"):
            client._request("GET", "/nope")


class TestServiceCacheOverHttp:
    def test_second_server_start_hits_disk_cache(self, tiny_dataset, tiny_clip, tmp_path):
        cache_dir = tmp_path / "cache"
        config = SeeSawConfig(embedding_dim=64, seed=7, index_cache_dir=str(cache_dir))

        cold = SeeSawService(config)
        cold.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        assert (cold.cache_hits, cold.cache_misses) == (0, 1)

        warm = SeeSawService(config)
        warm.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)

        app = SeeSawApp(SessionManager(warm))
        with serve_in_background(app) as server:
            http = ServiceClient(server.url)
            assert http.healthz()["index_cache_hits"] == 1
            summary = run_full_session(http, "a cat_easy", rounds=1)
            assert summary.total_shown == 2
