"""Smoke tests for the experiment registry: every table/figure function runs."""

import numpy as np
import pytest

from repro.bench.experiments import (
    figure1_zero_shot_cdf,
    figure4_ideal_vs_initial,
    figure5_delta_ap,
    figure6_user_study,
    table2_ablation,
    table3_baselines,
    table4_ens_horizon,
    table5_annotation_time,
    table6_latency,
    table7_hyperparameters,
)
from repro.bench.runner import BenchmarkSettings
from repro.bench.suite import ExperimentScale
from repro.config import BenchmarkTaskConfig
from repro.users.study import StudyQuery


@pytest.fixture(scope="module")
def quick_settings():
    """Shorter task cutoffs so experiment smoke tests stay fast."""
    return BenchmarkSettings(task=BenchmarkTaskConfig(target_results=5, max_images=20))


@pytest.fixture(scope="module")
def small_bundles(bdd_bundle, objectnet_bundle):
    return {"objectnet": objectnet_bundle, "bdd": bdd_bundle}


class TestFigureExperiments:
    def test_figure1(self, small_bundles, tiny_scale, quick_settings):
        result = figure1_zero_shot_cdf(small_bundles, tiny_scale, quick_settings)
        assert set(result.distributions) == set(small_bundles)
        for dist in result.distributions.values():
            assert 0.0 <= dist.mean <= 1.0
        assert "Figure 1" in result.format_text()

    def test_figure4_ideal_beats_initial(self, objectnet_bundle, tiny_scale):
        result = figure4_ideal_vs_initial(objectnet_bundle, tiny_scale)
        assert result.points
        assert result.median_ideal >= result.median_initial
        assert "Figure 4" in result.format_text()

    def test_figure5(self, small_bundles, tiny_scale, quick_settings):
        result = figure5_delta_ap(small_bundles, tiny_scale, quick_settings)
        for dataset in small_bundles:
            assert dataset in result.delta_all
            assert result.improvement_fraction(dataset) >= 0.5
        assert "Figure 5" in result.format_text()

    def test_figure6(self, bdd_bundle):
        result = figure6_user_study(
            bdd_bundle,
            queries=[
                StudyQuery(category="car", prompt="a car", difficulty="easy"),
                StudyQuery(category="wheelchair", prompt="a wheelchair", difficulty="hard"),
            ],
            users_per_system=2,
            target_results=3,
            time_budget_seconds=60,
        )
        systems = {r.system for r in result.results}
        assert systems == {"clip_only", "seesaw"}
        assert "Figure 6" in result.format_text()


class TestTableExperiments:
    def test_table2_rows_complete(self, small_bundles, tiny_scale, quick_settings):
        result = table2_ablation(small_bundles, tiny_scale, quick_settings)
        assert set(result.all_queries) == {
            "zero-shot CLIP",
            "+multiscale",
            "+few-shot CLIP",
            "+Query align",
            "+DB align",
        }
        for per_dataset in result.all_queries.values():
            for value in per_dataset.values():
                assert 0.0 <= value <= 1.0
        assert "Table 2" in result.format_text()

    def test_table3_rows_complete(self, small_bundles, tiny_scale, quick_settings):
        result = table3_baselines(small_bundles, tiny_scale, quick_settings)
        assert set(result.all_queries) == {
            "zero-shot CLIP",
            "few-shot CLIP",
            "ENS",
            "Rocchio",
            "this work",
        }
        assert "Table 3" in result.format_text()

    def test_table4_horizons(self, objectnet_bundle, tiny_scale, quick_settings):
        result = table4_ens_horizon(
            {"objectnet": objectnet_bundle},
            tiny_scale,
            horizons=(1, 5),
            settings=quick_settings,
        )
        assert set(result.raw) == {1, 5}
        assert set(result.calibrated) == {1, 5}
        assert "Table 4" in result.format_text()

    def test_table5_matches_timing_model(self):
        result = table5_annotation_time(samples=500, seed=0)
        assert result.seesaw_mark[0] > result.baseline_mark[0]
        assert result.baseline_skip[0] < result.baseline_mark[0]
        assert "Table 5" in result.format_text()

    def test_table6_latency_rows(self, small_bundles, tiny_scale, quick_settings):
        result = table6_latency(small_bundles, tiny_scale, quick_settings, queries_per_index=1)
        assert result.rows
        vectors = [row["vectors"] for row in result.rows]
        assert vectors == sorted(vectors)
        for row in result.rows:
            assert row["SeeSaw"] >= 0.0
        assert "Table 6" in result.format_text()

    def test_table7_grid(self, bdd_bundle, tiny_scale, quick_settings):
        grid = ((1.0, 30.0, 1.0), (3.0, 30.0, 1.0))
        result = table7_hyperparameters(
            {"bdd": bdd_bundle}, tiny_scale, grid=grid, settings=quick_settings
        )
        assert set(result.results) == set(grid)
        values = [result.results[s]["bdd"] for s in grid]
        assert all(0.0 <= v <= 1.0 for v in values)
        # Robustness: varying lambda_c by 3x should not collapse accuracy.
        assert abs(values[0] - values[1]) < 0.4
        assert "Table 7" in result.format_text()
