"""Keep-alive hygiene when an NDJSON stream dies mid-body.

Once the 200 and the ``Transfer-Encoding: chunked`` header are on the wire,
a producer crash can only truncate the body.  The regression these tests
pin down: the handler used to let the exception unwind into socketserver —
a full traceback on stderr — and, worse, a swallowed error would have left
the connection open for reuse, so the next keep-alive request on the same
socket would be parsed against the half-written chunked body.  The fixed
handler closes the connection (no desync possible), stays quiet, and keeps
serving fresh connections.
"""

from __future__ import annotations

import http.client
import socket
import struct
import time

import pytest

from repro.server.http import serve_in_background
from repro.server.middleware import Request, Response


class StubStreamApp:
    """A minimal app: one healthy stream, one poisoned, one plain route."""

    def handle_request(self, request: Request) -> Response:
        if request.target == "/stream/ok":
            return Response(status=200, stream=self._healthy())
        if request.target == "/stream/poison":
            return Response(status=200, stream=self._poisoned())
        if request.target == "/stream/slow":
            return Response(status=200, stream=self._slow())
        return Response(status=200, payload={"route": request.target})

    @staticmethod
    def _healthy():
        yield {"kind": "meta", "item_count": 1}
        yield {"kind": "item", "index": 0}
        yield {"kind": "end"}

    @staticmethod
    def _poisoned():
        yield {"kind": "meta", "item_count": 3}
        yield {"kind": "item", "index": 0}
        raise RuntimeError("producer exploded mid-stream")

    @staticmethod
    def _slow():
        for index in range(200):
            yield {"kind": "item", "index": index}
            time.sleep(0.01)
        yield {"kind": "end"}


@pytest.fixture()
def stub_server():
    with serve_in_background(StubStreamApp()) as server:
        yield server


def _connection(server) -> http.client.HTTPConnection:
    host, port = server.server.server_address[:2]
    return http.client.HTTPConnection(host, port, timeout=10.0)


class TestPoisonedStream:
    def test_truncates_body_and_closes_the_connection(self, stub_server, capfd):
        conn = _connection(stub_server)
        try:
            conn.request(
                "GET", "/stream/poison", headers={"Accept": "application/x-ndjson"}
            )
            response = conn.getresponse()
            # The status line went out before the producer died; the only
            # honest signal left is a body with no terminal chunk.
            assert response.status == 200
            with pytest.raises(http.client.IncompleteRead) as excinfo:
                response.read()
            delivered = excinfo.value.partial
            assert b'"meta"' in delivered
            assert b'"end"' not in delivered

            # Second request on the SAME connection: the server closed the
            # socket, so this fails cleanly — it can never be answered from
            # the half-written chunked body.
            with pytest.raises((ConnectionError, http.client.HTTPException)):
                conn.request("GET", "/after-poison")
                conn.getresponse()
        finally:
            conn.close()

        # The crash stayed inside the handler: no socketserver traceback.
        captured = capfd.readouterr()
        assert "Traceback" not in captured.err
        assert "exploded" not in captured.err

        # And the server itself is still healthy on a fresh connection.
        fresh = _connection(stub_server)
        try:
            fresh.request("GET", "/healthz")
            assert fresh.getresponse().status == 200
        finally:
            fresh.close()

    def test_client_disconnect_mid_stream_is_quiet(self, stub_server, capfd):
        host, port = stub_server.server.server_address[:2]
        sock = socket.create_connection((host, port), timeout=10.0)
        try:
            sock.sendall(
                f"GET /stream/slow HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("ascii")
            )
            assert sock.recv(4096)  # headers plus the first chunks
        finally:
            # RST on close, so the server's next chunk write fails right
            # away instead of filling socket buffers.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            sock.close()
        time.sleep(0.2)  # let the writer thread hit the dead socket
        captured = capfd.readouterr()
        assert "Traceback" not in captured.err

        fresh = _connection(stub_server)
        try:
            fresh.request("GET", "/healthz")
            assert fresh.getresponse().status == 200
        finally:
            fresh.close()


class TestHealthyStreamKeepAlive:
    def test_completed_stream_keeps_the_connection_reusable(self, stub_server):
        conn = _connection(stub_server)
        try:
            conn.request(
                "GET", "/stream/ok", headers={"Accept": "application/x-ndjson"}
            )
            response = conn.getresponse()
            body = response.read()  # consumes the terminal chunk
            assert b'"end"' in body
            assert not response.will_close
            sock_before = conn.sock

            # Same socket, next request: chunked framing left the stream
            # exactly at a request boundary.
            conn.request("GET", "/second")
            second = conn.getresponse()
            assert second.status == 200
            assert conn.sock is sock_before
            assert b"/second" in second.read()
        finally:
            conn.close()
