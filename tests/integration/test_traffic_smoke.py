"""Open-loop traffic smoke: the scenario pack against both transports.

Short, scaled-down runs of every pack scenario against an in-process
service, plus steady / replay / storm runs over a real HTTP socket — enough
traffic to exercise the coalescer, the NDJSON streaming path, idempotent
feedback, and the rate limiter, while asserting the error taxonomy stays
exactly as each scenario declares it.
"""

from __future__ import annotations

import pytest

from repro.bench.scenarios import SCENARIO_PACK, get_scenario
from repro.bench.traffic import (
    assert_tail_gates,
    read_run_jsonl,
    run_and_report,
    run_scenario,
    summarize,
)
from repro.config import SeeSawConfig
from repro.server import (
    HTTPClient,
    SeeSawApp,
    SeeSawService,
    SessionManager,
    serve_in_background,
)
from repro.server.protocol import InProcessClient

QUERIES = ("a cat_easy", "a cat_hard")
SMOKE_DURATION = 1.0
SMOKE_RATE = 15.0
SMOKE_SESSIONS = 4


def _smoke(name: str):
    return get_scenario(name).scaled(
        duration_seconds=SMOKE_DURATION,
        rate_rps=SMOKE_RATE,
        session_count=SMOKE_SESSIONS,
    )


@pytest.fixture(scope="module")
def inprocess_client(tiny_dataset, tiny_clip):
    """An in-process client over a sharded, coalescing, live-enabled service.

    ``live_datasets=True`` so the pack's ``live_ingest`` row can upsert and
    force-merge; the other scenarios never mutate, so they are unaffected.
    """
    service = SeeSawService(
        SeeSawConfig(
            embedding_dim=64, seed=7, n_shards=2, batch_window_ms=2.0,
            live_datasets=True,
        )
    )
    service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
    yield InProcessClient(SessionManager(service))
    service.live.close()


@pytest.fixture(scope="module")
def http_server(tiny_dataset, tiny_clip):
    """A real socket server with the same topology as the in-process run."""
    service = SeeSawService(
        SeeSawConfig(embedding_dim=64, seed=7, n_shards=2, batch_window_ms=2.0)
    )
    service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
    with serve_in_background(SeeSawApp(SessionManager(service))) as server:
        yield server


@pytest.mark.parametrize(
    "scenario", SCENARIO_PACK, ids=lambda scenario: scenario.name
)
def test_scenario_pack_inprocess(inprocess_client, tiny_dataset, scenario):
    """Every pack scenario runs open-loop in process with a clean taxonomy."""
    run = run_scenario(
        inprocess_client,
        scenario.scaled(
            duration_seconds=SMOKE_DURATION,
            rate_rps=SMOKE_RATE,
            session_count=SMOKE_SESSIONS,
        ),
        dataset="tiny",
        queries=QUERIES,
        transport="inprocess",
        mutation_categories=tuple(
            info.name for info in tiny_dataset.categories
        ),
    )
    summary = summarize(run)
    assert run.arrivals > 0
    assert summary.requests >= run.arrivals
    assert summary.ok_requests > 0
    # No scenario may produce errors outside its declared taxonomy.  (The
    # in-process client sits below the middleware, so even the storm runs
    # clean here — its 429s only exist over HTTP.)
    assert summary.unexpected_errors == 0, summary.error_taxonomy
    assert summary.p50_ms <= summary.p99_ms <= summary.p999_ms <= summary.max_ms
    assert summary.achieved_rps > 0


def test_steady_open_loop_http_with_gates_and_artifact(http_server, tmp_path):
    """The steady scoreboard run over a real socket: gates + JSONL artifact."""
    client = HTTPClient(http_server.url, client_id="traffic-smoke")
    scenario = _smoke("steady")
    summary = run_and_report(
        client,
        scenario,
        dataset="tiny",
        queries=QUERIES,
        results_dir=tmp_path,
        transport="http",
    )
    assert summary.error_taxonomy == {}
    assert summary.unexpected_errors == 0
    assert_tail_gates(summary, scenario.gates)
    artifact = read_run_jsonl(tmp_path / "traffic_steady_http.jsonl")
    assert artifact["summary"]["transport"] == "http"
    assert len(artifact["requests"]) == summary.requests
    # The harness captured /v1/metrics counter snapshots around the run,
    # and the run actually moved the server's request counters.
    before = artifact["meta"]["metrics_before"]
    after = artifact["meta"]["metrics_after"]
    assert before is not None and after is not None
    assert after["seesaw_requests_total"] > before["seesaw_requests_total"]


def test_feedback_replay_adversarial_http(http_server):
    """The replay scenario provokes (and survives) idempotency conflicts."""
    client = HTTPClient(http_server.url, client_id="traffic-replay")
    scenario = _smoke("feedback_replay")
    run = run_scenario(
        client, scenario, dataset="tiny", queries=QUERIES, transport="http"
    )
    summary = summarize(run)
    assert summary.unexpected_errors == 0, summary.error_taxonomy
    # The adversarial path really ran: conflicting replays were refused.
    assert summary.error_taxonomy.get("IdempotencyConflictError", 0) > 0
    replay_ops = [r for r in run.records if r.op == "replay"]
    assert replay_ops, "no replay interactions were scheduled"


def test_rate_limit_storm_http(tiny_dataset, tiny_clip):
    """Arrivals far above the token bucket: 429s flow, nothing else breaks."""
    scenario = get_scenario("rate_limit_storm").scaled(
        duration_seconds=1.2, rate_rps=60.0, session_count=SMOKE_SESSIONS
    )
    service = SeeSawService(
        SeeSawConfig(
            embedding_dim=64,
            seed=7,
            batch_window_ms=2.0,
            rate_limit_rps=scenario.server_rate_limit_rps,
            rate_limit_burst=20,
        )
    )
    service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
    with serve_in_background(SeeSawApp(SessionManager(service))) as server:
        client = HTTPClient(server.url, client_id="traffic-storm")
        run = run_scenario(
            client, scenario, dataset="tiny", queries=QUERIES, transport="http"
        )
    summary = summarize(run)
    assert summary.unexpected_errors == 0, summary.error_taxonomy
    # The storm actually hit the limiter.
    assert summary.error_taxonomy.get("RateLimitedError", 0) > 0
    # And the service still served real work underneath it.
    assert summary.ok_requests > 0
