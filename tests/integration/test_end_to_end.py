"""Integration tests: the full pipeline reproduces the paper's qualitative claims."""

import numpy as np
import pytest

from repro.baselines import RocchioMethod, ZeroShotClipMethod
from repro.bench.runner import BenchmarkSettings, run_query_set, run_search_task
from repro.bench.suite import ExperimentScale
from repro.bench.tasks import queries_for_dataset
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.metrics import mean_average_precision
from repro.vectorstore.forest import RandomProjectionForest


@pytest.fixture(scope="module")
def bdd_queries(bdd_bundle):
    return queries_for_dataset(bdd_bundle.dataset, min_positives=2)


class TestSeeSawVsZeroShot:
    def test_seesaw_improves_hard_queries(self, bdd_bundle, bdd_queries):
        """The headline claim: SeeSaw lifts AP on queries where CLIP struggles."""
        settings = BenchmarkSettings()
        zero = run_query_set(
            bdd_bundle.coarse_index, ZeroShotClipMethod, bdd_queries, settings
        )
        seesaw = run_query_set(
            bdd_bundle.multiscale_index,
            lambda: SeeSawSearchMethod(bdd_bundle.config),
            bdd_queries,
            settings,
        )
        hard_keys = [key for key, outcome in zero.items() if outcome.average_precision < 0.5]
        assert hard_keys, "the tiny BDD bundle should contain hard queries"
        zero_hard = mean_average_precision(
            [zero[key].average_precision for key in hard_keys]
        )
        seesaw_hard = mean_average_precision(
            [seesaw[key].average_precision for key in hard_keys]
        )
        assert seesaw_hard > zero_hard + 0.02

    def test_seesaw_does_not_break_easy_queries(self, bdd_bundle, bdd_queries):
        settings = BenchmarkSettings()
        zero = run_query_set(
            bdd_bundle.coarse_index, ZeroShotClipMethod, bdd_queries, settings
        )
        seesaw = run_query_set(
            bdd_bundle.multiscale_index,
            lambda: SeeSawSearchMethod(bdd_bundle.config),
            bdd_queries,
            settings,
        )
        easy_keys = [key for key, outcome in zero.items() if outcome.average_precision >= 0.9]
        assert easy_keys
        for key in easy_keys:
            assert seesaw[key].average_precision >= zero[key].average_precision - 0.35

    def test_seesaw_latency_grows_with_feedback_not_database(self, bdd_bundle, bdd_queries):
        """Per-round update cost must not scan the database (the §4.4 claim)."""
        settings = BenchmarkSettings()
        query = bdd_queries[0]
        outcome = run_search_task(
            bdd_bundle.multiscale_index,
            SeeSawSearchMethod(bdd_bundle.config),
            query,
            settings,
        )
        # Loose sanity bound: a single round on the tiny index stays well
        # under a second, which would be impossible with full propagation.
        assert outcome.seconds_per_round < 1.0


class TestBaselineOrderingOnHardSubset:
    def test_seesaw_at_least_matches_rocchio_and_beats_ens_warmup(self, objectnet_bundle):
        """On the hard subset SeeSaw should be in front (Table 3's ordering)."""
        scale = ExperimentScale.tiny()
        queries = objectnet_bundle.queries(scale)
        settings = BenchmarkSettings()
        index = objectnet_bundle.coarse_index
        zero = run_query_set(index, ZeroShotClipMethod, queries, settings)
        rocchio = run_query_set(index, RocchioMethod, queries, settings)
        seesaw = run_query_set(
            index, lambda: SeeSawSearchMethod(objectnet_bundle.config), queries, settings
        )
        hard = [k for k, o in zero.items() if o.average_precision < 0.5]
        if not hard:
            pytest.skip("no hard queries generated at this tiny scale")
        zero_hard = mean_average_precision([zero[k].average_precision for k in hard])
        seesaw_hard = mean_average_precision([seesaw[k].average_precision for k in hard])
        rocchio_hard = mean_average_precision([rocchio[k].average_precision for k in hard])
        assert seesaw_hard > zero_hard
        assert rocchio_hard > zero_hard


class TestApproximateStoreAccuracy:
    def test_forest_recall_on_real_index_vectors(self, bdd_bundle):
        """The Annoy-style store loses little accuracy vs an exact scan (§2.2)."""
        index = bdd_bundle.coarse_index
        vectors = np.asarray(index.store.vectors)
        forest = RandomProjectionForest(
            vectors, list(index.store.records), tree_count=12, leaf_size=16, seed=0
        )
        queries = [
            bdd_bundle.embedding.embed_text(bdd_bundle.dataset.category(name).prompt)
            for name in list(bdd_bundle.dataset.category_names)[:5]
        ]
        recall = forest.recall_against_exact(np.stack(queries), k=10)
        assert recall > 0.8
