"""`/v1` wire-protocol integration tests: real sockets, real chunked NDJSON.

The legacy integration suite (``test_http_service.py``) is deliberately
untouched — it is the back-compat gate proving pre-`/v1` clients keep
working.  This module covers what only a real socket shows about the new
surface: chunked transfer framing, response headers from the middleware
pipeline, HTTP-level rate limiting, and the two route families coexisting
on one server.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.config import SeeSawConfig
from repro.exceptions import RateLimitedError
from repro.server import (
    FeedbackRequest,
    HTTPClient,
    SeeSawApp,
    SeeSawService,
    ServiceClient,
    SessionManager,
    StartSessionRequest,
    serve_in_background,
)


@pytest.fixture(scope="module")
def running_server(tiny_dataset, tiny_clip):
    service = SeeSawService(SeeSawConfig(embedding_dim=64, seed=7))
    service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
    app = SeeSawApp(SessionManager(service))
    with serve_in_background(app) as server:
        yield server


@pytest.fixture()
def client(running_server):
    return HTTPClient(running_server.url, client_id="v1-integration")


def start(client, batch_size=2):
    return client.start_session(
        StartSessionRequest(
            dataset="tiny", text_query="a cat_easy", batch_size=batch_size
        )
    )


class TestWireFormat:
    def test_ndjson_stream_is_chunked_and_line_framed(self, running_server, client):
        info = start(client, batch_size=3)
        request = urllib.request.Request(
            f"{running_server.url}/v1/sessions/{info.session_id}/next",
            headers={"Accept": "application/x-ndjson"},
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            assert response.headers["Transfer-Encoding"] == "chunked"
            assert response.headers["X-Request-Id"]
            records = [json.loads(line) for line in response if line.strip()]
        assert records[0]["kind"] == "meta"
        assert records[0]["item_count"] == 3
        assert [record["kind"] for record in records[1:-1]] == ["item"] * 3
        assert records[-1]["kind"] == "end"
        client.close_session(info.session_id)

    def test_request_id_echoed_and_client_value_wins(self, running_server):
        request = urllib.request.Request(
            f"{running_server.url}/v1/healthz",
            headers={"X-Request-Id": "my-trace-id"},
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            assert response.headers["X-Request-Id"] == "my-trace-id"

    def test_error_envelope_carries_request_id(self, running_server):
        request = urllib.request.Request(
            f"{running_server.url}/v1/sessions/ghost",
            headers={"X-Request-Id": "trace-404"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        payload = json.loads(excinfo.value.read())
        assert excinfo.value.code == 404
        assert payload["error"]["code"] == "not_found"
        assert payload["error"]["details"]["request_id"] == "trace-404"

    def test_streaming_client_matches_single_shot(self, client):
        single = start(client, batch_size=3)
        streamed = start(client, batch_size=3)
        expected = client.next_results(single.session_id).items
        received = list(client.stream_next_results(streamed.session_id))
        assert [item.image_id for item in received] == [
            item.image_id for item in expected
        ]
        client.close_session(single.session_id)
        client.close_session(streamed.session_id)

    def test_batch_next_ndjson_stream(self, running_server, client):
        info = start(client)
        body = json.dumps(
            {"requests": [{"session_id": info.session_id}, {"session_id": "ghost"}]}
        ).encode()
        request = urllib.request.Request(
            f"{running_server.url}/v1/sessions/batch-next?stream=ndjson",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            records = [json.loads(line) for line in response if line.strip()]
        assert records[0] == {"kind": "meta", "outcome_count": 2}
        first, second = records[1:-1]
        assert first["ok"] is True and first["index"] == 0
        assert second["ok"] is False and second["error"]["code"] == "not_found"
        assert records[-1]["kind"] == "end"
        client.close_session(info.session_id)


class TestCoexistence:
    def test_legacy_and_v1_share_one_session_space(self, running_server):
        """A session started through the legacy client is visible to `/v1`."""
        legacy = ServiceClient(running_server.url)
        v1 = HTTPClient(running_server.url)
        info = legacy.start_session(
            StartSessionRequest(dataset="tiny", text_query="a cat_easy", batch_size=2)
        )
        assert v1.session_info(info.session_id) == info
        batch = v1.next_results(info.session_id)
        for item in batch.items:
            legacy.give_feedback(
                FeedbackRequest(
                    session_id=info.session_id,
                    image_id=item.image_id,
                    relevant=False,
                )
            )
        listed = [entry.info.session_id for entry in v1.iter_sessions()]
        assert info.session_id in listed
        v1.close_session(info.session_id)
        health = legacy.healthz()
        assert health["status"] == "ok"


class TestRateLimiting:
    def test_429_over_http_then_recovery(self, tiny_dataset, tiny_clip):
        service = SeeSawService(
            SeeSawConfig(
                embedding_dim=64, seed=7, rate_limit_rps=200.0, rate_limit_burst=5
            )
        )
        service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
        app = SeeSawApp(SessionManager(service))
        with serve_in_background(app) as server:
            client = HTTPClient(server.url, client_id="hammer")
            statuses: "list[str]" = []
            rejected = None
            for _ in range(50):
                try:
                    client.healthz()
                    statuses.append("ok")
                except RateLimitedError as exc:
                    rejected = exc
                    break
            assert rejected is not None, "burst never hit the limiter"
            assert statuses.count("ok") >= 5
            # At 200 rps a fresh token arrives within a few ms; the typed
            # client surfaces the retryable error, the caller retries.
            import time

            deadline = time.monotonic() + 5.0
            while True:
                try:
                    client.healthz()
                    break
                except RateLimitedError:
                    assert time.monotonic() < deadline, "limiter never refilled"
                    time.sleep(0.05)
            # Other clients were never throttled by the hammer's bucket.
            other = HTTPClient(server.url, client_id="bystander")
            assert other.healthz()["status"] == "ok"
