"""HTTP load/soak test: concurrent mixed traffic through the coalescer.

~32 client threads drive start/next/feedback/close traffic against a real
socket server configured with sharding and a coalescing batch window — the
full scaling stack under fire at once.  The assertions are the ones that
matter under concurrency:

* **no cross-session leakage** — a session never sees an image twice across
  its own batches (its SeenMask row is honored inside fused cohorts);
* **no deadlocks** — every worker finishes within the join timeout;
* **capacity and liveness errors survive coalescing** — over-capacity starts
  still come back 503, requests for closed sessions still come back 404.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import SeeSawConfig
from repro.exceptions import ServiceOverloadedError, UnknownResourceError
from repro.server import (
    FeedbackRequest,
    HTTPClient,
    SeeSawApp,
    SeeSawService,
    ServiceClient,
    SessionManager,
    StartSessionRequest,
    serve_in_background,
)

WORKERS = 32
CAPACITY = 24
ROUNDS = 3
BATCH_SIZE = 2


@pytest.fixture(scope="module")
def loaded_server(tiny_dataset, tiny_clip):
    """A sharded, coalescing server with capacity below the worker count."""
    service = SeeSawService(
        SeeSawConfig(embedding_dim=64, seed=7, n_shards=3, batch_window_ms=4.0)
    )
    service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
    manager = SessionManager(service, max_sessions=CAPACITY)
    with serve_in_background(SeeSawApp(manager)) as server:
        yield server, manager


def test_load_soak_mixed_traffic(loaded_server):
    server, manager = loaded_server
    start_barrier = threading.Barrier(WORKERS, timeout=30.0)
    traffic_barrier = threading.Barrier(WORKERS, timeout=30.0)
    overloaded: "list[str]" = []
    leaks: "list[str]" = []
    errors: "list[BaseException]" = []
    record_lock = threading.Lock()

    def worker(worker_id: int) -> None:
        client = ServiceClient(server.url)
        session_id: "str | None" = None
        try:
            # Phase 1: everyone starts at once against CAPACITY slots; the
            # losers must get a clean 503, not a hang or a stack trace.
            start_barrier.wait()
            try:
                info = client.start_session(
                    StartSessionRequest(
                        dataset="tiny",
                        text_query=f"a cat_easy {worker_id}",
                        batch_size=BATCH_SIZE,
                    )
                )
                session_id = info.session_id
            except ServiceOverloadedError:
                with record_lock:
                    overloaded.append(f"worker-{worker_id}")
            traffic_barrier.wait()
            if session_id is None:
                return
            # Phase 2: mixed next/feedback rounds through the coalescer.
            seen: "set[int]" = set()
            for _ in range(ROUNDS):
                batch = client.next_results(session_id)
                batch_ids = [item.image_id for item in batch.items]
                if seen & set(batch_ids) or len(set(batch_ids)) != len(batch_ids):
                    with record_lock:
                        leaks.append(
                            f"worker-{worker_id}: repeat in {batch_ids} after {sorted(seen)}"
                        )
                seen.update(batch_ids)
                for image_id in batch_ids:
                    client.give_feedback(
                        FeedbackRequest(
                            session_id=session_id,
                            image_id=image_id,
                            relevant=worker_id % 3 == 0,
                        )
                    )
            # Phase 3: close, then verify liveness errors still surface.
            client.close_session(session_id)
            with pytest.raises(UnknownResourceError):
                client.next_results(session_id)
            session_id = None
        except BaseException as exc:  # pragma: no cover - failure reporting
            with record_lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(worker_id,), name=f"load-{worker_id}")
        for worker_id in range(WORKERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    stuck = [thread.name for thread in threads if thread.is_alive()]

    assert not stuck, f"deadlocked workers: {stuck}"
    assert not errors, errors
    assert not leaks, leaks
    # Exactly the capacity overflow was rejected, each with a clean 503.
    assert len(overloaded) == WORKERS - CAPACITY
    # Everyone closed their session; the registry drained completely.
    assert manager.active_session_count == 0
    health = manager.health()
    assert health["store_shards"] == {"tiny": 3}
    # The coalescer actually coalesced: fewer dispatches than requests, and
    # at least one fused multi-session cohort went through the batch engine.
    coalescer = health["coalescer"]
    assert coalescer["requests_coalesced"] >= CAPACITY * ROUNDS
    assert coalescer["batches_dispatched"] < coalescer["requests_coalesced"]
    assert coalescer["largest_batch"] >= 2
    assert health["fused_sessions"] >= 2


def test_explicit_batch_next_endpoint_under_load(loaded_server):
    """The explicit cohort endpoint: fused results plus per-item errors."""
    server, _ = loaded_server
    client = ServiceClient(server.url)
    infos = [
        client.start_session(
            StartSessionRequest(dataset="tiny", text_query="a cat_easy", batch_size=2)
        )
        for _ in range(8)
    ]
    try:
        requests = [(info.session_id, None) for info in infos] + [("session-none", None)]
        outcomes = client.batch_next(requests)
        assert len(outcomes) == len(requests)
        returned: "list[set[int]]" = []
        for outcome in outcomes[:-1]:
            assert not isinstance(outcome, Exception), outcome
            ids = {item.image_id for item in outcome.items}
            assert len(ids) == 2
            returned.append(ids)
        assert isinstance(outcomes[-1], UnknownResourceError)
        # A second fused round for one session without feedback must fail
        # with the same pending-batch error the sequential path raises.
        again = client.batch_next([(infos[0].session_id, None)])
        assert isinstance(again[0], Exception)
        assert "unlabelled" in str(again[0])
    finally:
        for info in infos:
            client.close_session(info.session_id)


def _counter_series(payload: dict) -> "dict[tuple[str, tuple[tuple[str, str], ...]], float]":
    """Flatten a JSON exposition into {(family, labelset): value} counters."""
    series = {}
    for metric in payload["metrics"]:
        if metric["type"] != "counter":
            continue
        for entry in metric["series"]:
            key = (metric["name"], tuple(sorted(entry["labels"].items())))
            series[key] = entry["value"]
    return series


def test_metrics_scrape_after_load(loaded_server):
    """Scraping `/v1/metrics` after the soak: every core series from the
    telemetry catalog is present, and counters are monotone across scrapes
    interleaved with live traffic."""
    server, _ = loaded_server
    client = HTTPClient(server.url, client_id="metrics-scraper")
    text = client.metrics_text()
    for needle in (
        "# TYPE seesaw_requests_total counter",
        "# TYPE seesaw_request_seconds histogram",
        "seesaw_request_seconds_bucket",
        'seesaw_requests_total{method="GET",route="/sessions/{id}/next"',
        "seesaw_coalescer_batches_total",
        "seesaw_coalescer_requests_total",
        "seesaw_coalescer_batch_size_bucket",
        "seesaw_fused_rounds_total",
        "seesaw_fused_sessions_total",
        "seesaw_fused_batch_seconds_count",
        "seesaw_active_sessions",
        'seesaw_stage_seconds_bucket{stage="score"',
        'seesaw_stage_seconds_count{stage="coalesce_wait"}',
        'seesaw_stage_seconds_count{stage="lock_wait"}',
    ):
        assert needle in text, f"missing series: {needle}"

    first = _counter_series(client.metrics_json())
    # More traffic between scrapes, so monotonicity is actually exercised.
    info = client.start_session(
        StartSessionRequest(dataset="tiny", text_query="a cat_easy", batch_size=2)
    )
    batch = client.next_results(info.session_id)
    assert batch.items
    client.close_session(info.session_id)
    second = _counter_series(client.metrics_json())

    assert set(first) <= set(second)
    for key, value in first.items():
        assert second[key] >= value, f"counter went backwards: {key}"
    next_key = (
        "seesaw_requests_total",
        (("method", "GET"), ("route", "/v1/sessions/{id}/next"), ("status", "200")),
    )
    assert second[next_key] >= first.get(next_key, 0.0) + 1
