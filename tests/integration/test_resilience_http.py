"""The resilience layer over a real socket.

What only real HTTP shows: the ``X-Deadline-Ms`` header crossing the wire
into a typed 504 envelope, ``Retry-After`` on 429/503 responses, the
client-side retry policy absorbing live rejections, admission-control
shedding while a request genuinely occupies a server thread, the drain
lifecycle flipping ``/healthz`` mid-flight, and a scaled chaos scenario
whose injected faults all surface typed through the whole stack.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import pytest

from repro.bench.scenarios import get_scenario
from repro.bench.traffic import run_scenario, summarize
from repro.config import SeeSawConfig
from repro.exceptions import (
    DeadlineExceededError,
    InternalServiceError,
    RateLimitedError,
    ServiceOverloadedError,
)
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry
from repro.server import (
    HTTPClient,
    SeeSawApp,
    SeeSawService,
    SessionManager,
    StartSessionRequest,
    serve_in_background,
)
from repro.server.deadlines import DEADLINE_HEADER, Deadline, deadline_scope
from repro.server.retry import RetryPolicy

QUERY = "a cat_easy"


def _service(tiny_dataset, tiny_clip, **config_kwargs) -> SeeSawService:
    service = SeeSawService(
        SeeSawConfig(embedding_dim=64, seed=7, **config_kwargs),
        registry=MetricsRegistry(),
    )
    service.register_dataset(tiny_dataset, tiny_clip, preprocess=True)
    return service


def _start(client: HTTPClient, batch_size: int = 2):
    return client.start_session(
        StartSessionRequest(dataset="tiny", text_query=QUERY, batch_size=batch_size)
    )


@pytest.fixture(scope="module")
def plain_server(tiny_dataset, tiny_clip):
    service = _service(tiny_dataset, tiny_clip)
    with serve_in_background(SeeSawApp(SessionManager(service))) as server:
        yield server


class TestDeadlineOverHTTP:
    def test_expired_header_is_the_typed_504(self, plain_server):
        client = HTTPClient(plain_server.url, client_id="deadline-dead")
        info = _start(client)
        with deadline_scope(Deadline(0.0)):
            with pytest.raises(DeadlineExceededError, match="routing"):
                client.next_results(info.session_id)

    def test_504_envelope_shape_on_the_wire(self, plain_server):
        request = urllib.request.Request(
            f"{plain_server.url}/v1/sessions",
            headers={DEADLINE_HEADER: "-10"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 504
        import json

        envelope = json.loads(excinfo.value.read())["error"]
        assert envelope["code"] == "deadline_exceeded"
        assert envelope["retryable"] is False

    def test_generous_budget_flows_through_untouched(self, plain_server):
        client = HTTPClient(plain_server.url, client_id="deadline-live")
        info = _start(client)
        with deadline_scope(Deadline(30_000.0)):
            response = client.next_results(info.session_id)
        assert len(response.items) == 2

    def test_malformed_header_is_a_400(self, plain_server):
        request = urllib.request.Request(
            f"{plain_server.url}/v1/sessions",
            headers={DEADLINE_HEADER: "whenever"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 400

    def test_deadline_exceeded_counter_moves(self, plain_server):
        client = HTTPClient(plain_server.url, client_id="deadline-count")
        metrics = client.metrics_json()

        def total(payload) -> float:
            for metric in payload["metrics"]:
                if metric["name"] == "seesaw_deadline_exceeded_total":
                    return sum(s["value"] for s in metric["series"])
            return 0.0

        before = total(metrics)
        info = _start(client)
        with deadline_scope(Deadline(0.0)):
            with pytest.raises(DeadlineExceededError):
                client.next_results(info.session_id)
        assert total(client.metrics_json()) == before + 1


class TestRetryAfterOnTheWire:
    def test_rate_limited_429_carries_retry_after(self, tiny_dataset, tiny_clip):
        service = _service(
            tiny_dataset, tiny_clip, rate_limit_rps=1.0, rate_limit_burst=1
        )
        with serve_in_background(SeeSawApp(SessionManager(service))) as server:
            # Exhaust the single-token bucket, then read the raw response.
            urllib.request.urlopen(
                f"{server.url}/v1/capabilities", timeout=30.0
            ).read()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    urllib.request.Request(f"{server.url}/v1/sessions"),
                    timeout=30.0,
                )
            assert excinfo.value.code == 429
            retry_after = excinfo.value.headers.get("Retry-After")
            assert retry_after is not None and int(retry_after) >= 1

    def test_client_surfaces_the_hint_on_the_typed_error(
        self, tiny_dataset, tiny_clip
    ):
        service = _service(
            tiny_dataset, tiny_clip, rate_limit_rps=1.0, rate_limit_burst=1
        )
        with serve_in_background(SeeSawApp(SessionManager(service))) as server:
            client = HTTPClient(server.url, client_id="hint-reader")
            client.capabilities()
            with pytest.raises(RateLimitedError) as excinfo:
                client.list_sessions()
            assert excinfo.value.retry_after_seconds is not None
            assert excinfo.value.retry_after_seconds > 0


class TestRetryPolicyOverHTTP:
    def test_retry_absorbs_a_429_and_succeeds(self, tiny_dataset, tiny_clip):
        service = _service(
            tiny_dataset, tiny_clip, rate_limit_rps=50.0, rate_limit_burst=1
        )
        registry = MetricsRegistry()
        policy = RetryPolicy(
            max_attempts=4, base_ms=30.0, max_ms=120.0, registry=registry
        )
        with serve_in_background(SeeSawApp(SessionManager(service))) as server:
            client = HTTPClient(
                server.url, client_id="retrier", retry_policy=policy
            )
            # Back-to-back calls against a one-token bucket refilled at
            # 50/s: most calls 429 first, and the policy's backoff (floored
            # by the limiter's ~20ms refill hint) absorbs every one.
            for _ in range(3):
                page = client.list_sessions()
                assert list(page.sessions) == []
        counter = registry.counter(
            "seesaw_retries_total", "", labels=("operation", "error")
        )
        assert counter.labels("list_sessions", "RateLimitedError").value >= 1.0


class TestAdmissionControlOverHTTP:
    def test_sheds_503_with_retry_after_while_slot_is_held(
        self, tiny_dataset, tiny_clip, monkeypatch
    ):
        service = _service(tiny_dataset, tiny_clip, max_in_flight=1)
        manager = SessionManager(service)
        entered = threading.Event()
        release = threading.Event()
        original = type(service).next_results

        def slow_next(self, session_id, count=None):
            entered.set()
            assert release.wait(timeout=10.0)
            return original(self, session_id, count)

        monkeypatch.setattr(type(service), "next_results", slow_next)
        with serve_in_background(SeeSawApp(manager)) as server:
            client = HTTPClient(server.url, client_id="shed-victim")
            info = _start(client)
            holder = threading.Thread(
                target=lambda: HTTPClient(server.url).next_results(info.session_id)
            )
            holder.start()
            assert entered.wait(timeout=10.0)
            try:
                # The slot is genuinely occupied by a server thread: the
                # next request must shed at the door with the typed 503.
                with pytest.raises(ServiceOverloadedError) as excinfo:
                    client.session_info(info.session_id)
                assert excinfo.value.retry_after_seconds is not None
                # Probes stay exempt even while shedding.
                health = client.healthz()
                assert health["in_flight"] >= 1
            finally:
                release.set()
                holder.join(timeout=10.0)

    def test_raw_503_response_carries_retry_after_header(
        self, tiny_dataset, tiny_clip, monkeypatch
    ):
        service = _service(tiny_dataset, tiny_clip, max_in_flight=1)
        manager = SessionManager(service)
        entered = threading.Event()
        release = threading.Event()
        original = type(service).next_results

        def slow_next(self, session_id, count=None):
            entered.set()
            assert release.wait(timeout=10.0)
            return original(self, session_id, count)

        monkeypatch.setattr(type(service), "next_results", slow_next)
        with serve_in_background(SeeSawApp(manager)) as server:
            client = HTTPClient(server.url, client_id="shed-raw")
            info = _start(client)
            holder = threading.Thread(
                target=lambda: HTTPClient(server.url).next_results(info.session_id)
            )
            holder.start()
            assert entered.wait(timeout=10.0)
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(
                        f"{server.url}/v1/sessions/{info.session_id}",
                        timeout=30.0,
                    )
                assert excinfo.value.code == 503
                assert int(excinfo.value.headers["Retry-After"]) >= 1
            finally:
                release.set()
                holder.join(timeout=10.0)


class TestHealthAndDrain:
    def test_healthz_reports_state_uptime_and_in_flight(self, plain_server):
        client = HTTPClient(plain_server.url, client_id="health-reader")
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["state"] == "serving"
        assert health["uptime_seconds"] >= 0.0
        assert health["in_flight"] >= 0

    def test_drain_flips_health_rejects_sessions_finishes_inflight(
        self, tiny_dataset, tiny_clip, monkeypatch
    ):
        service = _service(tiny_dataset, tiny_clip, drain_timeout_s=5.0)
        manager = SessionManager(service)
        entered = threading.Event()
        release = threading.Event()
        original = type(service).next_results

        def slow_next(self, session_id, count=None):
            entered.set()
            assert release.wait(timeout=10.0)
            return original(self, session_id, count)

        monkeypatch.setattr(type(service), "next_results", slow_next)
        server = serve_in_background(SeeSawApp(manager)).start()
        client = HTTPClient(server.url, client_id="drain-test")
        info = _start(client)
        outcome: "list[object]" = []
        inflight = threading.Thread(
            target=lambda: outcome.append(
                HTTPClient(server.url).next_results(info.session_id)
            )
        )
        inflight.start()
        assert entered.wait(timeout=10.0)
        manager.begin_drain()
        # New sessions are refused with the typed 503 + retry hint...
        with pytest.raises(ServiceOverloadedError) as excinfo:
            _start(client)
        assert excinfo.value.retry_after_seconds == pytest.approx(5.0)
        # ...the health probe says draining...
        health = client.healthz()
        assert health["state"] == "draining" and health["status"] == "draining"
        # ...and the in-flight round is allowed to finish before stop.
        release.set()
        drained = server.drain(timeout_s=5.0)
        inflight.join(timeout=10.0)
        assert drained is True
        assert outcome and len(outcome[0].items) == 2

    def test_capabilities_announce_the_resilience_surface(self, plain_server):
        client = HTTPClient(plain_server.url, client_id="caps-reader")
        capabilities = client.capabilities()
        features = capabilities["features"]
        assert features["deadline_propagation"] is True
        assert features["graceful_drain"] is True
        assert features["retry_hints"] is True
        assert capabilities["protocol"]["revision"] >= 3
        assert "drain_timeout_s" in capabilities["limits"]


class TestChaosOverHTTP:
    def test_server_side_fault_plan_injects_typed_500s(
        self, tiny_dataset, tiny_clip
    ):
        faults = FaultPlan(seed=21, error_probability=1.0)
        service = _service(tiny_dataset, tiny_clip, faults=faults)
        with serve_in_background(SeeSawApp(SessionManager(service))) as server:
            client = HTTPClient(server.url, client_id="chaos-500")
            with pytest.raises(InternalServiceError, match="chaos"):
                _start(client)
            # Probes stay exempt from chaos.
            assert client.healthz()["state"] == "serving"

    def test_chaos_scenario_over_http_stays_typed_and_recovers(
        self, tiny_dataset, tiny_clip
    ):
        service = _service(tiny_dataset, tiny_clip, batch_window_ms=2.0, n_shards=2)
        scenario = get_scenario("chaos").scaled(
            duration_seconds=2.0, rate_rps=15.0, session_count=4
        )
        with serve_in_background(SeeSawApp(SessionManager(service))) as server:
            client = HTTPClient(server.url, client_id="chaos-run")
            run = run_scenario(
                client,
                scenario,
                dataset="tiny",
                queries=(QUERY, "a cat_hard"),
                transport="http",
            )
        summary = summarize(run)
        # Nothing outside the declared typed taxonomy leaked through the
        # injected resets/truncations/skews — the tentpole's core claim.
        assert summary.unexpected_errors == 0, summary.error_taxonomy
        assert summary.ok_requests > 0
        # The post-window recovery series exists (the window scaled with
        # the duration, so the tail third of the run is fault-free).
        assert summary.recovery_p99_ms is not None
