"""Platt scaling: mapping raw similarity scores to calibrated probabilities.

Table 4 of the paper studies how sensitive ENS is to score calibration by
fitting Platt scaling (a one-dimensional logistic regression on the raw CLIP
scores) against ground-truth labels.  The paper emphasises this calibration is
*not available in a real deployment* — we reproduce it only to regenerate that
table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import OptimizationError
from repro.utils.validation import check_finite


def _sigmoid(values: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(values, dtype=np.float64)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exp_vals = np.exp(values[~positive])
    out[~positive] = exp_vals / (1.0 + exp_vals)
    return out


@dataclass
class PlattScaler:
    """One-dimensional logistic calibration ``p = sigmoid(a * score + b)``."""

    a: float = 1.0
    b: float = 0.0
    fitted: bool = False

    def fit(
        self,
        scores: np.ndarray,
        labels: np.ndarray,
        iterations: int = 200,
        learning_rate: float = 0.5,
        l2: float = 1e-6,
    ) -> "PlattScaler":
        """Fit the scaling parameters by gradient descent on the log loss.

        Uses Platt's label smoothing (targets pulled slightly away from 0/1)
        to keep the optimisation well behaved on separable data.
        """
        scores = check_finite("scores", np.asarray(scores, dtype=np.float64).ravel())
        labels = np.asarray(labels, dtype=np.float64).ravel()
        if scores.shape != labels.shape:
            raise OptimizationError("scores and labels must have the same length")
        if scores.size == 0:
            raise OptimizationError("cannot fit Platt scaling on empty data")
        positives = float(np.sum(labels > 0.5))
        negatives = float(labels.size - positives)
        # Platt's smoothed targets.
        target_pos = (positives + 1.0) / (positives + 2.0)
        target_neg = 1.0 / (negatives + 2.0)
        targets = np.where(labels > 0.5, target_pos, target_neg)
        # Standardise scores for a well-conditioned 1-d problem.
        mean = float(scores.mean())
        std = float(scores.std()) or 1.0
        standardized = (scores - mean) / std
        a, b = 1.0, 0.0
        for _ in range(iterations):
            probabilities = _sigmoid(a * standardized + b)
            error = probabilities - targets
            grad_a = float(np.mean(error * standardized)) + l2 * a
            grad_b = float(np.mean(error)) + l2 * b
            a -= learning_rate * grad_a
            b -= learning_rate * grad_b
        # Fold the standardisation back into the parameters.
        self.a = a / std
        self.b = b - a * mean / std
        self.fitted = True
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Map raw scores to calibrated probabilities."""
        scores = np.asarray(scores, dtype=np.float64)
        return _sigmoid(self.a * scores + self.b)

    def fit_transform(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Fit on the given data and return the calibrated probabilities."""
        return self.fit(scores, labels).transform(scores)


def expected_calibration_error(
    probabilities: np.ndarray, labels: np.ndarray, bins: int = 10
) -> float:
    """Expected calibration error (ECE) of probability predictions.

    Used by tests to confirm Platt scaling actually improves calibration of
    the synthetic CLIP scores, mirroring the paper's argument for Table 4.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if probabilities.shape != labels.shape:
        raise OptimizationError("probabilities and labels must have the same length")
    edges = np.linspace(0.0, 1.0, bins + 1)
    total = probabilities.size
    error = 0.0
    for low, high in zip(edges[:-1], edges[1:]):
        mask = (probabilities >= low) & (probabilities < high)
        if low == edges[-2]:
            mask |= probabilities == high
        count = int(np.sum(mask))
        if count == 0:
            continue
        confidence = float(probabilities[mask].mean())
        accuracy = float(labels[mask].mean())
        error += (count / total) * abs(confidence - accuracy)
    return float(error)
