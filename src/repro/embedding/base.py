"""Abstract interface every embedding model must implement."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.data.geometry import BoundingBox
from repro.data.image import SyntheticImage


class EmbeddingModel(ABC):
    """A visual-semantic embedding: text and image regions share one space.

    All returned vectors are unit L2 norm so that inner product and cosine
    similarity coincide, as assumed throughout the paper.
    """

    @property
    @abstractmethod
    def dim(self) -> int:
        """Dimensionality of the embedding space."""

    def fingerprint(self) -> "dict[str, object]":
        """A JSON-serializable identity of this model, for index cache keys.

        Two models with equal fingerprints must embed identically.  The base
        implementation only captures the class and dimensionality; models with
        internal randomness or tunable parameters must extend it.
        """
        return {"class": type(self).__name__, "dim": self.dim}

    @abstractmethod
    def embed_text(self, query: str) -> np.ndarray:
        """Embed a free-text query string into the shared space."""

    @abstractmethod
    def embed_region(self, image: SyntheticImage, region: BoundingBox) -> np.ndarray:
        """Embed one rectangular region of an image."""

    def embed_image(self, image: SyntheticImage) -> np.ndarray:
        """Embed the whole image (the paper's *coarse* embedding)."""
        return self.embed_region(image, image.full_box)

    def embed_images(self, images: "list[SyntheticImage]") -> np.ndarray:
        """Embed a batch of whole images, one row per image."""
        if not images:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.stack([self.embed_image(image) for image in images])
