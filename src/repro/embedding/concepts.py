"""Latent concept space shared by text and image embeddings.

Each category name maps to a fixed unit *concept direction*; each scene
context maps to a *context direction*.  The synthetic CLIP model builds image
vectors near concept directions (high concept locality) and text vectors at a
controlled angular offset from them (the alignment deficit), rotated toward a
deterministic *confuser* direction so that a misaligned query genuinely ranks
non-relevant content first, reproducing Figure 2a of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EmbeddingError
from repro.utils.linalg import normalize_vector, rotate_towards
from repro.utils.rng import derive_rng


class ConceptSpace:
    """Deterministic mapping from names to unit vectors in the shared space."""

    def __init__(self, dim: int = 128, seed: int = 0) -> None:
        if dim < 2:
            raise EmbeddingError(f"Concept space dimension must be >= 2, got {dim}")
        self.dim = int(dim)
        self.seed = int(seed)
        self._cache: dict[tuple[str, str], np.ndarray] = {}

    def _vector_for(self, kind: str, name: str) -> np.ndarray:
        """Deterministic unit vector for a (kind, name) pair, cached."""
        key = (kind, name)
        if key not in self._cache:
            rng = derive_rng(self.seed, "concept-space", kind, name)
            self._cache[key] = normalize_vector(rng.standard_normal(self.dim))
        return self._cache[key]

    def concept_vector(self, category: str) -> np.ndarray:
        """The latent direction image content of ``category`` clusters around."""
        return self._vector_for("category", category).copy()

    def context_vector(self, context: str) -> np.ndarray:
        """The direction contributed by background scene context."""
        return self._vector_for("context", context).copy()

    def confuser_vector(self, category: str) -> np.ndarray:
        """The direction a misaligned text query for ``category`` drifts toward.

        Blends a category-specific distractor direction with a generic "web
        caption prior" direction so misaligned queries for different
        categories do not all collapse onto one point.
        """
        distractor = self._vector_for("confuser", category)
        prior = self._vector_for("prior", "caption-prior")
        return normalize_vector(0.75 * distractor + 0.25 * prior)

    def text_vector(
        self,
        category: str,
        alignment_deficit: float,
        confuser: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Text embedding for ``category`` with the given angular deficit.

        A deficit of 0 returns the concept direction itself (a perfectly
        aligned query); larger deficits rotate the vector toward ``confuser``
        (by default a generic distractor direction), so the query scores
        unrelated database content above the relevant content.
        """
        if alignment_deficit < 0:
            raise EmbeddingError("alignment_deficit must be >= 0")
        concept = self.concept_vector(category)
        if alignment_deficit == 0:
            return concept
        if confuser is None:
            confuser = self.confuser_vector(category)
        return rotate_towards(concept, confuser, alignment_deficit)

    def instance_noise(
        self, image_id: int, instance_id: int, scale: float
    ) -> np.ndarray:
        """Deterministic per-instance appearance noise (concept locality spread).

        The returned vector has L2 norm ``scale`` in a random direction, so
        ``scale`` directly controls the angular spread of a category's cluster
        regardless of the embedding dimension.
        """
        if scale <= 0:
            return np.zeros(self.dim)
        rng = derive_rng(self.seed, "instance-noise", str(image_id), str(instance_id))
        return scale * normalize_vector(rng.standard_normal(self.dim))

    def image_noise(self, image_id: int, scale: float) -> np.ndarray:
        """Deterministic per-image background clutter (norm ``scale``)."""
        if scale <= 0:
            return np.zeros(self.dim)
        rng = derive_rng(self.seed, "image-noise", str(image_id))
        return scale * normalize_vector(rng.standard_normal(self.dim))

    def freeform_text_vector(self, text: str) -> np.ndarray:
        """Vector for an arbitrary string with no known category."""
        return self._vector_for("freeform-text", text.strip().lower()).copy()
