"""SyntheticClip: a deterministic stand-in for the CLIP embedding model.

The real CLIP cannot be shipped or run offline here, so this model generates
unit vectors with the properties the paper's algorithms rely on:

* **Shared space** — text and image regions embed into the same unit sphere,
  relevance is the inner product.
* **Concept locality** — patches showing a category cluster tightly around
  that category's latent concept direction, so a linear model ("ideal query
  vector", Figure 4) separates them nearly perfectly.
* **Alignment deficit** — the text vector of a category sits at an angular
  offset from the concept direction, rotated toward a confuser direction, so
  hard queries genuinely retrieve the wrong content first (Figure 1 / 2a).
* **Coarse dilution** — a whole-image embedding is an area-weighted mixture of
  object and background directions, so small objects nearly vanish from the
  coarse vector and only reappear when the image is tiled into patches
  (the motivation for the multiscale representation, §4.3).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.data.dataset import CategoryInfo, ImageDataset
from repro.data.geometry import BoundingBox
from repro.data.image import SyntheticImage
from repro.embedding.base import EmbeddingModel
from repro.embedding.concepts import ConceptSpace
from repro.exceptions import EmbeddingError
from repro.utils.linalg import normalize_vector


def _normalize_query_text(text: str) -> str:
    """Map a free-text query to a canonical category-name form."""
    cleaned = text.strip().lower()
    for prefix in ("a photo of a ", "a photo of ", "an ", "a "):
        if cleaned.startswith(prefix):
            cleaned = cleaned[len(prefix):]
            break
    return cleaned.replace(" ", "_")


class SyntheticClip(EmbeddingModel):
    """Deterministic visual-semantic embedding over synthetic scenes.

    Parameters
    ----------
    categories:
        Category metadata (name, prompt, alignment deficit, locality noise).
        Text queries matching a known category are embedded with that
        category's deficit; unknown text gets a deterministic free-form vector.
    dim:
        Embedding dimensionality (the paper's CLIP uses 512; the default here
        is 128 for speed — every algorithm is dimension-agnostic).
    seed:
        Seed for the concept space and all deterministic noise.
    background_strength:
        How strongly scene context contributes to a region embedding.
    clutter_noise:
        Norm of the per-image background clutter added to every region.
    coverage_exponent:
        The contribution of an object to a region vector scales with
        ``coverage ** coverage_exponent`` where coverage is the fraction of
        the region the object occupies.  Values below 1 model CLIP's
        non-linear sensitivity: a clearly visible object produces a solid
        signal even when it covers a modest fraction of the crop, while an
        object covering a sliver of a large image still nearly vanishes.
    """

    def __init__(
        self,
        categories: Iterable[CategoryInfo],
        dim: int = 128,
        seed: int = 0,
        background_strength: float = 0.6,
        clutter_noise: float = 0.08,
        contexts: Iterable[str] = (),
        coverage_exponent: float = 0.5,
    ) -> None:
        self._categories: dict[str, CategoryInfo] = {
            info.name: info for info in categories
        }
        if not self._categories:
            raise EmbeddingError("SyntheticClip requires at least one category")
        self._space = ConceptSpace(dim=dim, seed=seed)
        self._dim = int(dim)
        self.seed = int(seed)
        self.background_strength = float(background_strength)
        self.clutter_noise = float(clutter_noise)
        self.coverage_exponent = float(coverage_exponent)
        self._contexts = tuple(sorted(set(contexts)))
        self._confusers = self._build_confusers()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_dataset(
        cls, dataset: ImageDataset, dim: int = 128, seed: int = 0, **kwargs: float
    ) -> "SyntheticClip":
        """Build the embedding model matching a dataset's category catalog."""
        contexts = {image.context for image in dataset.images}
        return cls(dataset.categories, dim=dim, seed=seed, contexts=contexts, **kwargs)

    def _build_confusers(self) -> dict[str, np.ndarray]:
        """Choose, per category, the direction a misaligned query drifts toward.

        A misaligned text query is only *hard* if it ranks content that is
        actually present in the database above the relevant content (Figure
        2a), so the confuser is a blend of another category's concept
        direction and a scene-context direction, both chosen deterministically
        from this model's catalog.
        """
        names = sorted(self._categories)
        confusers: dict[str, np.ndarray] = {}
        for index, name in enumerate(names):
            parts = []
            if len(names) > 1:
                other = names[(index * 7 + 1) % len(names)]
                if other == name:
                    other = names[(index + 1) % len(names)]
                parts.append(0.65 * self._space.concept_vector(other))
            if self._contexts:
                context = self._contexts[index % len(self._contexts)]
                parts.append(0.55 * self._space.context_vector(context))
            if not parts:
                parts.append(self._space.confuser_vector(name))
            confusers[name] = normalize_vector(np.sum(parts, axis=0))
        return confusers

    # ------------------------------------------------------------------
    # EmbeddingModel interface
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._dim

    @property
    def concept_space(self) -> ConceptSpace:
        """The underlying concept space (exposed for analysis and tests)."""
        return self._space

    @property
    def known_categories(self) -> Mapping[str, CategoryInfo]:
        """The category catalog this model was built for."""
        return dict(self._categories)

    def fingerprint(self) -> "dict[str, object]":
        """Identity for index cache keys: seed, knobs, and the category catalog."""
        identity = super().fingerprint()
        identity.update(
            seed=self.seed,
            background_strength=self.background_strength,
            clutter_noise=self.clutter_noise,
            coverage_exponent=self.coverage_exponent,
            contexts=list(self._contexts),
            categories=[
                {
                    "name": info.name,
                    "alignment_deficit": info.alignment_deficit,
                    "locality_noise": info.locality_noise,
                }
                for info in sorted(self._categories.values(), key=lambda c: c.name)
            ],
        )
        return identity

    def embed_text(self, query: str) -> np.ndarray:
        """Embed a text query.

        Known category names (optionally phrased as "a <name>") use the
        category's alignment deficit; unknown strings get a deterministic
        free-form direction, mimicking CLIP's behaviour of returning *some*
        vector for any prompt.
        """
        canonical = _normalize_query_text(query)
        info = self._categories.get(canonical)
        if info is None:
            return self._space.freeform_text_vector(query)
        return self._space.text_vector(
            info.name, info.alignment_deficit, confuser=self._confusers[info.name]
        )

    def concept_vector(self, category: str) -> np.ndarray:
        """The ideal (fully aligned) direction for ``category``."""
        info = self._require_category(category)
        return self._space.concept_vector(info.name)

    def embed_region(self, image: SyntheticImage, region: BoundingBox) -> np.ndarray:
        """Embed one region of an image.

        The region vector is a coverage-weighted mixture of the concept
        directions of the objects visible in the region, the scene-context
        direction, and deterministic clutter noise.  Coverage is measured as
        the fraction of the *region* occupied by the object, which is what
        produces coarse-embedding dilution for small objects.
        """
        region = region.clipped_to(image.width, image.height)
        vector = np.zeros(self._dim, dtype=np.float64)
        covered = 0.0
        for instance, visible_fraction in image.objects_in_region(region):
            visible_area = instance.box.area * visible_fraction
            coverage = min(1.0, visible_area / region.area)
            if coverage <= 0.0:
                continue
            info = self._categories.get(instance.category)
            locality_noise = info.locality_noise if info is not None else 0.04
            concept = self._space.concept_vector(instance.category)
            appearance = concept + self._space.instance_noise(
                image.image_id, instance.instance_id, locality_noise
            )
            weight = coverage ** self.coverage_exponent
            vector += instance.distinctiveness * weight * normalize_vector(appearance)
            covered += coverage
        background_weight = self.background_strength * max(0.0, 1.0 - min(covered, 1.0))
        if background_weight > 0.0:
            background = self._space.context_vector(image.context)
            background = background + self._space.image_noise(
                image.image_id, self.clutter_noise
            )
            vector += background_weight * normalize_vector(background)
        if not np.any(vector):
            # A region with no objects and no background weight: fall back to
            # pure per-image clutter so the embedding is still well defined.
            vector = self._space.image_noise(image.image_id, 1.0)
        return normalize_vector(vector)

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def alignment_deficit(self, category: str) -> float:
        """The angular deficit configured for ``category`` (radians)."""
        return self._require_category(category).alignment_deficit

    def text_prompt(self, category: str) -> str:
        """The natural-language prompt used to start a search for ``category``."""
        return self._require_category(category).prompt

    def _require_category(self, category: str) -> CategoryInfo:
        info = self._categories.get(category)
        if info is None:
            raise EmbeddingError(f"Unknown category '{category}'")
        return info
