"""Visual-semantic embedding substrate.

The paper uses CLIP.  This package provides :class:`SyntheticClip`, a
deterministic generative stand-in exposing the same interface (text → vector,
image region → vector, shared unit-norm space) and the same failure modes the
paper's algorithms are designed around: a long tail of misaligned text
queries, high concept locality of image vectors, and dilution of small
objects in coarse full-image embeddings.
"""

from repro.embedding.base import EmbeddingModel
from repro.embedding.calibration import PlattScaler
from repro.embedding.concepts import ConceptSpace
from repro.embedding.synthetic_clip import SyntheticClip

__all__ = ["EmbeddingModel", "ConceptSpace", "SyntheticClip", "PlattScaler"]
