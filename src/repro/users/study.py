"""End-to-end user-study simulation (§5.5, Figure 6).

For each study query, simulated users run the same search task on two
systems: the baseline (zero-shot CLIP with a plain UI) and SeeSaw (with box
feedback).  The user inspects images in the order the system proposes them,
spending time per image according to the annotation-time model, and stops
after finding ``target_results`` relevant images or when the time budget (6
minutes in the paper) runs out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.baselines.zero_shot import ZeroShotClipMethod
from repro.bench.simulate import OracleUser
from repro.core.indexing import SeeSawIndex
from repro.core.interfaces import SearchMethod
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.core.session import SearchSession
from repro.exceptions import BenchmarkError
from repro.users.model import (
    BASELINE_TIMING,
    SEESAW_TIMING,
    AnnotationTimeModel,
    UserTimingProfile,
)
from repro.utils.rng import spawn_seeds


@dataclass(frozen=True)
class StudyQuery:
    """One query of the user study, tagged easy or hard (Figure 6 grouping)."""

    category: str
    prompt: str
    difficulty: str = "easy"

    def __post_init__(self) -> None:
        if self.difficulty not in ("easy", "hard"):
            raise BenchmarkError("difficulty must be 'easy' or 'hard'")


@dataclass
class StudyRun:
    """One simulated user completing one query on one system."""

    system: str
    query: StudyQuery
    user_seed: int
    elapsed_seconds: float
    found: int
    images_seen: int
    completed: bool


@dataclass
class StudyResult:
    """Aggregated results of the simulated study for one query and system."""

    system: str
    query: StudyQuery
    median_seconds: float
    mean_seconds: float
    ci_low: float
    ci_high: float
    completion_rate: float
    runs: "list[StudyRun]"


def _simulate_one_user(
    index: SeeSawIndex,
    method: SearchMethod,
    query: StudyQuery,
    timing: UserTimingProfile,
    user_seed: int,
    target_results: int,
    time_budget_seconds: float,
    system: str,
) -> StudyRun:
    oracle = OracleUser(index.dataset, query.category)
    clock = AnnotationTimeModel(timing, seed=user_seed)
    session = SearchSession(index=index, method=method, text_query=query.prompt, batch_size=1)
    # A user cannot find more examples than exist; on reduced-scale synthetic
    # datasets rare categories may have fewer than the nominal target.
    target_results = min(target_results, oracle.total_relevant)
    elapsed = 0.0
    found = 0
    seen = 0
    while elapsed < time_budget_seconds and found < target_results:
        batch = session.next_batch(1)
        if not batch:
            break
        result = batch[0]
        judgement = oracle.judge(result.image_id)
        elapsed += clock.time_for_image(judgement.relevant)
        seen += 1
        if judgement.relevant:
            found += 1
        session.give_feedback(result.image_id, judgement.relevant, judgement.boxes)
        if elapsed >= time_budget_seconds:
            elapsed = time_budget_seconds
            break
    return StudyRun(
        system=system,
        query=query,
        user_seed=user_seed,
        elapsed_seconds=min(elapsed, time_budget_seconds),
        found=found,
        images_seen=seen,
        completed=found >= target_results,
    )


def _bootstrap_ci(values: np.ndarray, seed: int, repeats: int = 500) -> tuple[float, float]:
    """Bootstrapped 95% confidence interval of the mean."""
    rng = np.random.default_rng(seed)
    means = [
        float(np.mean(rng.choice(values, size=values.size, replace=True)))
        for _ in range(repeats)
    ]
    return float(np.quantile(means, 0.025)), float(np.quantile(means, 0.975))


def simulate_user_study(
    index: SeeSawIndex,
    queries: Sequence[StudyQuery],
    users_per_system: int = 10,
    target_results: int = 10,
    time_budget_seconds: float = 360.0,
    seed: int = 0,
    seesaw_method_factory: "Callable[[], SearchMethod] | None" = None,
) -> "list[StudyResult]":
    """Run the simulated user study on one dataset index.

    Returns one :class:`StudyResult` per (system, query) pair, with the
    baseline system named ``"clip_only"`` and SeeSaw named ``"seesaw"``,
    mirroring the two lines of Figure 6.
    """
    if users_per_system < 1:
        raise BenchmarkError("users_per_system must be >= 1")
    systems: list[tuple[str, Callable[[], SearchMethod], UserTimingProfile]] = [
        ("clip_only", ZeroShotClipMethod, BASELINE_TIMING),
        (
            "seesaw",
            seesaw_method_factory or (lambda: SeeSawSearchMethod(index.config)),
            SEESAW_TIMING,
        ),
    ]
    results: list[StudyResult] = []
    for query in queries:
        for system, factory, timing in systems:
            user_seeds = spawn_seeds(f"{seed}-{system}-{query.category}".__hash__() & 0x7FFFFFFF, users_per_system)
            runs = [
                _simulate_one_user(
                    index,
                    factory(),
                    query,
                    timing,
                    user_seed,
                    target_results,
                    time_budget_seconds,
                    system,
                )
                for user_seed in user_seeds
            ]
            times = np.array([run.elapsed_seconds for run in runs])
            ci_low, ci_high = _bootstrap_ci(times, seed=seed)
            results.append(
                StudyResult(
                    system=system,
                    query=query,
                    median_seconds=float(np.median(times)),
                    mean_seconds=float(np.mean(times)),
                    ci_low=ci_low,
                    ci_high=ci_high,
                    completion_rate=float(np.mean([run.completed for run in runs])),
                    runs=runs,
                )
            )
    return results
