"""Simulated users: annotation-time model and end-to-end study (Table 5, Figure 6)."""

from repro.users.model import AnnotationTimeModel, UserTimingProfile
from repro.users.study import StudyQuery, StudyResult, simulate_user_study

__all__ = [
    "AnnotationTimeModel",
    "UserTimingProfile",
    "StudyQuery",
    "StudyResult",
    "simulate_user_study",
]
