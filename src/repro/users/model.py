"""Annotation-time model for the end-to-end tests (§5.5, Table 5).

The paper measures how long users take per image: about 2 seconds to skip a
non-relevant image, about 3 seconds to mark a relevant one in the baseline UI
(a keypress), and about 1.5 extra seconds to draw the region box SeeSaw asks
for.  The simulated user draws per-image times from these distributions, which
is what turns per-query rankings into the wall-clock results of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class UserTimingProfile:
    """Mean per-image annotation times (seconds) for one system variant."""

    skip_mean: float
    mark_mean: float
    skip_std: float = 0.5
    mark_std: float = 0.9
    minimum: float = 0.5

    def __post_init__(self) -> None:
        if self.skip_mean <= 0 or self.mark_mean <= 0:
            raise ConfigurationError("annotation time means must be positive")
        if self.minimum <= 0:
            raise ConfigurationError("minimum annotation time must be positive")


BASELINE_TIMING = UserTimingProfile(skip_mean=1.98, mark_mean=3.00)
"""Baseline UI (keypress to mark relevant): Table 5, left column."""

SEESAW_TIMING = UserTimingProfile(skip_mean=2.40, mark_mean=4.40)
"""SeeSaw UI (box feedback on relevant images): Table 5, right column."""


class AnnotationTimeModel:
    """Draws per-image annotation times for a simulated user."""

    def __init__(
        self,
        profile: UserTimingProfile,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        self.profile = profile
        self._rng = ensure_rng(seed)

    def time_for_image(self, relevant: bool) -> float:
        """Seconds spent on one image, depending on whether it gets marked."""
        profile = self.profile
        if relevant:
            mean, std = profile.mark_mean, profile.mark_std
        else:
            mean, std = profile.skip_mean, profile.skip_std
        sample = self._rng.normal(mean, std)
        return float(max(profile.minimum, sample))

    def expected_time(self, relevant: bool) -> float:
        """The mean time for one image (no sampling), used in reports."""
        return self.profile.mark_mean if relevant else self.profile.skip_mean

    def confidence_interval(
        self, relevant: bool, samples: int = 1000, confidence: float = 0.95
    ) -> tuple[float, float]:
        """Bootstrapped mean confidence interval, mirroring Table 5's ± values."""
        times = np.array([self.time_for_image(relevant) for _ in range(samples)])
        mean = float(times.mean())
        half_width = float(
            1.96 * times.std(ddof=1) / np.sqrt(samples)
            if confidence == 0.95
            else times.std(ddof=1) / np.sqrt(samples)
        )
        return mean, half_width
