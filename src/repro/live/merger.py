"""Background segment merger: compacts base+delta into a new sealed segment.

A merge is a from-scratch build of the dataset's current logical corpus —
through the index cache when one is configured, so the new generation lands
as a content-hash-keyed raw-``.npy`` entry the next process start can
memory-map — executed *off the request path*.  While the build runs,
queries keep flowing against the old generation and mutations keep landing
in the delta; at swap time the operations that arrived after the snapshot
are replayed (with their original sequence numbers and versions) as a fresh
delta over the new base, and the live index reference is swapped by a
single assignment.  In-flight sessions finish on the generation they
started with; seen-state survives because it is keyed by stable external
image ids, not store rows.

The merged generation gets everything a cold build gets — the kNN graph,
the DB-alignment matrix, the configured quantized/graph/sharded tier stack
— so the quality knobs the delta view had to forgo resume here.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from repro import obs
from repro.core.indexing import SeeSawIndex
from repro.data.dataset import ImageDataset
from repro.embedding.base import EmbeddingModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.live.registry import DatasetRegistry, LiveDatasetState


class SegmentMerger:
    """Schedules and executes delta-segment compactions."""

    def __init__(self, registry: "DatasetRegistry") -> None:
        self.registry = registry
        self._threads: "list[threading.Thread]" = []
        self._threads_lock = threading.Lock()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def should_merge(self, state: "LiveDatasetState") -> bool:
        """True when the delta has outgrown its configured budget."""
        config = self.registry.service.config
        if not state.has_delta or state.base_index is None:
            return False
        if state.delta_rows >= config.delta_max_rows:
            return True
        base_rows = len(state.base_index.store)
        return state.delta_rows >= config.merge_trigger_ratio * base_rows

    def maybe_schedule(self, state: "LiveDatasetState") -> bool:
        """Kick off a background merge when the trigger condition holds."""
        with state.lock:
            if state.merge_inflight or not self.should_merge(state):
                return False
        return self.schedule(state)

    def schedule(self, state: "LiveDatasetState") -> bool:
        """Start a background merge for ``state`` (deduplicated)."""
        with state.lock:
            if state.merge_inflight:
                return False
            state.merge_inflight = True
        thread = threading.Thread(
            target=self._run,
            args=(state,),
            name=f"seesaw-merge-{state.name}",
            daemon=True,
        )
        with self._threads_lock:
            self._threads = [t for t in self._threads if t.is_alive()]
            self._threads.append(thread)
        thread.start()
        return True

    def _run(self, state: "LiveDatasetState") -> None:
        try:
            self.merge(state, _scheduled=True)
        except Exception:
            # A failed background compaction must never take the serving
            # path down: the delta view stays live and the next mutation's
            # trigger retries the merge.
            with state.lock:
                state.merge_inflight = False

    def join(self, timeout: "float | None" = 30.0) -> None:
        """Wait for in-flight background merges (shutdown/test hygiene)."""
        with self._threads_lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout)

    # ------------------------------------------------------------------
    # the compaction itself
    # ------------------------------------------------------------------
    def merge(self, state: "LiveDatasetState", _scheduled: bool = False) -> bool:
        """Compact ``state``'s delta into a new sealed generation.

        Returns True when a new generation was swapped in, False when there
        was nothing to compact.  Serialised per dataset by ``merge_lock`` —
        a force-merge arriving while a background merge runs waits, then
        finds an empty delta and no-ops.
        """
        registry = self.registry
        with state.merge_lock:
            with state.lock:
                state.merge_inflight = True
                if not state.has_delta or state.base_index is None:
                    state.merge_inflight = False
                    return False
                snapshot = state.merged_dataset()
                snapshot_seq = state.mutation_seq
                embedding = state.base_index.embedding
            try:
                start = time.perf_counter()
                with obs.trace_span(
                    "merge", dataset=state.name, images=len(snapshot)
                ):
                    sealed = self._build_sealed(state, snapshot, embedding)
                    with state.lock:
                        pending = [
                            entry for entry in state.journal if entry[0] > snapshot_seq
                        ]
                        registry._adopt_base(state, sealed)
                        for seq, op, payload in pending:
                            registry._apply_op(
                                state, op, payload, seq=seq, bump_version=False
                            )
                        state.generation += 1
                        state.merges_completed += 1
                        live = registry._build_live_index(state)
                        registry._swap_current(state, live)
                        state.retain(live)
                        registry._persist_manifest(state)
                elapsed = time.perf_counter() - start
                registry._merges_total.labels(state.name).inc()
                registry._merge_seconds.observe(elapsed)
                self._sweep_cache(state)
                return True
            finally:
                with state.lock:
                    state.merge_inflight = False

    def _build_sealed(
        self,
        state: "LiveDatasetState",
        dataset: ImageDataset,
        embedding: EmbeddingModel,
    ) -> SeeSawIndex:
        """A full sealed build of the snapshot (cache-keyed when possible)."""
        service = self.registry.service
        cache = service._caches.get(state.name)
        if cache is not None:
            index, was_cached = cache.load_or_build(dataset, embedding, state.config)
            with service._counter_lock:
                if was_cached:
                    service.cache_hits += 1
                else:
                    service.cache_misses += 1
            service._cache_events.labels("hit" if was_cached else "miss").inc()
        else:
            index = SeeSawIndex.build(dataset, embedding, state.config)
        service._apply_store_tiers(index)
        index.engine
        return index

    def _sweep_cache(self, state: "LiveDatasetState") -> None:
        """Bound on-disk growth: each merge adds one entry, so sweep after."""
        cache = self.registry.service._caches.get(state.name)
        if cache is not None:
            cache.sweep(pinned=self.registry.pinned_cache_keys())
