"""Live datasets: the LSM-style mutable tier over sealed vector stores.

Three pieces compose the tier (ROADMAP: "Live datasets: streaming ingest,
delta segments, and a versioned registry"):

* :class:`~repro.live.delta.DeltaVectorStore` — a writable delta segment
  (appended unit rows + tombstones) merged with the sealed base through the
  existing ``deterministic_top_k`` rule, keeping live results bit-identical
  to a from-scratch rebuild;
* :class:`~repro.live.merger.SegmentMerger` — background compaction of
  base+delta into a new sealed cache entry, atomically swapped in with
  zero downtime;
* :class:`~repro.live.registry.DatasetRegistry` — versioned manifests,
  generation tracking, and the ``dataset_version`` session pin.

See ``docs/datasets.md`` for the manifest schema and merge lifecycle.
"""

from repro.live.delta import DeltaVectorStore
from repro.live.merger import SegmentMerger
from repro.live.registry import (
    MANIFEST_FORMAT,
    RETAINED_GENERATIONS,
    DatasetRegistry,
    LiveDatasetState,
)

__all__ = [
    "DeltaVectorStore",
    "SegmentMerger",
    "DatasetRegistry",
    "LiveDatasetState",
    "MANIFEST_FORMAT",
    "RETAINED_GENERATIONS",
]
