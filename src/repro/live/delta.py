"""Writable delta segment over a sealed base vector store.

The mutable dataset tier keeps every expensive artifact sealed: the base
segment stays the immutable (usually memory-mapped) store the index cache
produced, and all mutations land in a small in-memory *delta* — appended
unit-normalized rows for upserted images plus a tombstone set marking rows
(base or delta) that later mutations deleted.  :class:`DeltaVectorStore`
presents the pair as one store to the engine:

* ``score_all`` fills one global score column — the base segment through the
  base store's own (shard-stable, bit-identical) kernel, the delta rows
  through the same :func:`~repro.utils.linalg.dot_rows` kernel a rebuild
  would use — so the exhaustive engine path over a live view returns the
  exact bits a from-scratch rebuild of the merged dataset returns.
* ``search_arrays`` merges the base tier's candidates with an exact scan of
  the delta rows through :func:`~repro.vectorstore.base.deterministic_top_k`
  — the same merge rule that makes sharded results bit-identical to flat
  ones — with tombstoned rows masked out on both sides.

Deletes never touch the sealed bytes: a tombstoned row keeps its slot (and
its score, on the exhaustive path) but is dropped from the image→vector
segment mapping, so pooling never gathers it; the candidate path masks it
explicitly.  Compaction (:mod:`repro.live.merger`) folds base+delta into a
new sealed segment off the request path.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import VectorStoreError
from repro.utils.linalg import (
    ZERO_NORM_EPSILON,
    dot_rows,
    ensure_dtype,
    normalize_rows,
    unit_norm_tolerance,
)
from repro.vectorstore.base import VectorRecord, VectorStore, deterministic_top_k


class DeltaVectorStore(VectorStore):
    """A sealed base store plus an append-only delta segment and tombstones.

    The base store may be any tier the service composes — exact, sharded,
    quantized, or graph-ANN; the delta sits *above* the tier stack, so a
    mutation never rebuilds a quantization or a graph adjacency (those
    rebuild at merge).  ``exhaustive`` is inherited from the base: a live
    view over an exhaustive base still full-scans (base kernel + delta
    kernel fill one column), a live view over a candidate store drives the
    base's candidate API and scans only the delta exactly.
    """

    def __init__(
        self,
        base: VectorStore,
        delta_vectors: np.ndarray,
        delta_records: "list[VectorRecord]",
        tombstones: np.ndarray,
    ) -> None:
        # Deliberately does NOT call VectorStore.__init__: the base segment's
        # matrix is adopted by reference (it may be a shared mmap), never
        # copied or revalidated here.
        dtype = base.compute_dtype
        n_base = len(base)
        delta = ensure_dtype(np.asarray(delta_vectors), dtype)
        if delta.ndim != 2 or (delta.size and delta.shape[1] != base.dim):
            raise VectorStoreError(
                f"delta vectors must be (count x {base.dim}), got shape {delta.shape}"
            )
        if delta.shape[0] == 0:
            delta = np.zeros((0, base.dim), dtype=dtype)
        if len(delta_records) != delta.shape[0]:
            raise VectorStoreError(
                f"delta record count {len(delta_records)} does not match delta "
                f"vector count {delta.shape[0]}"
            )
        for offset, record in enumerate(delta_records):
            if record.vector_id != n_base + offset:
                raise VectorStoreError(
                    "delta records must be ordered so record.vector_id equals "
                    "base length plus its delta row index"
                )
        # The same canonical-row adoption the sealed store performs: rows
        # already unit (or zero) within the dtype's tolerance are kept
        # bit-exact, so a delta row embedded by the same deterministic
        # embedding a rebuild would run scores identically in both views.
        if delta.shape[0]:
            norms = np.linalg.norm(delta, axis=1)
            canonical = (np.abs(norms - 1.0) < unit_norm_tolerance(dtype)) | (
                norms < ZERO_NORM_EPSILON
            )
            if not bool(canonical.all()):
                delta = ensure_dtype(normalize_rows(delta), dtype)
            elif delta.flags.writeable:
                delta = delta.copy()
        delta.setflags(write=False)
        tombstones = np.asarray(tombstones, dtype=bool)
        if tombstones.shape != (n_base + delta.shape[0],):
            raise VectorStoreError(
                f"tombstones must be a boolean column over all "
                f"{n_base + delta.shape[0]} rows, got shape {tombstones.shape}"
            )
        tombstones = tombstones.copy()
        tombstones.setflags(write=False)

        self._base = base
        self._delta = delta
        self._tombstones = tombstones
        self._records = list(base.records) + list(delta_records)
        scale_levels = np.empty(len(self._records), dtype=np.int8)
        scale_levels[:n_base] = base.scale_levels
        for offset, record in enumerate(delta_records):
            scale_levels[n_base + offset] = record.scale_level
        scale_levels.setflags(write=False)
        self._scale_levels = scale_levels
        self._compute_dtype = dtype
        # Instance attribute shadowing the class flag, the sharded-store
        # precedent: the live view is exactly as exhaustive as its base.
        self.exhaustive = bool(base.exhaustive)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def base(self) -> VectorStore:
        """The sealed base segment (whatever tier stack the service built)."""
        return self._base

    @property
    def delta_rows(self) -> int:
        """Unsealed rows appended since the base segment was sealed."""
        return self._delta.shape[0]

    @property
    def tombstones(self) -> np.ndarray:
        """Boolean tombstone column over all rows (read-only)."""
        return self._tombstones

    @property
    def tombstone_count(self) -> int:
        return int(self._tombstones.sum())

    @property
    def live_rows(self) -> int:
        """Rows that are neither tombstoned base nor tombstoned delta."""
        return len(self) - self.tombstone_count

    # ------------------------------------------------------------------
    # VectorStore surface (base accessors that assumed self._vectors)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._base) + self._delta.shape[0]

    @property
    def dim(self) -> int:
        return self._base.dim

    @property
    def vectors(self) -> np.ndarray:
        """The full matrix, materialised (serialization/merge path only).

        The hot paths never call this — scoring goes through the segment
        kernels below — so the concatenation cost is paid exactly once, by
        the merger when it seals a new segment.
        """
        stacked = np.concatenate(
            [np.asarray(self._base.vectors), self._delta], axis=0
        )
        stacked.setflags(write=False)
        return stacked

    def vector(self, vector_id: int) -> np.ndarray:
        if not 0 <= vector_id < len(self):
            raise VectorStoreError(f"Unknown vector id {vector_id}")
        n_base = len(self._base)
        if vector_id < n_base:
            return self._base.vector(vector_id)
        return self._delta[vector_id - n_base].copy()

    def _share_vectors(self, vectors: np.ndarray) -> None:
        raise VectorStoreError(
            "DeltaVectorStore does not share its matrix; wrap the base store"
        )

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def score_all(self, query: np.ndarray) -> np.ndarray:
        """One global score column: base kernel then delta kernel.

        Tombstoned rows keep their true scores — the segment mapping no
        longer references them, so pooling never reads those slots, and not
        branching here keeps the column bit-identical to a rebuild's (whose
        matrix simply lacks the rows).
        """
        query = self._check_query(query)
        out = np.empty(len(self), dtype=self._compute_dtype)
        n_base = len(self._base)
        out[:n_base] = self._base.score_all(query)
        if self._delta.shape[0]:
            out[n_base:] = dot_rows(self._delta, query)
        return out

    def score_many(self, queries: np.ndarray) -> np.ndarray:
        queries = self._check_queries(queries)
        out = np.empty((queries.shape[0], len(self)), dtype=self._compute_dtype)
        n_base = len(self._base)
        out[:, :n_base] = self._base.score_many(queries)
        if self._delta.shape[0]:
            out[:, n_base:] = queries @ self._delta.T
        return out

    def search_arrays(
        self,
        query: np.ndarray,
        k: int,
        exclude_mask: "np.ndarray | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Candidate merge: base tier's top-k + exact delta scan.

        The base segment answers through whatever candidate machinery it has
        (exact scan, int8 rerank, graph descent) with tombstoned base rows
        folded into its exclusion mask; the delta — small by construction —
        is always scanned exactly.  Both sides then merge through
        ``deterministic_top_k``, so over an exhaustive base the result is
        the exact global top-k a rebuild would return, bit for bit.
        """
        if k < 1:
            raise VectorStoreError(f"k must be >= 1, got {k}")
        query = self._check_query(query)
        n_base = len(self._base)
        n_delta = self._delta.shape[0]
        if exclude_mask is not None and exclude_mask.shape[0] != len(self):
            raise VectorStoreError(
                f"exclude_mask length {exclude_mask.shape[0]} does not match "
                f"store size {len(self)}"
            )
        base_mask = self._tombstones[:n_base]
        if exclude_mask is not None:
            base_mask = base_mask | exclude_mask[:n_base]
        base_ids, base_scores = self._base.search_arrays(
            query, k, exclude_mask=base_mask if base_mask.any() else None
        )
        if n_delta == 0:
            return base_ids.astype(np.int64, copy=False), base_scores
        delta_scores = dot_rows(self._delta, query)
        delta_mask = self._tombstones[n_base:]
        if exclude_mask is not None:
            delta_mask = delta_mask | exclude_mask[n_base:]
        if delta_mask.any():
            delta_scores[delta_mask] = -np.inf
        merged_ids = np.concatenate(
            [
                base_ids.astype(np.int64, copy=False),
                np.arange(n_base, n_base + n_delta, dtype=np.int64),
            ]
        )
        merged_scores = np.concatenate(
            [base_scores, delta_scores.astype(base_scores.dtype, copy=False)]
        )
        top = deterministic_top_k(merged_scores, merged_ids, k)
        top = top[np.isfinite(merged_scores[top])]
        return merged_ids[top], merged_scores[top]
