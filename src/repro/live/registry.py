"""Versioned dataset registry: the control plane of the mutable tier.

Every registered dataset gets a :class:`LiveDatasetState` — the sealed base
index, the writable delta (rows, records, tombstones), the canonical image
ordering, and a mutation journal — plus a monotonically increasing
*version* (one per logical mutation) and *generation* (one per physical
swap, so a compaction that changes no logical content still advances it).
``register_dataset`` publishes version 1; every upsert/delete publishes the
next version; sessions may pin any retained version and get bit-stable
results for that exact corpus.

The canonical ordering is the bit-identity linchpin: surviving base images
keep their base order, images added (or re-added by an upsert) go to the
*end*, in mutation order.  A from-scratch rebuild of the merged dataset
then assigns every image the same row the live view gives it, so pooled
scores, tie-breaks, and result order match bit for bit.

Manifests are JSON files under ``<index_cache_dir>/registry/`` written with
:func:`repro.store.serialize.write_json_atomic` (fsync + atomic replace): a
crash mid-publish leaves the previous manifest, never a half-written one.
Cache keys named by a manifest are *pinned* — the index cache's LRU sweep
never evicts them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro import obs
from repro.config import MultiscaleConfig, SeeSawConfig
from repro.core.indexing import IndexBuildReport, SeeSawIndex
from repro.core.multiscale import generate_patches
from repro.data.dataset import ImageDataset
from repro.data.image import SyntheticImage
from repro.exceptions import (
    ServiceOverloadedError,
    SessionError,
    UnknownResourceError,
)
from repro.live.delta import DeltaVectorStore
from repro.store.serialize import write_json_atomic
from repro.vectorstore.base import VectorRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.service import SeeSawService

MANIFEST_FORMAT = 1
"""Bumped when the manifest schema changes."""

RETAINED_GENERATIONS = 8
"""How many past versions stay pinnable per dataset.  Old in-memory indexes
are dropped beyond this window (a pin to an expired version fails with a
typed 404), which bounds memory across an unbounded mutation stream."""


class LiveDatasetState:
    """Everything mutable about one registered dataset.

    All fields are guarded by ``lock`` except ``current`` — the live index
    reference — which is swapped by one dict/attribute assignment so query
    paths read it without taking the lock (in-flight sessions keep whatever
    index object they started on; that is the zero-downtime contract).
    """

    def __init__(self, name: str, config: SeeSawConfig) -> None:
        self.name = name
        self.config = config
        self.lock = threading.RLock()
        self.merge_lock = threading.Lock()
        self.version = 1
        self.generation = 1
        self.mutation_seq = 0
        self.categories: "tuple" = ()
        self.description = ""
        self.base_index: "SeeSawIndex | None" = None
        self.base_cache_key: "str | None" = None
        self.current: "SeeSawIndex | None" = None
        self.images: "OrderedDict[int, SyntheticImage]" = OrderedDict()
        self.image_vector_ids: "OrderedDict[int, tuple[int, ...]]" = OrderedDict()
        self.delta_vectors: "list[np.ndarray]" = []
        self.delta_records: "list[VectorRecord]" = []
        self.tombstoned: "set[int]" = set()
        self.journal: "list[tuple[int, str, object]]" = []
        self.generations: "OrderedDict[int, SeeSawIndex]" = OrderedDict()
        self.merge_inflight = False
        self.merges_completed = 0

    @property
    def delta_rows(self) -> int:
        return len(self.delta_records)

    @property
    def has_delta(self) -> bool:
        return bool(self.delta_records) or bool(self.tombstoned)

    def merged_dataset(self) -> ImageDataset:
        """The current logical corpus, in canonical (row-stable) order."""
        return ImageDataset(
            name=self.name,
            images=list(self.images.values()),
            categories=self.categories,
            description=self.description,
        )

    def retain(self, index: SeeSawIndex) -> None:
        """Remember ``index`` as the pinnable view of the current version."""
        self.generations[self.version] = index
        self.generations.move_to_end(self.version)
        while len(self.generations) > RETAINED_GENERATIONS:
            self.generations.popitem(last=False)


class DatasetRegistry:
    """Owns the live state, versions, and manifests of every dataset."""

    def __init__(self, service: "SeeSawService") -> None:
        self.service = service
        self._states: "dict[str, LiveDatasetState]" = {}
        self._states_lock = threading.Lock()
        metrics = service.metrics
        self._merges_total = metrics.counter(
            "seesaw_merges_total",
            "Completed delta-segment compactions, by dataset.",
            labels=("dataset",),
        )
        self._merge_seconds = metrics.histogram(
            "seesaw_merge_seconds",
            "Wall-clock duration of one background segment merge.",
        )
        metrics.gauge(
            "seesaw_delta_rows",
            "Unsealed delta rows across all live datasets.",
            callback=lambda: float(self.delta_rows_total()),
        )
        # Imported here to avoid a cycle (merger drives registry internals).
        from repro.live.merger import SegmentMerger

        self.merger = SegmentMerger(self)

    # ------------------------------------------------------------------
    # configuration helpers
    # ------------------------------------------------------------------
    def _live_config(self) -> SeeSawConfig:
        """The config the multiscale base index is built with.

        Must match ``SeeSawService.index_for(..., multiscale=True)`` exactly
        or the registry's cache keys would diverge from the entries the
        service loads.
        """
        return self.service.config.with_overrides(
            multiscale=MultiscaleConfig(enabled=True)
        )

    def _manifest_dir(self) -> "Path | None":
        cache_dir = self.service.config.index_cache_dir
        if cache_dir is None:
            return None
        return Path(cache_dir) / "registry"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def publish(self, dataset: ImageDataset) -> LiveDatasetState:
        """Publish version 1 of ``dataset`` (re-registering resets lineage)."""
        state = LiveDatasetState(dataset.name, self._live_config())
        state.categories = tuple(dataset.categories)
        state.description = dataset.description
        for image in dataset.images:
            state.images[image.image_id] = image
        with self._states_lock:
            self._states[dataset.name] = state
        self._persist_manifest(state)
        return state

    def forget(self, name: str) -> None:
        with self._states_lock:
            self._states.pop(name, None)

    def state_for(self, name: str) -> LiveDatasetState:
        with self._states_lock:
            state = self._states.get(name)
        if state is None:
            raise UnknownResourceError(f"Dataset '{name}' is not registered")
        return state

    def _ensure_base(self, state: LiveDatasetState) -> SeeSawIndex:
        """Adopt the sealed multiscale index as the state's base (lazy).

        The service may register with ``preprocess=False``; the first
        mutation or version lookup then pays the build (or cache load) the
        eager path would have paid at registration.
        """
        if state.base_index is None:
            index = self.service.index_for(state.name, multiscale=True)
            self._adopt_base(state, index)
            state.retain(index)
        assert state.base_index is not None
        return state.base_index

    def _adopt_base(self, state: LiveDatasetState, index: SeeSawIndex) -> None:
        """Reset the delta state onto a freshly sealed base index."""
        state.base_index = index
        state.current = index
        state.images = OrderedDict(
            (image.image_id, image) for image in index.dataset.images
        )
        state.image_vector_ids = OrderedDict(
            (image_id, index.vector_ids_for_image(image_id))
            for image_id in index.image_ids
        )
        state.delta_vectors = []
        state.delta_records = []
        state.tombstoned = set()
        state.journal = []
        cache = self.service._caches.get(state.name)
        if cache is not None:
            state.base_cache_key = cache.key(
                index.dataset, index.embedding, state.config
            )
        else:
            state.base_cache_key = None

    def warm(self, name: str) -> None:
        """Adopt the already-built sealed index now (eager-register path)."""
        state = self.state_for(name)
        with state.lock:
            self._ensure_base(state)
        self._persist_manifest(state)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def dataset_names(self) -> "tuple[str, ...]":
        with self._states_lock:
            return tuple(self._states)

    def versions(self) -> "dict[str, int]":
        """Current version per dataset (``/v1/capabilities``)."""
        with self._states_lock:
            states = list(self._states.values())
        return {state.name: state.version for state in states}

    def dataset_generations(self) -> "dict[str, int]":
        """Current physical generation per dataset (``/healthz``)."""
        with self._states_lock:
            states = list(self._states.values())
        return {state.name: state.generation for state in states}

    def delta_rows_total(self) -> int:
        with self._states_lock:
            states = list(self._states.values())
        return sum(state.delta_rows for state in states)

    def manifest(self, state: LiveDatasetState) -> "dict[str, object]":
        """The JSON-safe manifest describing one dataset's current version."""
        with state.lock:
            return {
                "format": MANIFEST_FORMAT,
                "name": state.name,
                "version": state.version,
                "generation": state.generation,
                "image_count": len(state.images),
                "delta_rows": state.delta_rows,
                "tombstones": len(state.tombstoned),
                "merges_completed": state.merges_completed,
                "cache_key": state.base_cache_key,
                "retained_versions": sorted(state.generations),
            }

    def describe(self, name: str) -> "dict[str, object]":
        return self.manifest(self.state_for(name))

    def list_datasets(self) -> "list[dict[str, object]]":
        with self._states_lock:
            states = list(self._states.values())
        return [self.manifest(state) for state in states]

    def pinned_cache_keys(self) -> "set[str]":
        """Cache keys a live manifest still points at (never evictable)."""
        with self._states_lock:
            states = list(self._states.values())
        return {
            state.base_cache_key
            for state in states
            if state.base_cache_key is not None
        }

    def _persist_manifest(self, state: LiveDatasetState) -> None:
        directory = self._manifest_dir()
        if directory is None:
            return
        write_json_atomic(directory / f"{state.name}.json", self.manifest(state))

    # ------------------------------------------------------------------
    # version pinning
    # ------------------------------------------------------------------
    def index_for_version(self, name: str, version: int) -> SeeSawIndex:
        """The retained index serving one pinned dataset version."""
        state = self.state_for(name)
        with state.lock:
            self._ensure_base(state)
            if version == state.version:
                assert state.current is not None
                return state.current
            index = state.generations.get(version)
            if index is None:
                retained = ", ".join(str(v) for v in sorted(state.generations))
                raise UnknownResourceError(
                    f"Version {version} of dataset '{name}' is not retained "
                    f"(current {state.version}; retained: {retained or 'none'})"
                )
            return index

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def _check_live_enabled(self) -> None:
        if not self.service.config.live_datasets:
            raise SessionError(
                "Live dataset mutations are disabled "
                "(set SeeSawConfig.live_datasets=True to enable)"
            )

    def upsert_images(
        self, name: str, images: "Sequence[SyntheticImage]"
    ) -> "dict[str, object]":
        """Add or replace images; publishes a new dataset version."""
        self._check_live_enabled()
        state = self.state_for(name)
        if not images:
            raise SessionError("upsert requires at least one image")
        seen: "set[int]" = set()
        for image in images:
            if image.image_id in seen:
                raise SessionError(
                    f"duplicate image id {image.image_id} in one upsert"
                )
            seen.add(image.image_id)
        known = {info.name for info in state.categories}
        for image in images:
            unknown = image.categories - known
            if unknown:
                raise SessionError(
                    f"Image {image.image_id} uses unknown categories "
                    f"{sorted(unknown)} (catalog: {sorted(known)})"
                )
        with state.lock:
            self._ensure_base(state)
            projected = state.delta_rows + sum(
                len(generate_patches(image.width, image.height, state.config.multiscale))
                for image in images
            )
            if projected > self.service.config.delta_max_rows:
                self.merger.schedule(state)
                raise ServiceOverloadedError(
                    f"Delta segment for '{name}' is full "
                    f"({state.delta_rows} rows, cap "
                    f"{self.service.config.delta_max_rows}); a merge is in "
                    "progress, retry shortly",
                    retry_after_seconds=0.5,
                )
            self._apply_op(state, "upsert", tuple(images))
            self._publish_mutation(state)
        self.merger.maybe_schedule(state)
        return self.manifest(state)

    def delete_images(
        self, name: str, image_ids: "Sequence[int]"
    ) -> "dict[str, object]":
        """Remove images; publishes a new dataset version."""
        self._check_live_enabled()
        state = self.state_for(name)
        if not image_ids:
            raise SessionError("delete requires at least one image id")
        with state.lock:
            self._ensure_base(state)
            wanted = []
            seen: "set[int]" = set()
            for image_id in image_ids:
                image_id = int(image_id)
                if image_id in seen:
                    continue
                seen.add(image_id)
                if image_id not in state.images:
                    raise UnknownResourceError(
                        f"Image {image_id} is not in dataset '{name}'"
                    )
                wanted.append(image_id)
            if len(state.images) - len(wanted) < 1:
                raise SessionError(
                    f"Cannot delete all {len(state.images)} images of "
                    f"'{name}'; a dataset must keep at least one"
                )
            self._apply_op(state, "delete", tuple(wanted))
            self._publish_mutation(state)
        self.merger.maybe_schedule(state)
        return self.manifest(state)

    def _apply_op(
        self,
        state: LiveDatasetState,
        op: str,
        payload: object,
        seq: "int | None" = None,
        bump_version: bool = True,
    ) -> None:
        """Apply one journal operation to the delta state (lock held).

        ``seq``/``bump_version`` let the merger replay operations that
        arrived while a background compaction was building — they keep their
        original sequence numbers and already-assigned versions.
        """
        if seq is None:
            state.mutation_seq += 1
            seq = state.mutation_seq
        if op == "upsert":
            self._apply_upsert(state, payload)  # type: ignore[arg-type]
        elif op == "delete":
            self._apply_delete(state, payload)  # type: ignore[arg-type]
        else:  # pragma: no cover - internal invariant
            raise SessionError(f"Unknown mutation op '{op}'")
        state.journal.append((seq, op, payload))
        if bump_version:
            state.version += 1

    def _apply_upsert(
        self, state: LiveDatasetState, images: "Iterable[SyntheticImage]"
    ) -> None:
        assert state.base_index is not None
        embedding = state.base_index.embedding
        n_base = len(state.base_index.store)
        for image in images:
            old = state.image_vector_ids.pop(image.image_id, None)
            if old is not None:
                state.tombstoned.update(old)
                state.images.pop(image.image_id, None)
            ids: "list[int]" = []
            for box, scale_level in generate_patches(
                image.width, image.height, state.config.multiscale
            ):
                vector_id = n_base + len(state.delta_records)
                state.delta_vectors.append(embedding.embed_region(image, box))
                state.delta_records.append(
                    VectorRecord(
                        vector_id=vector_id,
                        image_id=image.image_id,
                        box=box,
                        scale_level=scale_level,
                    )
                )
                ids.append(vector_id)
            # Re-inserted at the end of both ordered maps: the canonical
            # position a from-scratch rebuild would give the image.
            state.images[image.image_id] = image
            state.image_vector_ids[image.image_id] = tuple(ids)

    def _apply_delete(
        self, state: LiveDatasetState, image_ids: "Iterable[int]"
    ) -> None:
        for image_id in image_ids:
            old = state.image_vector_ids.pop(image_id, None)
            if old is None:
                continue  # replay of a delete whose target a merge removed
            state.tombstoned.update(old)
            state.images.pop(image_id, None)

    def _publish_mutation(self, state: LiveDatasetState) -> None:
        """Rebuild the live view, swap it in, and persist the manifest."""
        state.generation += 1
        index = self._build_live_index(state)
        self._swap_current(state, index)
        state.retain(index)
        self._persist_manifest(state)

    def _build_live_index(self, state: LiveDatasetState) -> SeeSawIndex:
        """The delta-over-base view of the state's current logical corpus."""
        assert state.base_index is not None
        base = state.base_index
        if not state.has_delta:
            return base
        if state.delta_vectors:
            delta_matrix = np.stack(state.delta_vectors)
        else:
            delta_matrix = np.zeros((0, base.store.dim), dtype=base.store.compute_dtype)
        total = len(base.store) + len(state.delta_records)
        tombstones = np.zeros(total, dtype=bool)
        if state.tombstoned:
            tombstones[
                np.fromiter(state.tombstoned, dtype=np.int64, count=len(state.tombstoned))
            ] = True
        store = DeltaVectorStore(
            base.store, delta_matrix, list(state.delta_records), tombstones
        )
        report = IndexBuildReport(
            dataset_name=state.name,
            image_count=len(state.images),
            vector_count=len(store),
            embedding_seconds=0.0,
            store_seconds=0.0,
            graph_seconds=0.0,
            multiscale=state.config.multiscale.enabled,
        )
        # No kNN graph / DB-alignment matrix over the live view: both are
        # merge-time artifacts (the delta generation would need them over a
        # different row space every mutation).  The search method degrades
        # gracefully — alignment resumes on the next sealed generation.
        return SeeSawIndex(
            dataset=state.merged_dataset(),
            embedding=base.embedding,
            store=store,
            image_vector_ids=dict(state.image_vector_ids),
            knn_graph=None,
            db_matrix=None,
            config=state.config,
            build_report=report,
        )

    def _swap_current(self, state: LiveDatasetState, index: SeeSawIndex) -> None:
        """Atomically point new lookups at ``index`` (old sessions unaffected)."""
        index.engine  # warm before anything can route to it
        state.current = index
        service = self.service
        service._indexes[(state.name, True)] = index
        service._datasets[state.name] = (index.dataset, index.embedding)
        # The coarse (multiscale=False) index, if built, covers the previous
        # corpus; drop it so the next coarse session rebuilds from the
        # current one.
        service._indexes.pop((state.name, False), None)

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def force_merge(self, name: str) -> "dict[str, object]":
        """Synchronously compact ``name``'s delta into a new sealed segment."""
        self._check_live_enabled()
        state = self.state_for(name)
        with state.lock:
            self._ensure_base(state)
        self.merger.merge(state)
        return self.manifest(state)

    def close(self) -> None:
        """Wait for background merges to finish (test/shutdown hygiene)."""
        self.merger.join()
