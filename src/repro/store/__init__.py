"""Index persistence: serialize built indexes and cache them on disk (§2.4).

Preprocessing is the expensive, once-per-dataset half of SeeSaw's deployment;
this package makes its outputs durable so a service restart loads them from
disk instead of re-embedding every image.
"""

from repro.store.cache import IndexCache
from repro.store.hashing import index_cache_key
from repro.store.serialize import load_index, save_index, write_json_atomic

__all__ = [
    "IndexCache",
    "index_cache_key",
    "load_index",
    "save_index",
    "write_json_atomic",
]
