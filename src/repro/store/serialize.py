"""Serialize a built :class:`SeeSawIndex` to disk and load it back.

The expensive preprocessing outputs — patch vectors, kNN graph, DB-alignment
matrix — are written as raw ``.npy`` artifacts (one file per array, the
default ``arrays_format="npy"``), which :func:`load_index` can open with
``mmap_mode="r"``: a cold start then *maps* the arrays instead of
decompressing them into a private copy, and the vector store adopts the
mapping zero-copy (its construction keeps read-only input as-is — its one
sequential unit-norm validation pass reads the pages through the OS page
cache, so a restart on a warm machine touches no disk at all, and the
mapped corpus stays evictable and shared across server processes).
The previous single compressed ``arrays.npz`` layout remains fully readable
— and writable via ``arrays_format="npz"`` — for existing cache directories.

Everything structural (records, image→vector mapping, configuration, build
report) goes into a JSON sidecar.  The dataset and embedding model
themselves are *not* serialized: they are cheap to recreate
deterministically and the loader receives live instances, which keeps the
on-disk format small and free of pickled code.  Arrays are stored in the
store's compute dtype, so a float32 index is both half the bytes on disk
and zero-copy at load.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.config import SeeSawConfig
from repro.core.indexing import IndexBuildReport, SeeSawIndex
from repro.data.dataset import ImageDataset
from repro.data.geometry import BoundingBox
from repro.embedding.base import EmbeddingModel
from repro.exceptions import StoreError
from repro.knng.graph import KnnGraph
from repro.store.hashing import FORMAT_VERSION
from repro.utils.linalg import assert_no_copy
from repro.vectorstore.base import VectorRecord, VectorStore
from repro.vectorstore.exact import ExactVectorStore
from repro.vectorstore.forest import RandomProjectionForest
from repro.vectorstore.graph import GraphANNVectorStore
from repro.vectorstore.quantized import QuantizedVectorStore
from repro.vectorstore.sharded import ShardedVectorStore

ARRAYS_FILE = "arrays.npz"
META_FILE = "index.json"

ARRAY_NAMES = (
    "vectors",
    "knn_neighbor_ids",
    "knn_neighbor_weights",
    "db_matrix",
    "graph_offsets",
    "graph_neighbors",
    "graph_entries",
)
"""The array artifacts an entry may hold, one ``<name>.npy`` file each in the
raw layout (``vectors`` is always present, the rest are optional; the
``graph_*`` adjacency triple is written only by ``store_kind="graph"``
entries, and pre-graph entries without them load unchanged)."""


def write_json_atomic(path: "str | os.PathLike[str]", payload: object) -> Path:
    """Write ``payload`` as canonical JSON with crash-safe durability.

    The registry's manifests are the pointers that make a dataset version
    real: a crash mid-publish must leave either the old manifest or the new
    one, never a truncated file, and the surviving file must actually be on
    the platter.  Three steps buy that: the JSON is written to a unique
    sibling temp file, ``fsync``-ed so the *content* is durable before any
    name points at it, then moved over ``path`` with atomic ``os.replace``;
    finally the parent directory is ``fsync``-ed so the rename itself
    survives power loss.  Readers concurrently opening ``path`` see the old
    or the new bytes, never a mix.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(prefix=f".{target.name}.", dir=target.parent)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.remove(tmp_name)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(target.parent, os.O_RDONLY)
    except OSError:
        return target  # platform without directory fds; rename is still atomic
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return target


def _flat_store(store: VectorStore) -> VectorStore:
    """The store whose kind/parameters describe the serialized artifacts.

    Sharding is a runtime topology, not part of the on-disk format: a
    sharded store serializes as its inner kind (the full vector matrix lives
    on the wrapper already) and the service re-applies the configured shard
    count after loading.
    """
    if isinstance(store, ShardedVectorStore):
        return store.shard_example
    return store


def _store_kind(store: VectorStore) -> str:
    store = _flat_store(store)
    if isinstance(store, RandomProjectionForest):
        return "forest"
    if isinstance(store, GraphANNVectorStore):
        return "graph"
    if isinstance(store, QuantizedVectorStore):
        return "quantized"
    if isinstance(store, ExactVectorStore):
        return "exact"
    raise StoreError(f"Cannot serialize vector store of type {type(store).__name__}")


def save_index(
    index: SeeSawIndex,
    directory: "str | os.PathLike[str]",
    arrays_format: str = "npy",
) -> Path:
    """Write ``index`` under ``directory`` (created if missing).

    ``arrays_format`` selects the array layout: ``"npy"`` (default) writes
    one raw ``<name>.npy`` per array so the loader can memory-map them;
    ``"npz"`` writes the legacy single compressed ``arrays.npz`` (kept for
    size-sensitive archival and for exercising the back-compat read path).

    The write is atomic at the directory level: files are assembled in a
    temporary sibling directory first and moved into place with ``os.replace``
    so a concurrent reader never observes a half-written entry.
    """
    if arrays_format not in ("npy", "npz"):
        raise StoreError(f"Unknown arrays format '{arrays_format}'")
    target = Path(directory)
    target.parent.mkdir(parents=True, exist_ok=True)
    staging = Path(tempfile.mkdtemp(prefix=".staging-", dir=target.parent))
    try:
        kind = _store_kind(index.store)
        arrays: dict[str, np.ndarray] = {"vectors": np.asarray(index.store.vectors)}
        if index.knn_graph is not None:
            arrays["knn_neighbor_ids"] = index.knn_graph.neighbor_ids
            arrays["knn_neighbor_weights"] = index.knn_graph.neighbor_weights
        if index.db_matrix is not None:
            arrays["db_matrix"] = index.db_matrix
        if kind == "graph" and not isinstance(index.store, ShardedVectorStore):
            # The flat adjacency is the expensive build output, persisted so
            # a cold start memory-maps it like the vectors.  A *sharded*
            # graph store only holds shard-local adjacencies (wrong id
            # space for the flat artifact), so those entries persist the
            # parameters alone and the loader rebuilds the flat graph.
            store = index.store
            assert isinstance(store, GraphANNVectorStore)
            arrays["graph_offsets"] = np.asarray(store.graph_offsets)
            arrays["graph_neighbors"] = np.asarray(store.graph_neighbors)
            arrays["graph_entries"] = np.asarray(store.graph_entries)
        if arrays_format == "npy":
            for name, array in arrays.items():
                np.save(staging / f"{name}.npy", array, allow_pickle=False)
        else:
            np.savez_compressed(staging / ARRAYS_FILE, **arrays)

        report = index.build_report
        meta: dict[str, object] = {
            "format_version": FORMAT_VERSION,
            "arrays_format": arrays_format,
            "dataset_name": index.dataset.name,
            "embedding_dim": index.embedding.dim,
            "store_kind": kind,
            "config": index.config.to_dict(),
            "records": [
                [
                    record.image_id,
                    record.box.x,
                    record.box.y,
                    record.box.width,
                    record.box.height,
                    record.scale_level,
                ]
                for record in index.store.records
            ],
            # A list of pairs, not an object: JSON objects stringify the keys
            # and lose the image ordering coarse_vector_ids() relies on.
            "image_vector_ids": [
                [image_id, list(index.vector_ids_for_image(image_id))]
                for image_id in index.image_ids
            ],
            "knn_sigma": None if index.knn_graph is None else index.knn_graph.sigma,
            "build_report": {
                "dataset_name": report.dataset_name,
                "image_count": report.image_count,
                "vector_count": report.vector_count,
                "embedding_seconds": report.embedding_seconds,
                "store_seconds": report.store_seconds,
                "graph_seconds": report.graph_seconds,
                "multiscale": report.multiscale,
            },
        }
        if kind == "forest":
            store = _flat_store(index.store)
            assert isinstance(store, RandomProjectionForest)
            meta["forest"] = {
                "tree_count": store.tree_count,
                "leaf_size": store.leaf_size,
                "seed": store.seed,
            }
        elif kind == "quantized":
            store = _flat_store(index.store)
            assert isinstance(store, QuantizedVectorStore)
            # Only the knob is persisted: the int8 codes are derived from
            # the float vectors deterministically and cheaply at load time.
            meta["quantized"] = {"rerank_factor": store.rerank_factor}
        elif kind == "graph":
            store = _flat_store(index.store)
            assert isinstance(store, GraphANNVectorStore)
            meta["graph"] = {
                "graph_degree": store.graph_degree,
                "ef": store.ef,
                "seed": store.seed,
            }
        write_json_atomic(staging / META_FILE, meta)

        if (target / META_FILE).exists():
            # Another writer finished first; its entry is equivalent by key.
            shutil.rmtree(staging, ignore_errors=True)
        else:
            if target.exists():
                # Leftover from an interrupted write; clear it out of the way.
                shutil.rmtree(target, ignore_errors=True)
            try:
                os.replace(staging, target)
            except OSError:
                if not (target / META_FILE).exists():
                    raise
                shutil.rmtree(staging, ignore_errors=True)
        return target
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise


def _load_arrays(
    source: Path, meta: "dict[str, object]", mmap: bool
) -> "dict[str, np.ndarray]":
    """The entry's arrays, memory-mapped when the layout and caller allow.

    The raw ``.npy`` layout opens each file with ``mmap_mode="r"`` (nothing
    is decompressed or copied into private memory; reads go through the OS
    page cache); the legacy compressed ``.npz`` layout has no mappable
    representation and always decompresses into fresh arrays.
    """
    arrays_format = meta.get("arrays_format", "npz")
    if arrays_format == "npy":
        loaded: "dict[str, np.ndarray]" = {}
        for name in ARRAY_NAMES:
            path = source / f"{name}.npy"
            if not path.exists():
                continue
            try:
                loaded[name] = np.load(
                    path, mmap_mode="r" if mmap else None, allow_pickle=False
                )
            except (OSError, ValueError) as exc:
                raise StoreError(f"Corrupt array artifact at '{path}': {exc}") from exc
        if "vectors" not in loaded:
            raise StoreError(f"No serialized index at '{source}'")
        return loaded
    arrays_path = source / ARRAYS_FILE
    if not arrays_path.exists():
        raise StoreError(f"No serialized index at '{source}'")
    with np.load(arrays_path) as arrays:
        return {name: arrays[name] for name in ARRAY_NAMES if name in arrays}


def load_index(
    directory: "str | os.PathLike[str]",
    dataset: ImageDataset,
    embedding: EmbeddingModel,
    mmap: bool = True,
) -> SeeSawIndex:
    """Reconstruct a :class:`SeeSawIndex` previously written by :func:`save_index`.

    ``dataset`` and ``embedding`` must be the live instances the index was
    built from (the cache key guarantees this when loading through
    :class:`repro.store.cache.IndexCache`); basic identity checks guard
    against loading mismatched artifacts directly.  With ``mmap`` true (the
    default) raw-layout entries are memory-mapped read-only and the vector
    store adopts the mapping zero-copy; pass false to force materialised
    arrays (e.g. when the cache directory may be deleted while in use).
    """
    source = Path(directory)
    meta_path = source / META_FILE
    if not meta_path.exists():
        raise StoreError(f"No serialized index at '{source}'")
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise StoreError(f"Corrupt index metadata at '{meta_path}': {exc}") from exc
    if meta.get("format_version") != FORMAT_VERSION:
        raise StoreError(
            f"Index at '{source}' has format version {meta.get('format_version')}, "
            f"expected {FORMAT_VERSION}"
        )
    if meta["dataset_name"] != dataset.name:
        raise StoreError(
            f"Index at '{source}' was built for dataset '{meta['dataset_name']}', "
            f"not '{dataset.name}'"
        )
    if meta["embedding_dim"] != embedding.dim:
        raise StoreError(
            f"Index at '{source}' stores {meta['embedding_dim']}-d vectors but the "
            f"embedding model produces {embedding.dim}-d vectors"
        )

    arrays = _load_arrays(source, meta, mmap)
    vectors = arrays["vectors"]
    neighbor_ids = arrays.get("knn_neighbor_ids")
    neighbor_weights = arrays.get("knn_neighbor_weights")
    db_matrix = arrays.get("db_matrix")

    records = [
        VectorRecord(
            vector_id=position,
            image_id=int(image_id),
            box=BoundingBox(float(x), float(y), float(width), float(height)),
            scale_level=int(scale_level),
        )
        for position, (image_id, x, y, width, height, scale_level) in enumerate(
            meta["records"]
        )
    ]
    if len(records) != vectors.shape[0]:
        raise StoreError(
            f"Index at '{source}' has {len(records)} records for "
            f"{vectors.shape[0]} vectors"
        )

    config = SeeSawConfig.from_dict(meta["config"])
    kind = meta["store_kind"]
    if kind == "exact":
        store: VectorStore = ExactVectorStore(vectors, records)
    elif kind == "quantized":
        quantized_meta = meta.get("quantized", {})
        store = QuantizedVectorStore(
            vectors,
            records,
            rerank_factor=int(quantized_meta.get("rerank_factor", 4)),
        )
    elif kind == "graph":
        graph_meta = meta.get("graph", {})
        adjacency = None
        if (
            "graph_offsets" in arrays
            and "graph_neighbors" in arrays
            and "graph_entries" in arrays
        ):
            # The persisted adjacency is adopted as-is (memory-mapped in the
            # raw layout) instead of being rebuilt; entries written from a
            # sharded graph store carry no flat adjacency and rebuild here.
            adjacency = (
                arrays["graph_offsets"],
                arrays["graph_neighbors"],
                arrays["graph_entries"],
            )
        store = GraphANNVectorStore(
            vectors,
            records,
            graph_degree=int(graph_meta.get("graph_degree", 16)),
            ef=int(graph_meta.get("ef", 64)),
            seed=int(graph_meta.get("seed", config.seed)),
            adjacency=adjacency,
        )
        if adjacency is not None and mmap and isinstance(adjacency[1], np.memmap):
            try:
                assert_no_copy(adjacency[1], store.graph_neighbors)
            except AssertionError as exc:
                raise StoreError(
                    f"Index at '{source}' failed zero-copy adjacency adoption: {exc}"
                ) from exc
    elif kind == "forest":
        forest_meta = meta.get("forest", {})
        store = RandomProjectionForest(
            vectors,
            records,
            tree_count=int(forest_meta.get("tree_count", 8)),
            leaf_size=int(forest_meta.get("leaf_size", 32)),
            seed=int(forest_meta.get("seed", config.seed)),
        )
    else:
        raise StoreError(f"Index at '{source}' has unknown store kind '{kind}'")
    if mmap and isinstance(vectors, np.memmap):
        # The zero-copy cold-start guarantee, enforced at runtime: the store
        # must have adopted the read-only mapping, not silently copied it.
        # save_index only ever writes canonical (unit or zero) rows, so a
        # copy here means the artifact was tampered with or corrupted —
        # raised as StoreError so IndexCache treats the entry as a miss
        # (evict + rebuild) instead of wedging every future cold start.
        try:
            assert_no_copy(vectors, store.vectors)
        except AssertionError as exc:
            raise StoreError(
                f"Index at '{source}' holds non-canonical vectors (the store "
                f"renormalised them instead of adopting the mapping): {exc}"
            ) from exc

    knn_graph = None
    if neighbor_ids is not None and neighbor_weights is not None:
        knn_graph = KnnGraph(
            neighbor_ids=neighbor_ids,
            neighbor_weights=neighbor_weights,
            sigma=float(meta["knn_sigma"]),
        )

    report_meta = meta["build_report"]
    report = IndexBuildReport(
        dataset_name=report_meta["dataset_name"],
        image_count=int(report_meta["image_count"]),
        vector_count=int(report_meta["vector_count"]),
        embedding_seconds=float(report_meta["embedding_seconds"]),
        store_seconds=float(report_meta["store_seconds"]),
        graph_seconds=float(report_meta["graph_seconds"]),
        multiscale=bool(report_meta["multiscale"]),
    )
    return SeeSawIndex(
        dataset=dataset,
        embedding=embedding,
        store=store,
        image_vector_ids={
            int(image_id): tuple(vector_ids)
            for image_id, vector_ids in meta["image_vector_ids"]
        },
        knn_graph=knn_graph,
        db_matrix=db_matrix,
        config=config,
        build_report=report,
    )

