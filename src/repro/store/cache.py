"""On-disk index cache: build once, cold-start in milliseconds afterwards.

The cache maps a content hash of (dataset, embedding, config, store kind) to
a directory holding the serialized index.  A second process pointed at the
same cache directory loads the preprocessed artifacts from disk instead of
re-embedding the dataset, which is what lets the HTTP service restart
quickly (ISSUE: service cold-start).

Entries load memory-mapped by default (see :mod:`repro.store.serialize`),
and misses are **single-flighted across processes**: the first builder
claims an atomic ``<key>.building`` sentinel next to the entry, every other
process (or thread) polls for the finished entry instead of paying the same
build, and a sentinel left behind by a crashed builder is stolen once it
goes stale.
"""

from __future__ import annotations

import os
import shutil
import time
import uuid
from pathlib import Path
from typing import Iterable

from repro.config import SeeSawConfig
from repro.core.indexing import SeeSawIndex
from repro.data.dataset import ImageDataset
from repro.embedding.base import EmbeddingModel
from repro.exceptions import StoreError
from repro.store.hashing import index_cache_key
from repro.store.serialize import META_FILE, load_index, save_index


class IndexCache:
    """A directory of serialized indexes keyed by build-content hash."""

    def __init__(
        self,
        cache_dir: "str | os.PathLike[str]",
        mmap: bool = True,
        lock_poll_seconds: float = 0.05,
        lock_stale_seconds: float = 600.0,
        max_entries: "int | None" = None,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.mmap = bool(mmap)
        self.lock_poll_seconds = float(lock_poll_seconds)
        self.lock_stale_seconds = float(lock_stale_seconds)
        if max_entries is not None and int(max_entries) < 1:
            raise StoreError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = None if max_entries is None else int(max_entries)

    def key(
        self,
        dataset: ImageDataset,
        embedding: EmbeddingModel,
        config: SeeSawConfig,
        store_kind: str = "exact",
    ) -> str:
        """The content hash identifying one buildable index."""
        return index_cache_key(dataset, embedding, config, store_kind)

    def path_for(self, key: str) -> Path:
        """The directory a given key's artifacts live in."""
        return self.cache_dir / key[:32]

    def contains(self, key: str) -> bool:
        """True when a complete entry for ``key`` is on disk."""
        return (self.path_for(key) / META_FILE).exists()

    def load(
        self, key: str, dataset: ImageDataset, embedding: EmbeddingModel
    ) -> "SeeSawIndex | None":
        """Load the entry for ``key``, or ``None`` when absent or unreadable.

        A corrupt entry is treated as a miss (and removed) so one bad write
        can never permanently wedge the service start-up path.
        """
        if not self.contains(key):
            return None
        path = self.path_for(key)
        try:
            return load_index(path, dataset, embedding, mmap=self.mmap)
        except StoreError:
            self.evict(key)
            return None

    def store(self, key: str, index: SeeSawIndex) -> Path:
        """Serialize ``index`` under ``key`` and return its directory."""
        return save_index(index, self.path_for(key))

    def evict(self, key: str) -> None:
        """Remove the entry for ``key`` if present."""
        shutil.rmtree(self.path_for(key), ignore_errors=True)

    def entries(self) -> "list[Path]":
        """Directories of all complete entries currently in the cache."""
        return sorted(
            child
            for child in self.cache_dir.iterdir()
            if child.is_dir() and (child / META_FILE).exists()
        )

    def sweep(self, pinned: "Iterable[str]" = ()) -> "list[Path]":
        """Bound cache growth: evict LRU entries and clean orphaned sentinels.

        Live-dataset merges create a fresh entry per generation, which would
        grow the directory forever.  When ``max_entries`` is set, complete
        entries beyond it are evicted oldest-first (by entry mtime — touched
        at write time, so recently published generations survive) — except
        entries whose key is ``pinned``: a key named by a live registry
        manifest is load-bearing (a process restart must find it) and is
        never evicted, even when that leaves the cache above the bound.

        Independently of any entry bound, ``.building`` and ``.stale-*``
        sentinels older than ``lock_stale_seconds`` are removed: a builder
        that crashed without releasing leaves one behind, and while the
        build path steals them lazily, a cache that is only ever *read*
        afterwards would keep the orphan forever.

        Returns the entry directories that were evicted.
        """
        pinned_dirs = {key[:32] for key in pinned}
        now = time.time()
        for sentinel in list(self.cache_dir.glob("*.building")) + list(
            self.cache_dir.glob("*.stale-*")
        ):
            try:
                if now - sentinel.stat().st_mtime > self.lock_stale_seconds:
                    os.remove(sentinel)
            except (FileNotFoundError, OSError):
                continue
        evicted: "list[Path]" = []
        if self.max_entries is None:
            return evicted
        entries = self.entries()
        if len(entries) <= self.max_entries:
            return evicted
        def entry_mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except (FileNotFoundError, OSError):
                return 0.0
        for entry in sorted(entries, key=entry_mtime):
            if len(entries) - len(evicted) <= self.max_entries:
                break
            if entry.name in pinned_dirs:
                continue
            shutil.rmtree(entry, ignore_errors=True)
            evicted.append(entry)
        return evicted

    # ------------------------------------------------------------------
    # cross-process build single-flighting
    # ------------------------------------------------------------------
    def build_lock_path(self, key: str) -> Path:
        """The sentinel file claiming the build of one entry."""
        return self.cache_dir / f"{key[:32]}.building"

    def _try_acquire_build_lock(self, key: str) -> "str | None":
        """Atomically claim the build sentinel (``O_CREAT | O_EXCL``).

        Returns the claim's unique ownership token (``None`` when another
        holder owns the sentinel).  The token travels with the acquiring
        caller — not through shared instance state — so two threads of one
        cache racing a stale steal can never confuse their claims.
        """
        token = f"{os.getpid()}-{uuid.uuid4().hex}"
        try:
            fd = os.open(
                self.build_lock_path(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return None
        try:
            os.write(fd, token.encode("ascii"))
        finally:
            os.close(fd)
        return token

    def _release_build_lock(self, key: str, token: str) -> None:
        """Remove the sentinel, but only if ``token`` still owns it.

        A builder that outlived the staleness window and lost its sentinel
        to a thief sees a foreign token and leaves the thief's claim alone.
        (The read-then-remove pair is not atomic; the remaining window is a
        steal landing in the microseconds between them, which requires the
        sentinel to have *already* been stale — best-effort by design.)
        """
        path = self.build_lock_path(key)
        try:
            if path.read_text(encoding="ascii") != token:
                return  # stolen as stale; the current holder owns it now
            os.remove(path)
        except (FileNotFoundError, OSError):
            pass

    def _lock_is_stale(self, key: str) -> bool:
        """True when the sentinel's holder has apparently died mid-build."""
        try:
            age = time.time() - self.build_lock_path(key).stat().st_mtime
        except FileNotFoundError:
            return False
        return age > self.lock_stale_seconds

    def _steal_stale_lock(self, key: str) -> None:
        """Remove a stale sentinel atomically (at most one stealer wins).

        The sentinel is first renamed to a unique path — ``os.rename`` is
        atomic, so two waiters racing the steal cannot both remove the same
        claim — and its age is then *re-checked on the renamed file*: a
        fresh claim that slipped in between the caller's staleness check
        and the rename is put back instead of deleted.  Best effort by
        construction: the narrow restore window can at worst admit one
        duplicate build (entry writes are idempotent by key), never a wedge.
        """
        lock_path = self.build_lock_path(key)
        doomed = lock_path.with_suffix(f".stale-{uuid.uuid4().hex}")
        try:
            os.rename(lock_path, doomed)
        except (FileNotFoundError, OSError):
            return  # another stealer won, or the holder released
        try:
            still_stale = (
                time.time() - doomed.stat().st_mtime > self.lock_stale_seconds
            )
        except (FileNotFoundError, OSError):
            still_stale = True
        if not still_stale:
            try:
                os.rename(doomed, lock_path)  # grabbed a fresh claim; restore it
                return
            except OSError:
                pass
        try:
            os.remove(doomed)
        except (FileNotFoundError, OSError):
            pass

    def load_or_build(
        self,
        dataset: ImageDataset,
        embedding: EmbeddingModel,
        config: "SeeSawConfig | None" = None,
        store_kind: str = "exact",
        **build_kwargs: object,
    ) -> "tuple[SeeSawIndex, bool]":
        """Return ``(index, was_cached)``, building and persisting on a miss.

        Builds are single-flighted across every process (and thread) sharing
        this cache directory: a miss first claims the entry's atomic
        ``.building`` sentinel, and losers poll — re-checking for the
        winner's finished entry each round — instead of duplicating the
        build.  A sentinel older than ``lock_stale_seconds`` (a builder that
        crashed without releasing) is stolen — atomically, and ownership-
        checked on release so a slow builder outliving its sentinel can
        never delete the thief's claim — and the claim retried, so a dead
        process can never wedge every future cold start.  A build genuinely
        slower than the staleness window may be duplicated once; that is
        the recovery trade-off, not a correctness loss (entry writes are
        atomic and idempotent by key).
        """
        config = config or SeeSawConfig()
        key = self.key(dataset, embedding, config, store_kind)
        while True:
            cached = self.load(key, dataset, embedding)
            if cached is not None:
                return cached, True
            token = self._try_acquire_build_lock(key)
            if token is not None:
                try:
                    # Double-check under the lock: the previous holder may
                    # have finished the entry between our miss and our claim.
                    cached = self.load(key, dataset, embedding)
                    if cached is not None:
                        return cached, True
                    index = SeeSawIndex.build(
                        dataset, embedding, config, store_kind=store_kind, **build_kwargs
                    )
                    self.store(key, index)
                    return index, False
                finally:
                    self._release_build_lock(key, token)
            if self._lock_is_stale(key):
                self._steal_stale_lock(key)
                continue
            time.sleep(self.lock_poll_seconds)
