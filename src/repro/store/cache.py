"""On-disk index cache: build once, cold-start in milliseconds afterwards.

The cache maps a content hash of (dataset, embedding, config, store kind) to
a directory holding the serialized index.  A second process pointed at the
same cache directory loads the preprocessed artifacts from disk instead of
re-embedding the dataset, which is what lets the HTTP service restart
quickly (ISSUE: service cold-start).
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

from repro.config import SeeSawConfig
from repro.core.indexing import SeeSawIndex
from repro.data.dataset import ImageDataset
from repro.embedding.base import EmbeddingModel
from repro.exceptions import StoreError
from repro.store.hashing import index_cache_key
from repro.store.serialize import META_FILE, load_index, save_index


class IndexCache:
    """A directory of serialized indexes keyed by build-content hash."""

    def __init__(self, cache_dir: "str | os.PathLike[str]") -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    def key(
        self,
        dataset: ImageDataset,
        embedding: EmbeddingModel,
        config: SeeSawConfig,
        store_kind: str = "exact",
    ) -> str:
        """The content hash identifying one buildable index."""
        return index_cache_key(dataset, embedding, config, store_kind)

    def path_for(self, key: str) -> Path:
        """The directory a given key's artifacts live in."""
        return self.cache_dir / key[:32]

    def contains(self, key: str) -> bool:
        """True when a complete entry for ``key`` is on disk."""
        return (self.path_for(key) / META_FILE).exists()

    def load(
        self, key: str, dataset: ImageDataset, embedding: EmbeddingModel
    ) -> "SeeSawIndex | None":
        """Load the entry for ``key``, or ``None`` when absent or unreadable.

        A corrupt entry is treated as a miss (and removed) so one bad write
        can never permanently wedge the service start-up path.
        """
        if not self.contains(key):
            return None
        path = self.path_for(key)
        try:
            return load_index(path, dataset, embedding)
        except StoreError:
            self.evict(key)
            return None

    def store(self, key: str, index: SeeSawIndex) -> Path:
        """Serialize ``index`` under ``key`` and return its directory."""
        return save_index(index, self.path_for(key))

    def evict(self, key: str) -> None:
        """Remove the entry for ``key`` if present."""
        shutil.rmtree(self.path_for(key), ignore_errors=True)

    def entries(self) -> "list[Path]":
        """Directories of all complete entries currently in the cache."""
        return sorted(
            child
            for child in self.cache_dir.iterdir()
            if child.is_dir() and (child / META_FILE).exists()
        )

    def load_or_build(
        self,
        dataset: ImageDataset,
        embedding: EmbeddingModel,
        config: "SeeSawConfig | None" = None,
        store_kind: str = "exact",
        **build_kwargs: object,
    ) -> "tuple[SeeSawIndex, bool]":
        """Return ``(index, was_cached)``, building and persisting on a miss."""
        config = config or SeeSawConfig()
        key = self.key(dataset, embedding, config, store_kind)
        cached = self.load(key, dataset, embedding)
        if cached is not None:
            return cached, True
        index = SeeSawIndex.build(
            dataset, embedding, config, store_kind=store_kind, **build_kwargs
        )
        self.store(key, index)
        return index, False
