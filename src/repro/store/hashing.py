"""Content hashing: a stable key identifying one buildable index.

The cache key must change whenever the built artifacts would change — a
different dataset, a different embedding model, or different preprocessing
configuration — and must stay identical across processes so a second server
start finds the artifacts the first one wrote.  The key is the SHA-256 of a
canonical JSON fingerprint of all three inputs.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.config import SeeSawConfig
from repro.data.dataset import ImageDataset
from repro.embedding.base import EmbeddingModel

FORMAT_VERSION = 1
"""Bumped whenever the on-disk layout changes; part of every cache key so
stale-format entries are simply never matched."""


def dataset_fingerprint(dataset: ImageDataset) -> "dict[str, Any]":
    """A JSON-serializable identity of the dataset content.

    Covers everything the index build reads: image geometry, contexts, and
    the object annotations the synthetic embedding derives vectors from.
    """
    return {
        "name": dataset.name,
        "categories": [
            {
                "name": info.name,
                "alignment_deficit": info.alignment_deficit,
                "locality_noise": info.locality_noise,
                "frequency": info.frequency,
            }
            for info in dataset.categories
        ],
        "images": [
            {
                "id": image.image_id,
                "size": [image.width, image.height],
                "context": image.context,
                "objects": [
                    [
                        instance.category,
                        instance.instance_id,
                        instance.distinctiveness,
                        [
                            instance.box.x,
                            instance.box.y,
                            instance.box.width,
                            instance.box.height,
                        ],
                    ]
                    for instance in image.objects
                ],
            }
            for image in dataset.images
        ],
    }


def config_fingerprint(config: SeeSawConfig) -> "dict[str, Any]":
    """The configuration sections that affect what gets built.

    Runtime-only knobs (loss weights, optimizer settings, task cutoffs, the
    cache directory itself) are deliberately excluded: changing them must not
    invalidate the preprocessed artifacts.
    """
    full = config.to_dict()
    fingerprint: "dict[str, Any]" = {
        "embedding_dim": full["embedding_dim"],
        "seed": full["seed"],
        "multiscale": full["multiscale"],
        "knn": full["knn"],
    }
    # The compute dtype changes the serialized artifacts (vectors are stored
    # in it), so non-default tiers get their own entries.  It is added only
    # when non-default so every float64 key — including entries written
    # before the dtype tier existed — keeps matching.  Purely runtime tiers
    # (quantization, sharding, mmap) stay excluded: they are derived from
    # the same on-disk artifacts at load time.
    if full["compute_dtype"] != "float64":
        fingerprint["compute_dtype"] = full["compute_dtype"]
    return fingerprint


def index_cache_key(
    dataset: ImageDataset,
    embedding: EmbeddingModel,
    config: SeeSawConfig,
    store_kind: str = "exact",
) -> str:
    """The cache key (hex digest) for one (dataset, embedding, config) build."""
    config_section = config_fingerprint(config)
    if store_kind == "quantized":
        # Only the quantized kind persists its re-rank factor in the entry
        # (load_index rebuilds the store with it), so only there does the
        # knob change the artifact and belong in the key.  For every other
        # kind — including the service's runtime quantized *tier* over an
        # exact entry — it stays a runtime knob.
        config_section["quantized_rerank_factor"] = config.quantized_rerank_factor
    if store_kind == "graph":
        # The graph kind serializes its adjacency, so the degree shapes the
        # artifact.  ``ann_ef`` stays out: it is a pure search-time knob
        # (the persisted default is advisory), and the runtime ANN *tier*
        # over an exact entry keeps both knobs out of the key entirely.
        config_section["ann_graph_degree"] = config.ann_graph_degree
    fingerprint = {
        "format": FORMAT_VERSION,
        "store_kind": store_kind,
        "dataset": dataset_fingerprint(dataset),
        "embedding": embedding.fingerprint(),
        "config": config_section,
    }
    canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
