"""Array-native query engine: the columnar per-round hot path.

See :mod:`repro.engine.engine` for the single-session design and
:mod:`repro.engine.batch` for the fused multi-session variant.  The legacy
object-based reference path lives in :mod:`repro.engine.legacy` (imported
explicitly by the parity tests and benchmarks, never by production code).
"""

from repro.engine.batch import BatchQueryEngine
from repro.engine.engine import QueryEngine
from repro.engine.mask import SeenMask
from repro.engine.segments import ImageSegments

__all__ = ["BatchQueryEngine", "ImageSegments", "QueryEngine", "SeenMask"]
