"""Array-native query engine: the columnar per-round hot path.

See :mod:`repro.engine.engine` for the design.  The legacy object-based
reference path lives in :mod:`repro.engine.legacy` (imported explicitly by
the parity tests and benchmarks, never by production code).
"""

from repro.engine.engine import QueryEngine
from repro.engine.mask import SeenMask
from repro.engine.segments import ImageSegments

__all__ = ["ImageSegments", "QueryEngine", "SeenMask"]
