"""The array-native query engine: the per-round hot path as columnar kernels.

Every interactive round boils down to the same three steps: score vectors
against a query, drop what the user has already seen, and group patch scores
into image scores.  The legacy path did this with Python sets, one
``SearchHit`` object per patch hit, and a retry-doubling loop; the engine
does it with flat arrays:

* scores are masked once through a persistent :class:`~repro.engine.mask.SeenMask`;
* patch scores max-pool into image scores with a single
  ``np.maximum.reduceat`` over the CSR segments;
* the top images fall out of one ``argpartition`` — no per-hit objects and
  no retries for exhaustive stores.

Approximate stores (the random-projection forest) cannot be scanned
exhaustively, so for them the engine drives the store's masked
``search_arrays`` candidate API with the same widening schedule the legacy
path used, but entirely in arrays.

The engine is deliberately ignorant of sessions, HTTP, and result objects:
it takes arrays and masks, and returns aligned ``(image_ids, scores,
vector_ids)`` columns.  ``SearchContext`` adapts those to the public
``ImageResult`` API.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.engine.mask import SeenMask
from repro.engine.segments import ImageSegments
from repro.exceptions import SessionError, VectorStoreError
from repro.obs import trace_span
from repro.vectorstore.base import VectorStore


class QueryEngine:
    """Columnar top-k / bulk-scoring kernels over one index's store."""

    __slots__ = ("store", "segments")

    def __init__(self, store: VectorStore, segments: ImageSegments) -> None:
        if len(store) != segments.vector_count:
            raise VectorStoreError(
                f"store holds {len(store)} vectors but the segment layout covers "
                f"{segments.vector_count}"
            )
        self.store = store
        self.segments = segments

    # ------------------------------------------------------------------
    # masks
    # ------------------------------------------------------------------
    def new_mask(self) -> SeenMask:
        """A fresh all-unseen mask for a new session."""
        return SeenMask(self.segments)

    def mask_for_images(self, image_ids: Iterable[int]) -> SeenMask:
        """An ephemeral mask marking exactly the given image ids seen."""
        mask = SeenMask(self.segments)
        mask.mark_images(image_ids)
        return mask

    # ------------------------------------------------------------------
    # bulk scoring
    # ------------------------------------------------------------------
    def score_all_images(self, query: np.ndarray) -> np.ndarray:
        """Max-pooled per-image scores, aligned with ``segments.image_ids``.

        One matrix-vector product and one ``reduceat`` — the linear-scan
        cost the global baselines (ENS, label propagation) pay per round.
        """
        return self.segments.pool_max(self.store.score_all(query))

    # ------------------------------------------------------------------
    # top-k selection
    # ------------------------------------------------------------------
    def top_unseen_arrays(
        self,
        query: np.ndarray,
        count: int,
        mask: "SeenMask | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """The ``count`` best unseen images for ``query``.

        Returns aligned ``(image_ids, image_scores, best_vector_ids)``
        columns, best first.  Fewer than ``count`` rows come back only when
        the unseen pool is exhausted.
        """
        if count < 1:
            raise SessionError("count must be >= 1")
        if self.store.exhaustive:
            with trace_span("score"):
                vector_scores = self.store.score_all(query)
            return self._select_from_vector_scores(vector_scores, count, mask)
        return self._top_unseen_candidates(query, count, mask)

    def top_images_from_vector_scores(
        self,
        vector_scores: np.ndarray,
        count: int,
        mask: "SeenMask | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Top unseen images under externally computed per-vector scores.

        Used by methods that rank with something other than an inner product
        (label propagation ranks by propagated soft labels).  ``vector_scores``
        is not modified.
        """
        if count < 1:
            raise SessionError("count must be >= 1")
        return self._select_from_vector_scores(np.asarray(vector_scores), count, mask)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def _select_from_vector_scores(
        self,
        vector_scores: np.ndarray,
        count: int,
        mask: "SeenMask | None",
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        with trace_span("pool"):
            image_scores = self.segments.pool_max(vector_scores)  # fresh array
        return self.select_pooled(image_scores, vector_scores, count, mask)

    def select_pooled(
        self,
        image_scores: np.ndarray,
        vector_scores: np.ndarray,
        count: int,
        mask: "SeenMask | None",
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Top-``count`` selection over already-pooled per-image scores.

        ``image_scores`` is mutated in place (mask application), so callers
        must own it — the batch engine hands in one row of its pooled matrix
        per session, each row consumed exactly once.
        """
        segments = self.segments
        with trace_span("select"):
            if mask is not None and mask.seen_count:
                image_scores[mask.image_seen] = -np.inf
            k = min(count, image_scores.size)
            if k == 0:
                empty = np.zeros(0, dtype=np.int64)
                return empty, np.zeros(0), empty.copy()
            top = np.argpartition(-image_scores, k - 1)[:k]
            # Deterministic ordering: score descending, image row ascending.
            top = top[np.lexsort((top, -image_scores[top]))]
            top = top[np.isfinite(image_scores[top])]
            best_vectors = segments.best_vectors_in_rows(vector_scores, top)
            return segments.image_ids[top], image_scores[top], best_vectors

    def _top_unseen_candidates(
        self,
        query: np.ndarray,
        count: int,
        mask: "SeenMask | None",
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Candidate-store path: masked search with the legacy widening schedule."""
        segments = self.segments
        vector_count = segments.vector_count
        exclude = None
        excluded_vectors = 0
        if mask is not None and mask.seen_count:
            exclude = mask.vector_seen
            excluded_vectors = int(np.count_nonzero(exclude))
        per_image = max(1, round(vector_count / max(1, segments.image_count)))
        k = count * per_image + excluded_vectors
        while True:
            k = min(k, vector_count)
            with trace_span("score"):
                ids, scores = self.store.search_arrays(
                    query, k=k, exclude_mask=exclude
                )
            rows = segments.vector_image_rows[ids]
            covered = rows >= 0
            if not covered.all():
                # Hits from vectors no image segment covers carry a -1 row;
                # dropping them here prevents silently attributing them to
                # an arbitrary image via wrap-around indexing below.
                ids, scores, rows = ids[covered], scores[covered], rows[covered]
            # First occurrence per image, preserving descending-score order.
            _, first_positions = np.unique(rows, return_index=True)
            first_positions.sort()
            if first_positions.size >= count or k >= vector_count:
                chosen = first_positions[:count]
                return segments.image_ids[rows[chosen]], scores[chosen], ids[chosen]
            k *= 2
