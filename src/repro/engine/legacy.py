"""The pre-engine, object-based round hot path, preserved verbatim.

This module keeps the original ``SearchContext`` selection logic alive after
the columnar rewrite: rebuild a vector-id exclusion ``set`` from the shown
images, ask the store for hit objects, and regroup patches into images in a
Python loop with retry-doubling.  It exists for two reasons:

* the parity test suite uses it as the oracle the engine must match
  (identical image ids, ordering, and scores);
* the latency benchmark's legacy-vs-engine rows measure exactly what the
  rewrite bought.

It is not used by any production code path.
"""

from __future__ import annotations

import numpy as np

from repro.core.indexing import SeeSawIndex
from repro.core.interfaces import ImageResult
from repro.exceptions import SessionError
from repro.utils.linalg import ensure_dtype
from repro.vectorstore.exact import ExactVectorStore


def legacy_top_unseen_images(
    index: SeeSawIndex,
    query_vector: np.ndarray,
    count: int,
    excluded_image_ids: "frozenset[int] | set[int]",
) -> "list[ImageResult]":
    """The original object-heavy best-unseen-images selection."""
    if count < 1:
        raise SessionError("count must be >= 1")
    excluded_vectors = index.vector_ids_for_images(excluded_image_ids)
    per_image = max(1, round(index.vector_count / max(1, len(index.image_ids))))
    k = count * per_image + len(excluded_vectors)
    results: list[ImageResult] = []
    while True:
        k = min(k, index.vector_count)
        hits = index.store.search(query_vector, k=k, exclude_vector_ids=excluded_vectors)
        results = []
        seen: set[int] = set()
        for hit in hits:
            image_id = hit.record.image_id
            if image_id in excluded_image_ids or image_id in seen:
                continue
            seen.add(image_id)
            results.append(
                ImageResult(
                    image_id=image_id,
                    score=hit.score,
                    vector_id=hit.vector_id,
                    box=hit.record.box,
                )
            )
            if len(results) >= count:
                return results
        if k >= index.vector_count:
            return results
        k *= 2


def legacy_score_all_images(
    index: SeeSawIndex, query_vector: np.ndarray
) -> "dict[int, float]":
    """The original per-image bulk scoring: one Python-level max per image."""
    store = index.store
    if isinstance(store, ExactVectorStore):
        scores = store.score_all(query_vector)
    else:
        # Convert to the store's compute dtype (not a hard-coded float64
        # round-trip): a query already in that dtype multiplies zero-copy.
        scores = store.vectors @ ensure_dtype(
            np.ravel(query_vector), store.compute_dtype
        )
    image_scores: dict[int, float] = {}
    for image_id in index.image_ids:
        vector_ids = np.asarray(index.vector_ids_for_image(image_id), dtype=np.int64)
        image_scores[image_id] = float(scores[vector_ids].max())
    return image_scores
