"""Persistent per-session exclusion state.

The legacy hot path rebuilt an exclusion ``set`` of vector ids from every
shown image on every round — O(shown x patches-per-image) Python work that
grew with session length.  A :class:`SeenMask` instead keeps two boolean
columns (one over image rows, one over vectors) that the session marks
incrementally as batches are shown: per round the update cost is
O(batch-size) slice assignments, and the engine consumes the masks directly
with vectorized indexing.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.engine.segments import ImageSegments


class SeenMask:
    """Boolean seen/unseen state over one index's images and vectors.

    The public ``image_seen`` / ``vector_seen`` columns are read-only views:
    a session's mask is shared with every method the session drives
    (``SearchContext.mask_for`` hands it out), so state changes must go
    through :meth:`mark_rows` / :meth:`mark_images` — a stray in-place write
    by a caller raises instead of silently corrupting the session.
    """

    __slots__ = (
        "segments",
        "image_seen",
        "vector_seen",
        "_image_seen",
        "_vector_seen",
        "_seen_count",
    )

    def __init__(self, segments: ImageSegments) -> None:
        self.segments = segments
        self._image_seen = np.zeros(segments.image_count, dtype=bool)
        self._vector_seen = np.zeros(segments.vector_count, dtype=bool)
        self.image_seen = self._image_seen.view()
        self.image_seen.setflags(write=False)
        self.vector_seen = self._vector_seen.view()
        self.vector_seen.setflags(write=False)
        self._seen_count = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def seen_count(self) -> int:
        """Number of images marked seen."""
        return self._seen_count

    @property
    def unseen_count(self) -> int:
        """Number of images still unseen."""
        return self.segments.image_count - self._seen_count

    def is_seen(self, image_id: int) -> bool:
        """Whether one image has been marked seen."""
        return bool(self.image_seen[self.segments.row_for_image(image_id)])

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def mark_rows(self, rows: "np.ndarray | Iterable[int]") -> None:
        """Mark image rows (and all their vectors) as seen."""
        rows = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows)
        if rows.size == 0:
            return
        # Dedupe before filtering: a duplicated row in one call must count
        # (and mark) once, or seen_count drifts from the column state.
        rows = np.unique(rows)
        fresh = rows[~self._image_seen[rows]]
        if fresh.size == 0:
            return
        self._image_seen[fresh] = True
        self.segments.mark_vector_mask(self._vector_seen, fresh)
        self._seen_count += int(fresh.size)

    def mark_images(self, image_ids: Iterable[int]) -> None:
        """Mark image ids (and all their vectors) as seen."""
        ids = list(image_ids)
        if ids:
            self.mark_rows(self.segments.rows_for_images(ids))

    def reset(self) -> None:
        """Forget everything (start-of-session state)."""
        self._image_seen[:] = False
        self._vector_seen[:] = False
        self._seen_count = 0

    def copy(self) -> "SeenMask":
        """An independent mask with the same seen state."""
        clone = SeenMask(self.segments)
        np.copyto(clone._image_seen, self._image_seen)
        np.copyto(clone._vector_seen, self._vector_seen)
        clone._seen_count = self._seen_count
        return clone

    # ------------------------------------------------------------------
    # interop with the legacy set-based API
    # ------------------------------------------------------------------
    def covers_exactly(self, image_ids: "frozenset[int] | set[int]") -> bool:
        """True when the seen set is exactly ``image_ids``.

        Lets the engine-backed context reuse the session's persistent mask
        for the common call pattern (methods pass back precisely the shown
        images) and fall back to an ephemeral mask otherwise.  Unknown ids
        simply report ``False`` — the caller then builds its own mask and
        surfaces the proper error there.
        """
        if len(image_ids) != self._seen_count:
            return False
        lookup = self.segments._row_by_image
        seen = self.image_seen
        for image_id in image_ids:
            row = lookup.get(int(image_id))
            if row is None or not seen[row]:
                return False
        return True
