"""CSR-style image segment layout: the columnar patch-to-image mapping.

The multiscale index stores several patch vectors per image.  The legacy
representation was a ``dict[int, tuple[int, ...]]`` mapping image id to its
vector ids — convenient, but every hot-path operation (exclusion sets,
max-pooling patches into images) had to walk it in Python.  This module
replaces it with three flat arrays:

* ``image_ids`` — the indexed image ids, in index order (an image's position
  in this array is its *row*);
* ``order`` / ``offsets`` — CSR layout: ``order[offsets[r]:offsets[r + 1]]``
  are the vector ids of the image at row ``r``;
* ``vector_image_rows`` — the inverse ``vector_id -> row`` int64 column.

With these, pooling per-patch scores into per-image scores is a single
``np.maximum.reduceat`` and exclusion is boolean-mask indexing, no Python
loops and no per-hit objects.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import IndexingError


class ImageSegments:
    """Columnar vector-to-image layout shared by the query engine."""

    __slots__ = (
        "image_ids",
        "order",
        "offsets",
        "vector_image_rows",
        "_row_by_image",
        "_contiguous",
    )

    def __init__(
        self,
        image_ids: np.ndarray,
        order: np.ndarray,
        offsets: np.ndarray,
        vector_count: int,
    ) -> None:
        self.image_ids = np.asarray(image_ids, dtype=np.int64)
        self.order = np.asarray(order, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size != self.image_ids.size + 1:
            raise IndexingError("offsets must have one more entry than image_ids")
        if self.offsets[0] != 0 or self.offsets[-1] != self.order.size:
            raise IndexingError("offsets must start at 0 and end at len(order)")
        lengths = np.diff(self.offsets)
        if lengths.size and lengths.min() < 1:
            # An empty segment would make ``np.maximum.reduceat`` silently
            # return a neighbouring segment's value, so it is rejected here.
            raise IndexingError("every image must contribute at least one vector")
        if self.order.size:
            if self.order.min() < 0 or self.order.max() >= vector_count:
                raise IndexingError("segment vector id out of range")
            if np.unique(self.order).size != self.order.size:
                raise IndexingError("a vector id may belong to at most one image")
        self.vector_image_rows = np.full(vector_count, -1, dtype=np.int64)
        self.vector_image_rows[self.order] = np.repeat(
            np.arange(self.image_ids.size, dtype=np.int64), lengths
        )
        self._row_by_image = {
            int(image_id): row for row, image_id in enumerate(self.image_ids)
        }
        if len(self._row_by_image) != self.image_ids.size:
            raise IndexingError("image ids must be unique")
        self._contiguous = bool(
            self.order.size == vector_count
            and np.array_equal(self.order, np.arange(vector_count))
        )
        # The columns are shared by every engine, mask, and context built
        # over this index; freeze them so views handed out (segment slices,
        # the id columns themselves) reject writes instead of silently
        # desynchronizing the layout.
        for column in (self.image_ids, self.order, self.offsets, self.vector_image_rows):
            column.setflags(write=False)

    @classmethod
    def from_mapping(
        cls,
        image_vector_ids: "Mapping[int, Sequence[int]]",
        vector_count: int,
    ) -> "ImageSegments":
        """Build the columnar layout from the legacy id mapping.

        The mapping's iteration order defines the image rows, matching the
        ordering guarantees of ``SeeSawIndex.image_ids`` and
        ``coarse_vector_ids()``.
        """
        image_ids = np.fromiter(
            (int(i) for i in image_vector_ids), dtype=np.int64, count=len(image_vector_ids)
        )
        lengths = np.fromiter(
            (len(ids) for ids in image_vector_ids.values()),
            dtype=np.int64,
            count=len(image_vector_ids),
        )
        offsets = np.zeros(image_ids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        if offsets[-1]:
            order = np.concatenate(
                [np.asarray(ids, dtype=np.int64) for ids in image_vector_ids.values()]
            )
        else:
            order = np.zeros(0, dtype=np.int64)
        return cls(image_ids, order, offsets, vector_count)

    # ------------------------------------------------------------------
    # shape accessors
    # ------------------------------------------------------------------
    @property
    def image_count(self) -> int:
        """Number of image segments."""
        return self.image_ids.size

    @property
    def vector_count(self) -> int:
        """Number of vectors the inverse column covers."""
        return self.vector_image_rows.size

    @property
    def counts(self) -> np.ndarray:
        """Vectors per image, aligned with ``image_ids``."""
        return np.diff(self.offsets)

    def row_for_image(self, image_id: int) -> int:
        """The row of one image id."""
        try:
            return self._row_by_image[int(image_id)]
        except KeyError as exc:
            raise IndexingError(f"Image {image_id} is not in the index") from exc

    def rows_for_images(self, image_ids: Iterable[int]) -> np.ndarray:
        """The rows of a collection of image ids (order-preserving)."""
        lookup = self._row_by_image
        try:
            return np.fromiter(
                (lookup[int(i)] for i in image_ids), dtype=np.int64
            )
        except KeyError as exc:
            raise IndexingError(f"Image {exc.args[0]} is not in the index") from exc

    def vector_ids_for_row(self, row: int) -> np.ndarray:
        """The vector ids of the image at one row (read-only slice)."""
        return self.order[self.offsets[row] : self.offsets[row + 1]]

    def first_vector_ids(self) -> np.ndarray:
        """The first stored vector id of every image, in row order."""
        return self.order[self.offsets[:-1]]

    # ------------------------------------------------------------------
    # columnar kernels
    # ------------------------------------------------------------------
    def pool_max(self, vector_scores: np.ndarray) -> np.ndarray:
        """Max-pool per-vector scores into per-image scores (§4.3).

        One ``np.maximum.reduceat`` over the segment offsets; when vector ids
        are already laid out image-by-image (the layout ``SeeSawIndex.build``
        produces) the gather through ``order`` is skipped entirely.
        """
        vector_scores = np.asarray(vector_scores)
        if vector_scores.shape[0] != self.vector_count:
            raise IndexingError(
                f"expected {self.vector_count} vector scores, got {vector_scores.shape[0]}"
            )
        if self.image_count == 0:
            return np.zeros(0, dtype=np.float64)
        segmented = vector_scores if self._contiguous else vector_scores[self.order]
        return np.maximum.reduceat(segmented, self.offsets[:-1])

    def pool_max_batch(self, vector_scores: np.ndarray) -> np.ndarray:
        """Max-pool a ``(Q x vectors)`` score matrix into ``(Q x images)``.

        The batched counterpart of :meth:`pool_max`: one ``reduceat`` along
        axis 1 pools every session's row in a single kernel call.
        """
        vector_scores = np.asarray(vector_scores)
        if vector_scores.ndim != 2 or vector_scores.shape[1] != self.vector_count:
            raise IndexingError(
                f"expected a (queries x {self.vector_count}) score matrix, "
                f"got shape {vector_scores.shape}"
            )
        if self.image_count == 0:
            return np.zeros((vector_scores.shape[0], 0), dtype=np.float64)
        segmented = (
            vector_scores if self._contiguous else vector_scores[:, self.order]
        )
        return np.maximum.reduceat(segmented, self.offsets[:-1], axis=1)

    def best_vectors_in_rows(
        self, vector_scores: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """The best-scoring vector id of each given image row.

        Only called for the handful of selected top images per round, so a
        short loop over ragged segment slices beats any full-array trick.
        """
        out = np.empty(len(rows), dtype=np.int64)
        for position, row in enumerate(rows):
            segment = self.order[self.offsets[row] : self.offsets[row + 1]]
            out[position] = segment[int(np.argmax(vector_scores[segment]))]
        return out

    def vector_mask_for_rows(self, rows: np.ndarray) -> np.ndarray:
        """Boolean mask over vectors covering the given image rows."""
        mask = np.zeros(self.vector_count, dtype=bool)
        self.mark_vector_mask(mask, rows)
        return mask

    def mark_vector_mask(self, mask: np.ndarray, rows: "np.ndarray | Iterable[int]") -> None:
        """Set the vector positions of the given image rows in ``mask``."""
        if self._contiguous:
            for row in rows:
                mask[self.offsets[row] : self.offsets[row + 1]] = True
        else:
            for row in rows:
                mask[self.order[self.offsets[row] : self.offsets[row + 1]]] = True
