"""Fused multi-session batch scoring: Q rounds in one kernel call.

A single interactive round is one matvec, one mask, one ``reduceat``, one
``argpartition``.  When Q sessions on the same index ask for their next
batch at (almost) the same time — the load profile the paper's "millions of
users" deployment faces — running Q sequential rounds wastes both kernel
launches and memory bandwidth: each round re-streams the same vector matrix.

:class:`BatchQueryEngine` instead stacks the Q session query vectors into a
``(Q x d)`` matrix and runs

* **one GEMM** — ``store.score_many`` computes the full ``(Q x vectors)``
  score matrix in a single BLAS call (per-shard GEMMs on a sharded store);
* **one pooled reduceat** — ``segments.pool_max_batch`` max-pools all Q rows
  into per-image scores at once;
* **per-row selection** — each session's :class:`~repro.engine.mask.SeenMask`
  is applied to its own row only, then the ordinary per-round selection
  (argpartition, deterministic tie-break, best-vector lookup) runs on it.

Per-session isolation is structural: session q's mask touches only row q,
so no session can leak seen-state — or results — into another's row.  The
selected ids match Q sequential :class:`~repro.engine.engine.QueryEngine`
rounds exactly; scores agree to last-bit rounding (GEMM blocks the reduction
differently from the row-wise kernel), which the property suite pins.

Approximate (non-exhaustive) stores have no full score matrix to fuse, so
the engine transparently falls back to sequential candidate search per
session — same results, no fusion.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.engine import QueryEngine
from repro.engine.mask import SeenMask
from repro.exceptions import SessionError, VectorStoreError
from repro.obs import trace_span
from repro.utils.linalg import ensure_dtype

BatchSelection = "tuple[np.ndarray, np.ndarray, np.ndarray]"


class BatchQueryEngine:
    """Scores many sessions' rounds against one index in fused kernels."""

    __slots__ = ("engine",)

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine

    @property
    def store(self):
        """The underlying vector store."""
        return self.engine.store

    @property
    def segments(self):
        """The underlying CSR image-segment layout."""
        return self.engine.segments

    def top_unseen_batch(
        self,
        queries: np.ndarray,
        counts: "Sequence[int] | int",
        masks: "Sequence[SeenMask | None]",
    ) -> "list[tuple[np.ndarray, np.ndarray, np.ndarray]]":
        """The next batch for each of Q sessions, in one fused pass.

        Parameters
        ----------
        queries:
            ``(Q x d)`` matrix, one session query vector per row.
        counts:
            Images wanted per session (an int broadcasts to all rows).
        masks:
            Each session's seen-state, aligned with the query rows (``None``
            rows mean nothing seen).  Masks are read, never written — the
            session layer marks results seen after showing them.

        Returns one ``(image_ids, image_scores, best_vector_ids)`` triple
        per session, best first, exactly as
        :meth:`QueryEngine.top_unseen_arrays` would return for that
        session alone.
        """
        # One conversion to the store's compute dtype up front; already-
        # converted matrices (and every row sliced from this one on the
        # sequential fallback) then flow through the store checks zero-copy.
        queries = np.atleast_2d(ensure_dtype(queries, self.engine.store.compute_dtype))
        if queries.ndim != 2:
            raise VectorStoreError("queries must be a (sessions x dim) matrix")
        session_count = queries.shape[0]
        if isinstance(counts, (int, np.integer)):
            counts = [int(counts)] * session_count
        if len(counts) != session_count:
            raise SessionError(
                f"{session_count} queries but {len(counts)} counts"
            )
        if len(masks) != session_count:
            raise SessionError(
                f"{session_count} queries but {len(masks)} masks"
            )
        if any(count < 1 for count in counts):
            raise SessionError("count must be >= 1")
        if session_count == 0:
            return []
        engine = self.engine
        if not engine.store.exhaustive:
            # No full score matrix to fuse over a candidate store; the
            # sequential per-session path returns identical results.
            return [
                engine.top_unseen_arrays(queries[row], counts[row], masks[row])
                for row in range(session_count)
            ]
        with trace_span("score", sessions=session_count):
            vector_scores = engine.store.score_many(queries)
        with trace_span("pool"):
            image_scores = engine.segments.pool_max_batch(vector_scores)
        # Per-row selection spans itself through engine.select_pooled.
        return [
            engine.select_pooled(
                image_scores[row], vector_scores[row], counts[row], masks[row]
            )
            for row in range(session_count)
        ]
