"""Few-shot CLIP: plain logistic regression on the user's feedback (Equation 1).

This is the natural "just train a linear model on the labels" baseline.  The
paper shows it usually *hurts* relative to zero-shot CLIP because the learned
vector is estimated from a handful of highly biased samples; SeeSaw's CLIP
alignment term exists precisely to fix that failure mode.
"""

from __future__ import annotations

import numpy as np

from repro.config import LossWeights, SeeSawConfig
from repro.core.aligner import SeeSawQueryAligner
from repro.core.feedback import FeedbackMap
from repro.core.interfaces import ImageResult, SearchContext, SearchMethod
from repro.exceptions import SessionError


def _few_shot_config(base: "SeeSawConfig | None", lambda_norm: float, fit_bias: bool) -> SeeSawConfig:
    """A SeeSaw configuration with both alignment terms disabled."""
    base = base or SeeSawConfig()
    return base.with_overrides(
        loss=LossWeights(lambda_norm=lambda_norm, lambda_clip=0.0, lambda_db=0.0),
        use_clip_alignment=False,
        use_db_alignment=False,
        fit_bias=fit_bias,
    )


class FewShotClipMethod(SearchMethod):
    """Logistic regression on feedback, used directly as the query vector."""

    name = "few_shot_clip"

    # next_images is exactly top_unseen_images(query_vector, ...): eligible
    # for fused multi-session batch scoring.
    supports_fused_batch = True

    def __init__(
        self,
        config: "SeeSawConfig | None" = None,
        lambda_norm: float = 1.0,
        fit_bias: bool = False,
    ) -> None:
        self.config = _few_shot_config(config, lambda_norm, fit_bias)
        self._context: "SearchContext | None" = None
        self._aligner: "SeeSawQueryAligner | None" = None
        self._text_vector: "np.ndarray | None" = None

    def begin(self, context: SearchContext, text_query: str) -> None:
        self._context = context
        self._text_vector = context.embed_text(text_query)
        self._aligner = SeeSawQueryAligner(
            query_text_vector=self._text_vector,
            db_matrix=None,
            config=self.config,
        )

    def next_images(
        self, count: int, excluded_image_ids: "frozenset[int] | set[int]"
    ) -> "list[ImageResult]":
        if self._context is None or self._aligner is None:
            raise SessionError("begin must be called before next_images")
        return self._context.top_unseen_images(
            self._aligner.current_query_vector, count, excluded_image_ids
        )

    def observe(self, feedback: FeedbackMap) -> None:
        if self._context is None or self._aligner is None:
            raise SessionError("begin must be called before observe")
        features, labels, weights, _ = feedback.to_weighted_patch_labels(self._context.index)
        if labels.size == 0 or labels.max() == labels.min():
            # Without at least one positive and one negative example a purely
            # data-driven linear model is unidentifiable, so the method keeps
            # using the text vector (the same warm-up the paper gives ENS).
            return
        self._aligner.align(features, labels, sample_weights=weights)

    @property
    def query_vector(self) -> "np.ndarray | None":
        if self._aligner is None:
            return None
        return self._aligner.current_query_vector
