"""The "ideal query vector" analysis of Figure 4.

For a category with full ground-truth labels, the best linear query vector is
found by fitting a regularised logistic regression on *all* database vectors.
The paper uses this over-fit vector to measure how much of a query's error is
alignment deficit (fixable by a better query vector) versus concept locality
deficit (not fixable by any single vector).
"""

from __future__ import annotations

import numpy as np

from repro.config import LossWeights, OptimizerConfig
from repro.core.loss import SeeSawLoss
from repro.exceptions import OptimizationError
from repro.optim.lbfgs import lbfgs_minimize
from repro.utils.linalg import normalize_vector


def fit_ideal_vector(
    vectors: np.ndarray,
    labels: np.ndarray,
    lambda_norm: float = 1.0,
    fit_bias: bool = False,
    max_iterations: int = 200,
) -> np.ndarray:
    """Fit the best linear query vector for fully labelled data.

    Parameters
    ----------
    vectors:
        ``(count, dim)`` database vectors (coarse embeddings in Figure 4).
    labels:
        Ground-truth 0/1 relevance labels for every vector.
    lambda_norm:
        Small L2 penalty keeping the separable problem bounded.
    fit_bias:
        Whether to fit a logistic bias; the resulting query ignores it either
        way, matching §3.2.
    max_iterations:
        L-BFGS iteration budget (the problem is low-dimensional and smooth).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if vectors.ndim != 2 or vectors.shape[0] != labels.shape[0]:
        raise OptimizationError("vectors and labels must align on the first axis")
    if labels.max() == labels.min():
        raise OptimizationError("ideal-vector fitting needs both classes present")
    dim = vectors.shape[1]
    positive_mean = normalize_vector(vectors[labels > 0.5].mean(axis=0))
    loss = SeeSawLoss(
        features=vectors,
        labels=labels,
        query_text_vector=positive_mean if np.any(positive_mean) else np.ones(dim) / np.sqrt(dim),
        db_matrix=None,
        weights=LossWeights(lambda_norm=lambda_norm, lambda_clip=0.0, lambda_db=0.0),
        fit_bias=fit_bias,
    )
    config = OptimizerConfig(max_iterations=max_iterations)
    outcome = lbfgs_minimize(loss, loss.initial_parameters(positive_mean), config)
    weight_vector, _ = loss.split_parameters(outcome.parameters)
    return normalize_vector(weight_vector)
