"""Zero-shot CLIP: rank by the text embedding alone, ignore all feedback."""

from __future__ import annotations

import numpy as np

from repro.core.feedback import FeedbackMap
from repro.core.interfaces import ImageResult, SearchContext, SearchMethod
from repro.exceptions import SessionError


class ZeroShotClipMethod(SearchMethod):
    """The no-feedback baseline: the query vector never changes."""

    name = "zero_shot_clip"

    # next_images is exactly top_unseen_images(query_vector, ...): eligible
    # for fused multi-session batch scoring.
    supports_fused_batch = True

    def __init__(self) -> None:
        self._context: "SearchContext | None" = None
        self._query: "np.ndarray | None" = None

    def begin(self, context: SearchContext, text_query: str) -> None:
        self._context = context
        self._query = context.embed_text(text_query)

    def next_images(
        self, count: int, excluded_image_ids: "frozenset[int] | set[int]"
    ) -> "list[ImageResult]":
        if self._context is None or self._query is None:
            raise SessionError("begin must be called before next_images")
        return self._context.top_unseen_images(self._query, count, excluded_image_ids)

    def observe(self, feedback: FeedbackMap) -> None:
        """Zero-shot CLIP ignores feedback entirely (Listing 1 with no line 7)."""

    @property
    def query_vector(self) -> "np.ndarray | None":
        return None if self._query is None else self._query.copy()
