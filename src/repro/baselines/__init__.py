"""Baseline search methods the paper compares SeeSaw against (§5.4).

* :class:`ZeroShotClipMethod` — CLIP text vector, feedback ignored.
* :class:`FewShotClipMethod` — logistic regression on feedback (Equation 1).
* :class:`RocchioMethod` — Rocchio's relevance-feedback formula (Equation 6).
* :class:`EnsMethod` — Efficient Non-myopic Search over the kNN graph.
* :class:`PropagationMethod` — full label propagation each round ("SeeSaw
  prop." in the latency comparison, Table 6).
* :func:`fit_ideal_vector` — the best-fit linear query vector of Figure 4.
"""

from repro.baselines.ens import EnsMethod
from repro.baselines.few_shot import FewShotClipMethod
from repro.baselines.ideal import fit_ideal_vector
from repro.baselines.propagation_search import PropagationMethod
from repro.baselines.rocchio import RocchioMethod
from repro.baselines.zero_shot import ZeroShotClipMethod

__all__ = [
    "ZeroShotClipMethod",
    "FewShotClipMethod",
    "RocchioMethod",
    "EnsMethod",
    "PropagationMethod",
    "fit_ideal_vector",
]
