"""Full label-propagation search ("SeeSaw prop." in Table 6).

This variant realises the conceptual starting point of DB alignment directly:
after every feedback round it runs label propagation over the whole kNN graph
and ranks images by the propagated score.  It is accurate but its per-round
cost grows linearly with the database, which is exactly the scaling problem
the collapsed ``M_D`` term avoids (§4.2, Table 6).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.ens import raw_gamma_from_scores
from repro.core.feedback import FeedbackMap
from repro.core.interfaces import ImageResult, SearchContext, SearchMethod
from repro.core.propagation import propagate_labels
from repro.exceptions import SessionError


class PropagationMethod(SearchMethod):
    """Rank by label propagation over the database kNN graph every round."""

    name = "propagation"

    def __init__(self, iterations: int = 20) -> None:
        self.iterations = int(iterations)
        self._context: "SearchContext | None" = None
        self._query: "np.ndarray | None" = None
        self._prior: "np.ndarray | None" = None
        self._scores: "np.ndarray | None" = None

    def begin(self, context: SearchContext, text_query: str) -> None:
        if context.index.knn_graph is None:
            raise SessionError("PropagationMethod requires an index with a kNN graph")
        self._context = context
        self._query = context.embed_text(text_query)
        self._prior = raw_gamma_from_scores(context.store.score_all(self._query))
        self._scores = self._prior.copy()

    def next_images(
        self, count: int, excluded_image_ids: "frozenset[int] | set[int]"
    ) -> "list[ImageResult]":
        context = self._require_started()
        # Rank by the propagated per-patch scores: the engine max-pools them
        # into image scores and argpartitions directly, replacing the old
        # full argsort + Python regrouping loop (the propagated score of an
        # image is the max over its patches, same pooling as §4.3).
        image_ids, scores, vector_ids = context.engine.top_images_from_vector_scores(
            self._scores, count, context.mask_for(excluded_image_ids)
        )
        return context.results_from_arrays(image_ids, scores, vector_ids)

    def observe(self, feedback: FeedbackMap) -> None:
        context = self._require_started()
        _, labels, vector_ids = feedback.to_patch_labels(context.index)
        if labels.size == 0:
            return
        labeled = {int(vid): float(label) for vid, label in zip(vector_ids, labels)}
        self._scores = propagate_labels(
            context.index.knn_graph,
            labeled,
            iterations=self.iterations,
            prior=self._prior,
        )

    @property
    def query_vector(self) -> "np.ndarray | None":
        return None if self._query is None else self._query.copy()

    def _require_started(self) -> SearchContext:
        if self._context is None or self._scores is None:
            raise SessionError("begin must be called before using PropagationMethod")
        return self._context
