"""Full label-propagation search ("SeeSaw prop." in Table 6).

This variant realises the conceptual starting point of DB alignment directly:
after every feedback round it runs label propagation over the whole kNN graph
and ranks images by the propagated score.  It is accurate but its per-round
cost grows linearly with the database, which is exactly the scaling problem
the collapsed ``M_D`` term avoids (§4.2, Table 6).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.ens import raw_gamma_from_scores
from repro.core.feedback import FeedbackMap
from repro.core.interfaces import ImageResult, SearchContext, SearchMethod
from repro.core.propagation import propagate_labels
from repro.exceptions import SessionError


class PropagationMethod(SearchMethod):
    """Rank by label propagation over the database kNN graph every round."""

    name = "propagation"

    def __init__(self, iterations: int = 20) -> None:
        self.iterations = int(iterations)
        self._context: "SearchContext | None" = None
        self._query: "np.ndarray | None" = None
        self._prior: "np.ndarray | None" = None
        self._scores: "np.ndarray | None" = None

    def begin(self, context: SearchContext, text_query: str) -> None:
        if context.index.knn_graph is None:
            raise SessionError("PropagationMethod requires an index with a kNN graph")
        self._context = context
        self._query = context.embed_text(text_query)
        raw_scores = context.store.vectors @ self._query
        self._prior = raw_gamma_from_scores(raw_scores)
        self._scores = self._prior.copy()

    def next_images(
        self, count: int, excluded_image_ids: "frozenset[int] | set[int]"
    ) -> "list[ImageResult]":
        context = self._require_started()
        excluded_vectors = context.index.vector_ids_for_images(excluded_image_ids)
        scores = self._scores.copy()
        if excluded_vectors:
            scores[list(excluded_vectors)] = -np.inf
        order = np.argsort(-scores)
        results: list[ImageResult] = []
        seen: set[int] = set(excluded_image_ids)
        for vector_id in order:
            if not np.isfinite(scores[vector_id]):
                break
            record = context.store.record(int(vector_id))
            if record.image_id in seen:
                continue
            seen.add(record.image_id)
            results.append(
                ImageResult(
                    image_id=record.image_id,
                    score=float(scores[vector_id]),
                    vector_id=int(vector_id),
                    box=record.box,
                )
            )
            if len(results) >= count:
                break
        return results

    def observe(self, feedback: FeedbackMap) -> None:
        context = self._require_started()
        _, labels, vector_ids = feedback.to_patch_labels(context.index)
        if labels.size == 0:
            return
        labeled = {int(vid): float(label) for vid, label in zip(vector_ids, labels)}
        self._scores = propagate_labels(
            context.index.knn_graph,
            labeled,
            iterations=self.iterations,
            prior=self._prior,
        )

    @property
    def query_vector(self) -> "np.ndarray | None":
        return None if self._query is None else self._query.copy()

    def _require_started(self) -> SearchContext:
        if self._context is None or self._scores is None:
            raise SessionError("begin must be called before using PropagationMethod")
        return self._context
