"""Rocchio's relevance-feedback algorithm (Equation 6 of the paper).

The next query vector is a weighted combination of the original text vector,
the centroid of the relevant examples seen so far, and (negatively) the
centroid of the non-relevant examples:

``q_n = alpha * q_0 + beta * mean(D_r) - gamma * mean(D_n)``

The paper uses ``alpha = 1``, ``beta = .5``, ``gamma = .25``.
"""

from __future__ import annotations

import numpy as np

from repro.core.feedback import FeedbackMap
from repro.core.interfaces import ImageResult, SearchContext, SearchMethod
from repro.exceptions import ConfigurationError, SessionError
from repro.utils.linalg import normalize_vector


class RocchioMethod(SearchMethod):
    """Classic Rocchio query refinement on top of the CLIP text vector."""

    name = "rocchio"

    # next_images is exactly top_unseen_images(query_vector, ...): eligible
    # for fused multi-session batch scoring.
    supports_fused_batch = True

    def __init__(self, alpha: float = 1.0, beta: float = 0.5, gamma: float = 0.25) -> None:
        if alpha < 0 or beta < 0 or gamma < 0:
            raise ConfigurationError("Rocchio weights must be non-negative")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self._context: "SearchContext | None" = None
        self._text_vector: "np.ndarray | None" = None
        self._query: "np.ndarray | None" = None

    def begin(self, context: SearchContext, text_query: str) -> None:
        self._context = context
        self._text_vector = context.embed_text(text_query)
        self._query = self._text_vector.copy()

    def next_images(
        self, count: int, excluded_image_ids: "frozenset[int] | set[int]"
    ) -> "list[ImageResult]":
        if self._context is None or self._query is None:
            raise SessionError("begin must be called before next_images")
        return self._context.top_unseen_images(self._query, count, excluded_image_ids)

    def observe(self, feedback: FeedbackMap) -> None:
        if self._context is None or self._text_vector is None:
            raise SessionError("begin must be called before observe")
        features, labels, _ = feedback.to_patch_labels(self._context.index)
        if labels.size == 0:
            return
        query = self.alpha * self._text_vector
        positives = features[labels > 0.5]
        negatives = features[labels <= 0.5]
        if positives.size:
            query = query + self.beta * positives.mean(axis=0)
        if negatives.size:
            query = query - self.gamma * negatives.mean(axis=0)
        normalized = normalize_vector(query)
        if np.any(normalized):
            self._query = normalized

    @property
    def query_vector(self) -> "np.ndarray | None":
        return None if self._query is None else self._query.copy()
