"""Efficient Non-myopic Search (ENS), Jiang et al. 2017, adapted as in §5.4.

ENS is an active-search policy: instead of greedily showing the highest
scoring image, it scores each candidate by the *expected number of positives
found within the remaining budget* if that candidate were shown next.  The
probability model is a weighted kNN classifier over the database's kNN graph
with a per-vertex prior ``gamma_i``.

Following the paper's adaptation we (a) use CLIP similarity scores as the
per-vertex prior ``gamma_i`` (optionally Platt-calibrated for Table 4), and
(b) fall back to plain zero-shot ranking until the first positive example has
been found.

The expected-future-reward term uses the standard one-step-lookahead bound:
for each candidate we ask how its unlabeled neighbours' probabilities would
change if it were labelled positive or negative, and sum the top
``horizon - 1`` of them.  This preserves the two properties the paper's
analysis rests on: the policy prefers candidates inside dense clusters, and
longer horizons make it increasingly sensitive to probability calibration.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.feedback import FeedbackMap
from repro.core.interfaces import ImageResult, SearchContext, SearchMethod
from repro.exceptions import ConfigurationError, SessionError
from repro.knng.graph import KnnGraph

GammaCalibrator = Callable[[np.ndarray], np.ndarray]


def raw_gamma_from_scores(scores: np.ndarray) -> np.ndarray:
    """Map raw cosine scores in [-1, 1] to the [0, 1] prior ENS expects.

    This is intentionally *not* a calibrated probability — the point of
    Table 4 is that ENS degrades when its priors are not calibrated.
    """
    return np.clip((np.asarray(scores, dtype=np.float64) + 1.0) / 2.0, 0.0, 1.0)


class EnsMethod(SearchMethod):
    """Efficient Non-myopic Search over the kNN graph of coarse vectors."""

    name = "ens"

    def __init__(
        self,
        horizon: int = 60,
        prior_weight: float = 1.0,
        gamma_calibrator: "GammaCalibrator | None" = None,
        shrink_horizon: bool = True,
    ) -> None:
        if horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        if prior_weight <= 0:
            raise ConfigurationError("prior_weight must be > 0")
        self.horizon = int(horizon)
        self.prior_weight = float(prior_weight)
        self.gamma_calibrator = gamma_calibrator
        self.shrink_horizon = bool(shrink_horizon)
        self._context: "SearchContext | None" = None
        self._graph: "KnnGraph | None" = None
        self._query: "np.ndarray | None" = None
        self._gamma: "np.ndarray | None" = None
        self._labels: "dict[int, float]" = {}

    # ------------------------------------------------------------------
    # SearchMethod interface
    # ------------------------------------------------------------------
    def begin(self, context: SearchContext, text_query: str) -> None:
        if context.index.knn_graph is None:
            raise SessionError("ENS requires an index built with a kNN graph")
        self._context = context
        self._graph = context.index.knn_graph
        self._query = context.embed_text(text_query)
        scores = context.store.score_all(self._query)
        if self.gamma_calibrator is not None:
            self._gamma = np.clip(self.gamma_calibrator(scores), 0.0, 1.0)
        else:
            self._gamma = raw_gamma_from_scores(scores)
        self._labels = {}

    def next_images(
        self, count: int, excluded_image_ids: "frozenset[int] | set[int]"
    ) -> "list[ImageResult]":
        context = self._require_started()
        if not any(label > 0.5 for label in self._labels.values()):
            # Warm-up: until the first positive arrives ENS has nothing to
            # learn from, so rank with the zero-shot query (paper, §5.4).
            return context.top_unseen_images(self._query, count, excluded_image_ids)
        # Exclusion state is a boolean vector column (engine SeenMask) that
        # grows incrementally as candidates are chosen, replacing the old
        # per-round union of vector-id sets.
        shared = context.mask_for(excluded_image_ids)
        seen = shared.copy() if shared is not None else context.engine.new_mask()
        results: list[ImageResult] = []
        remaining = self._remaining_horizon(len(excluded_image_ids))
        # The kNN posterior depends only on the accumulated labels, which do
        # not change while a batch is being assembled — compute it once.
        probabilities = self._probabilities()
        for _ in range(count):
            vector_id = self._select_vector(probabilities, seen.vector_seen, remaining)
            if vector_id is None:
                break
            record = context.store.record(vector_id)
            probability = probabilities[vector_id]
            results.append(
                ImageResult(
                    image_id=record.image_id,
                    score=float(probability),
                    vector_id=vector_id,
                    box=record.box,
                )
            )
            seen.mark_images((record.image_id,))
            remaining = max(1, remaining - 1)
        return results

    def observe(self, feedback: FeedbackMap) -> None:
        context = self._require_started()
        _, labels, vector_ids = feedback.to_patch_labels(context.index)
        self._labels = {
            int(vector_id): float(label) for vector_id, label in zip(vector_ids, labels)
        }

    @property
    def query_vector(self) -> "np.ndarray | None":
        return None if self._query is None else self._query.copy()

    # ------------------------------------------------------------------
    # the kNN probability model
    # ------------------------------------------------------------------
    def _probabilities(self) -> np.ndarray:
        """Posterior positive-probability of every vector under the kNN model."""
        graph = self._graph
        gamma = self._gamma
        count = graph.node_count
        numerator = self.prior_weight * gamma.copy()
        denominator = np.full(count, self.prior_weight, dtype=np.float64)
        for vector_id, label in self._labels.items():
            if vector_id >= count:
                continue
            neighbor_ids, weights = graph.neighbors_of(vector_id)
            numerator[neighbor_ids] += weights * label
            denominator[neighbor_ids] += weights
        return numerator / denominator

    def _select_vector(
        self,
        probabilities: np.ndarray,
        excluded_vector_mask: np.ndarray,
        remaining_horizon: int,
    ) -> "int | None":
        """Pick the vector with the highest expected total reward.

        ``excluded_vector_mask`` is a boolean column over the graph's
        vectors (``True`` = already shown / chosen this batch).
        """
        graph = self._graph
        candidate_mask = ~excluded_vector_mask[: graph.node_count]
        for vector_id in self._labels:
            if vector_id < graph.node_count:
                candidate_mask[vector_id] = False
        candidates = np.nonzero(candidate_mask)[0]
        if candidates.size == 0:
            return None
        lookahead = max(0, min(remaining_horizon - 1, graph.k))
        if lookahead == 0:
            best = candidates[int(np.argmax(probabilities[candidates]))]
            return int(best)
        scores = np.empty(candidates.size, dtype=np.float64)
        for position, candidate in enumerate(candidates):
            scores[position] = self._expected_utility(
                int(candidate), probabilities, candidate_mask, lookahead
            )
        return int(candidates[int(np.argmax(scores))])

    def _expected_utility(
        self,
        candidate: int,
        probabilities: np.ndarray,
        candidate_mask: np.ndarray,
        lookahead: int,
    ) -> float:
        """Expected positives found from showing ``candidate`` next."""
        graph = self._graph
        gamma = self._gamma
        probability = float(probabilities[candidate])
        neighbor_ids, weights = graph.neighbors_of(candidate)
        keep = candidate_mask[neighbor_ids]
        neighbor_ids = neighbor_ids[keep]
        weights = weights[keep]
        if neighbor_ids.size == 0:
            return probability
        # How the neighbours' probabilities would move under either outcome.
        base_numerator = probabilities[neighbor_ids] * self.prior_weight
        # Reconstruct the label mass already sitting on these neighbours from
        # the current probability: p = (prior * gamma + mass_pos) / (prior + mass).
        # For the lookahead bound we only need the *relative* movement, so we
        # approximate the current denominators with the prior weight, which is
        # exact before any neighbour of the neighbour has been labelled.
        del base_numerator
        numerator = self.prior_weight * gamma[neighbor_ids] + 0.0
        denominator = np.full(neighbor_ids.size, self.prior_weight, dtype=np.float64)
        positive_update = (numerator + weights) / (denominator + weights)
        negative_update = numerator / (denominator + weights)
        top_positive = np.sort(positive_update)[::-1][:lookahead]
        top_negative = np.sort(negative_update)[::-1][:lookahead]
        reward_if_positive = 1.0 + float(np.sum(top_positive))
        reward_if_negative = float(np.sum(top_negative))
        return probability * reward_if_positive + (1.0 - probability) * reward_if_negative

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _remaining_horizon(self, shown_count: int) -> int:
        if not self.shrink_horizon:
            return self.horizon
        return max(1, self.horizon - shown_count)

    def _require_started(self) -> SearchContext:
        if self._context is None or self._graph is None or self._query is None:
            raise SessionError("begin must be called before using EnsMethod")
        return self._context
