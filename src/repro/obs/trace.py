"""Span-based tracing: per-stage wall-clock durations on the hot path.

A span is one timed stage of one request: ``score``, ``pool``, ``select``,
``merge``, ``rerank``, ``coalesce_wait``, ``lock_wait``.  Opening one is a
context manager::

    with trace_span("score", shard=3):
        scores = store.score_all(query)

On exit the span's duration is recorded twice:

* into the ``seesaw_stage_seconds{stage=...}`` histogram of the configured
  registry — the cross-request aggregate the ``/v1/metrics`` endpoint
  exposes; and
* into the **per-request trace collector**, a :class:`contextvars.ContextVar`
  the access-log middleware opens around each request.  The HTTP server is
  thread-per-request and the in-process client runs on the caller's thread,
  so context isolation falls out of ``contextvars`` with no plumbing: any
  span opened below the middleware lands in that request's collector.  The
  slow-request log reads the collector to attach a per-stage breakdown to
  the offending request id.

The request id set by ``RequestIdMiddleware`` rides the same mechanism
(:func:`set_request_id` / :func:`current_request_id`), so any layer can tag
diagnostics with the originating request without threading an argument
through five call frames.

**Disabled mode is the default-off cost model**: when telemetry is off
(:func:`configure` with ``enabled=False``), :func:`trace_span` returns one
shared immutable no-op singleton — no span object, no timestamp, no registry
touch.  The only per-call work is a truthiness check and (when keyword attrs
are passed) the ``**attrs`` dict the call site itself creates.  The
``table6_telemetry_overhead`` benchmark gates the *enabled* cost below 5%
per engine round.
"""

from __future__ import annotations

from contextvars import ContextVar, Token
from time import perf_counter
from typing import Any

from repro.obs.registry import MetricsRegistry, get_registry

STAGE_METRIC = "seesaw_stage_seconds"
"""Histogram family every span records into, labelled by stage name."""

STAGE_HELP = (
    "Per-stage wall-clock durations from hot-path trace spans "
    "(score/pool/select/merge/rerank/coalesce_wait/lock_wait)."
)


class _Runtime:
    """Process-global tracing switchboard (one instance, module-level)."""

    __slots__ = (
        "enabled",
        "_registry",
        "_stage_registry",
        "_stage_family",
        "_stage_children",
    )

    def __init__(self) -> None:
        self.enabled = True
        self._registry: "MetricsRegistry | None" = None
        self._stage_registry: "MetricsRegistry | None" = None
        self._stage_family = None
        self._stage_children: "dict[str, Any]" = {}

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def stage_family(self):
        registry = self.registry
        if self._stage_registry is not registry:
            self._stage_family = registry.histogram(
                STAGE_METRIC, STAGE_HELP, labels=("stage",)
            )
            self._stage_children = {}
            self._stage_registry = registry
        return self._stage_family

    def stage_child(self, stage: str):
        """The ``{stage=...}`` histogram child, memoized for the hot path.

        A span exit must not take the registry lock, so resolved children
        are cached per stage name; the cache follows registry swaps (both
        :func:`configure` and global :func:`~repro.obs.registry.set_registry`)
        by identity-checking the active registry on every call.
        """
        child = self._stage_children.get(stage)
        if child is not None and self._stage_registry is self.registry:
            return child
        child = self.stage_family().labels(stage)
        self._stage_children[stage] = child
        return child


_RUNTIME = _Runtime()

_request_id_var: "ContextVar[str | None]" = ContextVar(
    "seesaw_request_id", default=None
)
_trace_var: "ContextVar[RequestTrace | None]" = ContextVar(
    "seesaw_request_trace", default=None
)


def configure(
    enabled: "bool | None" = None,
    registry: "MetricsRegistry | None" = None,
) -> None:
    """Point the tracing runtime at a registry and flip the master switch.

    Called by ``SeeSawService`` from ``SeeSawConfig.telemetry``; tests call
    it directly to isolate or silence the runtime.  ``registry=None`` keeps
    following the process-global registry (including later
    :func:`~repro.obs.registry.set_registry` swaps).
    """
    if enabled is not None:
        _RUNTIME.enabled = bool(enabled)
    _RUNTIME._registry = registry
    _RUNTIME._stage_registry = None  # invalidate the memoized children


def tracing_enabled() -> bool:
    return _RUNTIME.enabled


def trace_registry() -> MetricsRegistry:
    """The registry spans currently record into."""
    return _RUNTIME.registry


# ----------------------------------------------------------------------
# request id propagation
# ----------------------------------------------------------------------
def set_request_id(request_id: "str | None") -> "Token[str | None]":
    """Bind the current request id to this context; returns the reset token."""
    return _request_id_var.set(request_id)


def reset_request_id(token: "Token[str | None]") -> None:
    _request_id_var.reset(token)


def current_request_id() -> "str | None":
    """The request id bound by ``RequestIdMiddleware``, if inside a request."""
    return _request_id_var.get()


# ----------------------------------------------------------------------
# per-request span collection
# ----------------------------------------------------------------------
class RequestTrace:
    """Accumulated span durations for one request (stage -> count/total)."""

    __slots__ = ("stages",)

    def __init__(self) -> None:
        self.stages: "dict[str, list[float]]" = {}

    def record(self, stage: str, seconds: float) -> None:
        entry = self.stages.get(stage)
        if entry is None:
            self.stages[stage] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def stage_millis(self) -> "dict[str, float]":
        """Per-stage totals in milliseconds (for the slow-request record)."""
        return {
            stage: round(total * 1000.0, 3)
            for stage, (_, total) in sorted(self.stages.items())
        }


def begin_request_trace() -> "Token[RequestTrace | None]":
    """Open a fresh span collector for the current context."""
    return _trace_var.set(RequestTrace())


def current_request_trace() -> "RequestTrace | None":
    return _trace_var.get()


def end_request_trace(token: "Token[RequestTrace | None]") -> "RequestTrace | None":
    """Close the collector opened by :func:`begin_request_trace`."""
    trace = _trace_var.get()
    _trace_var.reset(token)
    return trace


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
def observe_stage(stage: str, seconds: float) -> None:
    """Record an explicitly measured duration as if a span had wrapped it.

    For stages whose start and end live in different frames (coalescer wait,
    fused dispatch) where a context manager cannot bracket the work.
    """
    if _RUNTIME.enabled:
        _RUNTIME.stage_child(stage).observe(seconds)
    trace = _trace_var.get()
    if trace is not None:
        trace.record(stage, seconds)


class _Span:
    """A live timed span (only allocated when tracing is enabled)."""

    __slots__ = ("name", "attrs", "started", "elapsed")

    def __init__(self, name: str, attrs: "dict[str, Any]") -> None:
        self.name = name
        self.attrs = attrs
        self.started = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_Span":
        self.started = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = perf_counter() - self.started
        observe_stage(self.name, self.elapsed)


class _NoopSpan:
    """The shared disabled-mode span: enter/exit do nothing, record nothing."""

    __slots__ = ()

    name = ""
    attrs: "dict[str, Any]" = {}
    elapsed = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NOOP_SPAN = _NoopSpan()


def trace_span(name: str, **attrs: Any) -> "_Span | _NoopSpan":
    """A context manager timing one named stage of the current request.

    Enabled: returns a fresh :class:`_Span` that records its duration into
    the stage histogram and the per-request collector on exit.  Disabled:
    returns the shared :data:`NOOP_SPAN` singleton — the fast path allocates
    no span and touches no clock.  ``attrs`` are advisory context kept on
    the span object (shard index, row count); they are not exported as
    metric labels, which keeps span cardinality bounded by design.
    """
    if not _RUNTIME.enabled:
        return NOOP_SPAN
    return _Span(name, attrs)


class timed_acquire:
    """Context manager acquiring ``lock`` with the wait timed as a span.

    Only the time spent *waiting for* the lock is recorded (stage
    ``lock_wait`` by default), not the time spent holding it — the wait is
    the contention signal the scatter-gather roadmap item needs.
    """

    __slots__ = ("lock", "stage")

    def __init__(self, lock: Any, stage: str = "lock_wait") -> None:
        self.lock = lock
        self.stage = stage

    def __enter__(self) -> Any:
        if not _RUNTIME.enabled:
            self.lock.acquire()
            return self.lock
        started = perf_counter()
        self.lock.acquire()
        observe_stage(self.stage, perf_counter() - started)
        return self.lock

    def __exit__(self, *exc_info: object) -> None:
        self.lock.release()
