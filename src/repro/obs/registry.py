"""Thread-safe metrics registry: counters, gauges, bucketed histograms.

The measurement layer every serving component records into.  Three metric
kinds cover the stack's needs:

* :class:`Counter` — a monotone float (requests served, cache hits);
* :class:`Gauge` — a point-in-time value, either set explicitly or read
  through a callback at collection time (live session count);
* :class:`Histogram` — fixed upper-bound buckets with a running sum and
  count; p50/p99/p999 are *estimated* from the bucket counts by linear
  interpolation, so observation is O(log buckets) with no sample retention.

Labelled metrics go through a :class:`MetricFamily` whose child-series table
is **bounded**: past ``max_series`` distinct label sets, new label values
collapse into one ``_overflow`` series.  A mislabelled caller (say, a raw
URL used as a label) can therefore never grow the registry without bound —
the overflow series grows instead, and the exposition stays scrapeable.

One process-global registry (:func:`get_registry`) is the default sink; the
service layer and the tests can swap in private instances
(:func:`set_registry`, or the ``registry=`` parameters threaded through the
server stack) when isolation matters.

Exposition comes in two formats, both rendered from the same snapshot:
:meth:`MetricsRegistry.to_prometheus_text` (the ``text/plain; version=0.0.4``
scrape format) and :meth:`MetricsRegistry.to_json` (the ``/v1/metrics``
JSON body, quantile estimates included).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Mapping, Sequence

from repro.exceptions import ReproError


class MetricsError(ReproError):
    """Raised on inconsistent metric registration or bad observations."""


DEFAULT_LATENCY_BUCKETS: "tuple[float, ...]" = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)
"""Latency bucket upper bounds (seconds): 100µs to 10s, roughly 1-2.5-5 per
decade.  Wide enough that the same buckets serve both the sub-millisecond
engine stages and full request round trips, so every latency series in the
catalog is directly comparable."""

DEFAULT_SIZE_BUCKETS: "tuple[float, ...]" = (1, 2, 4, 8, 16, 32, 64, 128)
"""Bucket bounds for small cardinalities (batch/cohort sizes)."""

OVERFLOW_LABEL_VALUE = "_overflow"
"""The label value unseen label sets collapse into once a family reaches its
series bound."""


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value: float) -> str:
    """Prometheus-friendly number rendering (no trailing float noise)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(names: "tuple[str, ...]", values: "tuple[str, ...]") -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value (one series)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise MetricsError(f"Counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value: set explicitly or computed by a callback."""

    __slots__ = ("_lock", "_value", "callback")

    def __init__(self, callback: "Callable[[], float] | None" = None) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self.callback = callback

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-water marks, e.g. largest cohort)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self.callback is not None:
            return float(self.callback())
        return self._value


class Histogram:
    """Fixed-bucket latency/size histogram with interpolated quantiles.

    ``bounds`` are inclusive upper bounds (Prometheus ``le`` semantics: an
    observation equal to a bound lands in that bound's bucket); one implicit
    ``+Inf`` bucket catches everything above the last bound.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: "Sequence[float]" = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds:
            raise MetricsError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricsError(f"bucket bounds must be strictly increasing: {bounds}")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    # -- reads ---------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> "tuple[list[int], float, int]":
        """A consistent ``(bucket_counts, sum, count)`` triple."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the bucket the target rank falls in,
        with the previous bound (or 0) as the bucket's lower edge.  Ranks in
        the ``+Inf`` bucket clamp to the last finite bound — the honest
        answer given no per-sample retention.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        counts, _, total = self.snapshot()
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count > 0:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                fraction = (target - previous) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return self.bounds[-1]


_KIND_FACTORIES: "dict[str, Callable[..., Any]]" = {
    "counter": lambda bounds: Counter(),
    "gauge": lambda bounds: Gauge(),
    "histogram": lambda bounds: Histogram(bounds),
}


class MetricFamily:
    """One named metric and its labelled child series (bounded)."""

    __slots__ = ("name", "help", "kind", "label_names", "bounds", "max_series",
                 "_lock", "_children")

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        label_names: "tuple[str, ...]" = (),
        bounds: "Sequence[float] | None" = None,
        max_series: int = 64,
    ) -> None:
        if kind not in _KIND_FACTORIES:
            raise MetricsError(f"Unknown metric kind '{kind}'")
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = tuple(label_names)
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BUCKETS
        self.max_series = int(max_series)
        self._lock = threading.Lock()
        self._children: "dict[tuple[str, ...], Any]" = {}
        if not self.label_names:
            # Unlabelled families always expose exactly one series.
            self._children[()] = _KIND_FACTORIES[kind](self.bounds)

    def labels(self, *values: object, **kw: object) -> Any:
        """The child series for one label-value set (created on first use).

        Past ``max_series`` distinct sets, unseen sets collapse into the
        ``_overflow`` series so cardinality mistakes cannot grow the
        registry without bound.
        """
        if kw:
            if values:
                raise MetricsError("pass label values positionally or by name, not both")
            try:
                values = tuple(str(kw[name]) for name in self.label_names)
            except KeyError as exc:
                raise MetricsError(
                    f"Metric '{self.name}' labels are {self.label_names}, got {tuple(kw)}"
                ) from exc
        else:
            values = tuple(str(value) for value in values)
        if len(values) != len(self.label_names):
            raise MetricsError(
                f"Metric '{self.name}' expects {len(self.label_names)} label "
                f"values {self.label_names}, got {len(values)}"
            )
        child = self._children.get(values)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(values)
            if child is not None:
                return child
            if len(self._children) >= self.max_series:
                values = (OVERFLOW_LABEL_VALUE,) * len(self.label_names)
                child = self._children.get(values)
                if child is not None:
                    return child
            child = _KIND_FACTORIES[self.kind](self.bounds)
            self._children[values] = child
            return child

    @property
    def series_count(self) -> int:
        return len(self._children)

    # -- unlabelled conveniences ---------------------------------------
    def _solo(self) -> Any:
        if self.label_names:
            raise MetricsError(
                f"Metric '{self.name}' is labelled {self.label_names}; "
                "use .labels(...)"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def set_max(self, value: float) -> None:
        self._solo().set_max(value)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    @property
    def value(self) -> float:
        return self._solo().value

    def quantile(self, q: float) -> float:
        return self._solo().quantile(q)

    # -- collection ----------------------------------------------------
    def collect(self) -> "list[tuple[tuple[str, ...], Any]]":
        """A stable snapshot of ``(label_values, child)`` pairs."""
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A named table of metric families with idempotent registration."""

    def __init__(self, max_series_per_metric: int = 64) -> None:
        self._lock = threading.Lock()
        self._families: "dict[str, MetricFamily]" = {}
        self.max_series_per_metric = int(max_series_per_metric)

    # -- registration (get-or-create, so callers need no startup order) --
    def _register(
        self,
        name: str,
        help: str,
        kind: str,
        labels: "Sequence[str]" = (),
        bounds: "Sequence[float] | None" = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != tuple(labels):
                    raise MetricsError(
                        f"Metric '{name}' already registered as {family.kind}"
                        f"{family.label_names}, cannot re-register as "
                        f"{kind}{tuple(labels)}"
                    )
                return family
            family = MetricFamily(
                name,
                help,
                kind,
                tuple(labels),
                bounds=bounds,
                max_series=self.max_series_per_metric,
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labels: "Sequence[str]" = ()
    ) -> MetricFamily:
        return self._register(name, help, "counter", labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: "Sequence[str]" = (),
        callback: "Callable[[], float] | None" = None,
    ) -> MetricFamily:
        family = self._register(name, help, "gauge", labels)
        if callback is not None:
            # Live gauges re-read their source at collection; the latest
            # registrant owns the callback (one live value per name).
            family._solo().callback = callback
        return family

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: "Sequence[str]" = (),
        buckets: "Sequence[float]" = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, help, "histogram", labels, bounds=buckets)

    # -- reads ---------------------------------------------------------
    def families(self) -> "list[MetricFamily]":
        with self._lock:
            return list(self._families.values())

    def get(self, name: str) -> "MetricFamily | None":
        with self._lock:
            return self._families.get(name)

    # -- exposition ----------------------------------------------------
    def to_prometheus_text(self) -> str:
        """The ``text/plain; version=0.0.4`` scrape body."""
        lines: "list[str]" = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.collect():
                labelset = _render_labels(family.label_names, values)
                if family.kind in ("counter", "gauge"):
                    lines.append(
                        f"{family.name}{labelset} {_format_number(child.value)}"
                    )
                    continue
                counts, total_sum, total_count = child.snapshot()
                cumulative = 0
                for bound, bucket_count in zip(child.bounds, counts):
                    cumulative += bucket_count
                    bucket_labels = _render_labels(
                        family.label_names + ("le",),
                        values + (_format_number(bound),),
                    )
                    lines.append(f"{family.name}_bucket{bucket_labels} {cumulative}")
                cumulative += counts[-1]
                inf_labels = _render_labels(
                    family.label_names + ("le",), values + ("+Inf",)
                )
                lines.append(f"{family.name}_bucket{inf_labels} {cumulative}")
                lines.append(f"{family.name}_sum{labelset} {_format_number(total_sum)}")
                lines.append(f"{family.name}_count{labelset} {total_count}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> "dict[str, Any]":
        """The JSON exposition body (same snapshot, quantiles included)."""
        metrics: "list[dict[str, Any]]" = []
        for family in self.families():
            series: "list[dict[str, Any]]" = []
            for values, child in family.collect():
                labels: "Mapping[str, str]" = dict(zip(family.label_names, values))
                if family.kind in ("counter", "gauge"):
                    series.append({"labels": labels, "value": child.value})
                    continue
                counts, total_sum, total_count = child.snapshot()
                series.append(
                    {
                        "labels": labels,
                        "count": total_count,
                        "sum": total_sum,
                        "buckets": [
                            [_format_number(bound), count]
                            for bound, count in zip(child.bounds, counts)
                        ]
                        + [["+Inf", counts[-1]]],
                        "p50": child.quantile(0.50),
                        "p99": child.quantile(0.99),
                        "p999": child.quantile(0.999),
                    }
                )
            metrics.append(
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "series": series,
                }
            )
        return {"metrics": metrics}


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _GLOBAL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous
