"""Observability subsystem: metrics registry, tracing spans, exposition.

``repro.obs`` is the measurement layer the serving stack records into —
see :mod:`repro.obs.registry` for the metric model and
:mod:`repro.obs.trace` for hot-path spans.  ``docs/observability.md`` holds
the metric catalog and span taxonomy.
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsError,
    MetricsRegistry,
    OVERFLOW_LABEL_VALUE,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    NOOP_SPAN,
    STAGE_METRIC,
    RequestTrace,
    begin_request_trace,
    configure,
    current_request_id,
    current_request_trace,
    end_request_trace,
    observe_stage,
    reset_request_id,
    set_request_id,
    timed_acquire,
    trace_registry,
    trace_span,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsError",
    "MetricsRegistry",
    "OVERFLOW_LABEL_VALUE",
    "get_registry",
    "set_registry",
    "NOOP_SPAN",
    "STAGE_METRIC",
    "RequestTrace",
    "begin_request_trace",
    "configure",
    "current_request_id",
    "current_request_trace",
    "end_request_trace",
    "observe_stage",
    "reset_request_id",
    "set_request_id",
    "timed_acquire",
    "trace_registry",
    "trace_span",
    "tracing_enabled",
]
