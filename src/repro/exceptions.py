"""Exception hierarchy for the SeeSaw reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at the API boundary while still distinguishing specific
failure modes when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, malformed, or out of range."""


class DatasetError(ReproError):
    """A dataset is malformed or an entity (image, category) is unknown."""


class EmbeddingError(ReproError):
    """The embedding model was asked for something it cannot produce."""


class VectorStoreError(ReproError):
    """A vector store operation failed (empty store, dimension mismatch...)."""


class IndexingError(ReproError):
    """Building a multiscale index or kNN graph failed."""


class OptimizationError(ReproError):
    """The optimizer failed to make progress or received a bad objective."""


class SessionError(ReproError):
    """An interactive search session was used incorrectly."""


class UnknownResourceError(SessionError):
    """A referenced session or dataset does not exist (HTTP 404)."""


class RetryableError(ReproError):
    """Base for transient rejections that may carry a server backoff hint.

    ``retry_after_seconds`` is the server's own estimate of when repeating
    the request can succeed (a rate limiter knows its refill time, a load
    shedder reports a backoff hint).  It rides the wire as the standard
    ``Retry-After`` header plus the error envelope's details, so both the
    in-process and the HTTP client surface the same attribute.
    """

    def __init__(
        self, message: str, retry_after_seconds: "float | None" = None
    ) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class ServiceOverloadedError(SessionError, RetryableError):
    """The service is at capacity or draining (HTTP 503); retry elsewhere/later."""

    def __init__(
        self, message: str, retry_after_seconds: "float | None" = None
    ) -> None:
        SessionError.__init__(self, message)
        self.retry_after_seconds = retry_after_seconds


class RateLimitedError(RetryableError):
    """A client exceeded its request budget (HTTP 429); safe to retry later."""


class DeadlineExceededError(ReproError):
    """The request's deadline expired before the work finished (HTTP 504).

    Raised server-side the moment a request's propagated ``X-Deadline-Ms``
    budget runs out — before expensive work starts where possible, so a dead
    request's cohort slot, engine dispatch, and lock time are not burned on
    an answer nobody is waiting for.  Not retryable within the same call:
    the caller's budget is gone; a fresh call carries a fresh deadline.
    """


class CircuitOpenError(ReproError):
    """The client's circuit breaker is open for this host; call not attempted.

    Raised client-side only: after ``breaker_failure_threshold`` consecutive
    transport-level failures the breaker stops hammering a dead host and
    fails fast until the ``breaker_reset_s`` cooldown admits a probe.
    """

    def __init__(
        self, message: str, retry_after_seconds: "float | None" = None
    ) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class InternalServiceError(ReproError):
    """The server failed unexpectedly (HTTP 500).

    Raised client-side when a `/v1` error envelope carries the ``internal``
    code, so callers can tell a transient server fault (retryable) from the
    non-retryable 4xx families without parsing envelopes themselves.
    """


class IdempotencyConflictError(SessionError):
    """An idempotency key was replayed with a different payload (HTTP 409)."""


class TransportError(ReproError):
    """An HTTP request or response payload is malformed."""


class ConnectionFailedError(TransportError):
    """The connection died before a well-formed response arrived.

    Client-side only — the server never encodes it.  Distinguished from the
    plain :class:`TransportError` (malformed payloads, validation failures)
    because the retry layer treats the two differently: a connection that
    was never established is always safe to retry, one that died mid-request
    only for calls the caller marked idempotent.
    """

    def __init__(self, message: str, request_sent: bool = True) -> None:
        super().__init__(message)
        self.request_sent = request_sent


class StoreError(ReproError):
    """Persisting or loading a serialized index failed."""


class BenchmarkError(ReproError):
    """A benchmark experiment was configured or executed incorrectly."""
