"""Exception hierarchy for the SeeSaw reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at the API boundary while still distinguishing specific
failure modes when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, malformed, or out of range."""


class DatasetError(ReproError):
    """A dataset is malformed or an entity (image, category) is unknown."""


class EmbeddingError(ReproError):
    """The embedding model was asked for something it cannot produce."""


class VectorStoreError(ReproError):
    """A vector store operation failed (empty store, dimension mismatch...)."""


class IndexingError(ReproError):
    """Building a multiscale index or kNN graph failed."""


class OptimizationError(ReproError):
    """The optimizer failed to make progress or received a bad objective."""


class SessionError(ReproError):
    """An interactive search session was used incorrectly."""


class UnknownResourceError(SessionError):
    """A referenced session or dataset does not exist (HTTP 404)."""


class ServiceOverloadedError(SessionError):
    """The service is at its concurrent-session capacity (HTTP 503)."""


class RateLimitedError(ReproError):
    """A client exceeded its request budget (HTTP 429); safe to retry later."""


class InternalServiceError(ReproError):
    """The server failed unexpectedly (HTTP 500).

    Raised client-side when a `/v1` error envelope carries the ``internal``
    code, so callers can tell a transient server fault (retryable) from the
    non-retryable 4xx families without parsing envelopes themselves.
    """


class IdempotencyConflictError(SessionError):
    """An idempotency key was replayed with a different payload (HTTP 409)."""


class TransportError(ReproError):
    """An HTTP request or response payload is malformed."""


class StoreError(ReproError):
    """Persisting or loading a serialized index failed."""


class BenchmarkError(ReproError):
    """A benchmark experiment was configured or executed incorrectly."""
