"""Synthetic scene generation.

A :class:`DatasetProfile` captures the statistics that matter to SeeSaw's
evaluation for each of the four paper datasets (COCO, LVIS, ObjectNet, BDD):
how many categories exist, how frequent and how large their objects are, how
big images are, and how hard the text query for the category tends to be (the
*alignment deficit* long tail from Figure 1).  :class:`SceneGenerator` turns a
profile into a concrete :class:`~repro.data.dataset.ImageDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.dataset import CategoryInfo, ImageDataset
from repro.data.geometry import BoundingBox
from repro.data.image import ObjectInstance, SyntheticImage
from repro.exceptions import DatasetError
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class CategorySpec:
    """Explicitly named category injected into a generated dataset.

    Profiles use these for the handful of semantically meaningful queries the
    paper discusses (wheelchair, bicycle, dog, ...), on top of the bulk of
    procedurally named categories.
    """

    name: str
    frequency: float
    alignment_deficit: float
    object_scale: float = 0.35
    """Typical object side length as a fraction of the image side."""


@dataclass(frozen=True)
class DatasetProfile:
    """Statistical profile of a synthetic dataset."""

    name: str
    description: str
    image_count: int
    category_count: int
    image_sizes: Sequence[tuple[int, int]]
    contexts: Sequence[str]
    objects_per_image: tuple[int, int]
    """Inclusive (low, high) range of labelled objects per image."""
    object_scale_range: tuple[float, float]
    """Range of object side length as a fraction of min(image side)."""
    frequency_range: tuple[float, float]
    """Range of category frequencies (probability an image shows the category)."""
    rare_fraction: float
    """Fraction of categories forced to the low end of the frequency range."""
    easy_query_fraction: float
    """Fraction of categories with a near-zero alignment deficit."""
    hard_deficit_range: tuple[float, float]
    """Alignment-deficit range (radians) for the hard (long-tail) categories."""
    easy_deficit_range: tuple[float, float] = (0.0, 0.15)
    locality_noise: float = 0.04
    min_positives: int = 4
    named_categories: Sequence[CategorySpec] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.image_count < 1:
            raise DatasetError("image_count must be >= 1")
        if self.category_count < 1:
            raise DatasetError("category_count must be >= 1")
        if not self.image_sizes:
            raise DatasetError("image_sizes must be non-empty")
        if not self.contexts:
            raise DatasetError("contexts must be non-empty")
        low, high = self.objects_per_image
        if low < 0 or high < low:
            raise DatasetError("objects_per_image must be a valid (low, high) range")
        if not 0 < self.object_scale_range[0] <= self.object_scale_range[1] <= 1:
            raise DatasetError("object_scale_range must be within (0, 1]")
        if not 0 < self.frequency_range[0] <= self.frequency_range[1] <= 1:
            raise DatasetError("frequency_range must be within (0, 1]")


class SceneGenerator:
    """Generates an :class:`ImageDataset` from a :class:`DatasetProfile`."""

    def __init__(self, profile: DatasetProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed

    def generate(self) -> ImageDataset:
        """Generate the full dataset deterministically from the profile seed."""
        categories = self._generate_categories()
        images = self._generate_images(categories)
        images = self._ensure_minimum_positives(images, categories)
        return ImageDataset(
            name=self.profile.name,
            images=images,
            categories=categories,
            description=self.profile.description,
        )

    # ------------------------------------------------------------------
    # categories
    # ------------------------------------------------------------------
    def _generate_categories(self) -> list[CategoryInfo]:
        profile = self.profile
        rng = derive_rng(self.seed, profile.name, "categories")
        categories: list[CategoryInfo] = []
        named = list(profile.named_categories)
        for spec in named:
            categories.append(
                CategoryInfo(
                    name=spec.name,
                    prompt=f"a {spec.name}",
                    alignment_deficit=spec.alignment_deficit,
                    locality_noise=profile.locality_noise,
                    frequency=spec.frequency,
                )
            )
        remaining = profile.category_count - len(named)
        for index in range(max(0, remaining)):
            name = f"{profile.name}_category_{index:04d}"
            frequency = self._sample_frequency(rng)
            deficit = self._sample_deficit(rng)
            categories.append(
                CategoryInfo(
                    name=name,
                    prompt=f"a {name.replace('_', ' ')}",
                    alignment_deficit=deficit,
                    locality_noise=profile.locality_noise,
                    frequency=frequency,
                )
            )
        return categories

    def _sample_frequency(self, rng: np.random.Generator) -> float:
        low, high = self.profile.frequency_range
        if rng.random() < self.profile.rare_fraction:
            # Rare categories sit near the bottom of the frequency range.
            return float(low * (1.0 + rng.random()))
        return float(rng.uniform(low, high))

    def _sample_deficit(self, rng: np.random.Generator) -> float:
        if rng.random() < self.profile.easy_query_fraction:
            low, high = self.profile.easy_deficit_range
        else:
            low, high = self.profile.hard_deficit_range
        return float(rng.uniform(low, high))

    # ------------------------------------------------------------------
    # images
    # ------------------------------------------------------------------
    def _generate_images(
        self, categories: Sequence[CategoryInfo]
    ) -> list[SyntheticImage]:
        profile = self.profile
        rng = derive_rng(self.seed, profile.name, "images")
        frequencies = np.array([info.frequency for info in categories], dtype=np.float64)
        weights = frequencies / frequencies.sum()
        scale_by_name = {
            spec.name: spec.object_scale for spec in profile.named_categories
        }
        images: list[SyntheticImage] = []
        instance_counter = 0
        for image_id in range(profile.image_count):
            width, height = profile.image_sizes[
                int(rng.integers(0, len(profile.image_sizes)))
            ]
            context = profile.contexts[int(rng.integers(0, len(profile.contexts)))]
            low, high = profile.objects_per_image
            object_count = int(rng.integers(low, high + 1))
            objects: list[ObjectInstance] = []
            for _ in range(object_count):
                category = categories[int(rng.choice(len(categories), p=weights))]
                scale = scale_by_name.get(category.name)
                box = self._sample_box(rng, width, height, scale)
                distinctiveness = float(rng.uniform(0.7, 1.0))
                objects.append(
                    ObjectInstance(
                        category=category.name,
                        box=box,
                        instance_id=instance_counter,
                        distinctiveness=distinctiveness,
                    )
                )
                instance_counter += 1
            images.append(
                SyntheticImage(
                    image_id=image_id,
                    width=width,
                    height=height,
                    context=context,
                    objects=tuple(objects),
                )
            )
        return images

    def _sample_box(
        self,
        rng: np.random.Generator,
        width: int,
        height: int,
        scale_override: "float | None" = None,
    ) -> BoundingBox:
        low, high = self.profile.object_scale_range
        scale = scale_override if scale_override is not None else float(rng.uniform(low, high))
        side = max(8.0, scale * min(width, height))
        box_w = min(float(width), side * float(rng.uniform(0.8, 1.2)))
        box_h = min(float(height), side * float(rng.uniform(0.8, 1.2)))
        x = float(rng.uniform(0.0, width - box_w)) if width > box_w else 0.0
        y = float(rng.uniform(0.0, height - box_h)) if height > box_h else 0.0
        return BoundingBox(x, y, box_w, box_h)

    # ------------------------------------------------------------------
    # post-processing
    # ------------------------------------------------------------------
    def _ensure_minimum_positives(
        self,
        images: list[SyntheticImage],
        categories: Sequence[CategoryInfo],
    ) -> list[SyntheticImage]:
        """Guarantee every category appears in at least ``min_positives`` images.

        Rare categories sampled purely by frequency can end up with zero
        positives in a small synthetic dataset; the paper's benchmark needs
        every evaluated query to have at least a few findable results.
        """
        profile = self.profile
        rng = derive_rng(self.seed, profile.name, "ensure-positives")
        scale_by_name = {
            spec.name: spec.object_scale for spec in profile.named_categories
        }
        by_id = {image.image_id: image for image in images}
        positives: dict[str, set[int]] = {info.name: set() for info in categories}
        for image in images:
            for category in image.categories:
                positives[category].add(image.image_id)
        next_instance_id = 1 + max(
            (instance.instance_id for image in images for instance in image.objects),
            default=0,
        )
        for info in categories:
            missing = profile.min_positives - len(positives[info.name])
            if missing <= 0:
                continue
            candidates = [
                image_id
                for image_id in by_id
                if image_id not in positives[info.name]
            ]
            chosen = rng.choice(len(candidates), size=min(missing, len(candidates)), replace=False)
            for index in np.atleast_1d(chosen):
                image = by_id[candidates[int(index)]]
                box = self._sample_box(
                    rng, image.width, image.height, scale_by_name.get(info.name)
                )
                instance = ObjectInstance(
                    category=info.name,
                    box=box,
                    instance_id=next_instance_id,
                    distinctiveness=float(rng.uniform(0.7, 1.0)),
                )
                next_instance_id += 1
                by_id[image.image_id] = SyntheticImage(
                    image_id=image.image_id,
                    width=image.width,
                    height=image.height,
                    context=image.context,
                    objects=image.objects + (instance,),
                )
                positives[info.name].add(image.image_id)
        return [by_id[image.image_id] for image in images]
