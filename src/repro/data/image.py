"""Synthetic images: a size, a background context, and object instances.

The reproduction never renders pixels.  The embedding substrate only needs to
know *what* is in a region (which objects, how much of the region they cover,
and what the scene context is), which is exactly what these records capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.data.geometry import BoundingBox
from repro.exceptions import DatasetError


@dataclass(frozen=True)
class ObjectInstance:
    """One labelled object in an image."""

    category: str
    box: BoundingBox
    instance_id: int = 0
    distinctiveness: float = 1.0
    """How visually salient the instance is relative to its background; the
    synthetic embedding scales the object's contribution to a patch vector by
    this value (occlusion, blur and tiny objects reduce it)."""

    def __post_init__(self) -> None:
        if not self.category:
            raise DatasetError("ObjectInstance.category must be non-empty")
        if not 0.0 < self.distinctiveness <= 1.0:
            raise DatasetError(
                f"distinctiveness must be in (0, 1], got {self.distinctiveness}"
            )


@dataclass(frozen=True)
class SyntheticImage:
    """A synthetic scene: image size, background context label, objects."""

    image_id: int
    width: int
    height: int
    context: str
    objects: tuple[ObjectInstance, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise DatasetError(
                f"Image {self.image_id} has non-positive size {self.width}x{self.height}"
            )
        for instance in self.objects:
            box = instance.box
            if box.x < 0 or box.y < 0 or box.x2 > self.width or box.y2 > self.height:
                raise DatasetError(
                    f"Object box {box} falls outside image {self.image_id} "
                    f"({self.width}x{self.height})"
                )

    @property
    def full_box(self) -> BoundingBox:
        """Bounding box covering the entire image."""
        return BoundingBox.full_image(self.width, self.height)

    @property
    def categories(self) -> frozenset[str]:
        """The set of categories present in the image."""
        return frozenset(instance.category for instance in self.objects)

    def contains_category(self, category: str) -> bool:
        """True when at least one object of ``category`` is present."""
        return any(instance.category == category for instance in self.objects)

    def instances_of(self, category: str) -> tuple[ObjectInstance, ...]:
        """All instances of ``category`` in this image."""
        return tuple(
            instance for instance in self.objects if instance.category == category
        )

    def objects_in_region(
        self, region: BoundingBox, min_overlap: float = 0.0
    ) -> tuple[tuple[ObjectInstance, float], ...]:
        """Objects intersecting ``region`` with the fraction of the object inside.

        Returns ``(instance, visible_fraction)`` pairs where ``visible_fraction``
        is the fraction of the object's own box that falls inside ``region``.
        Pairs with a fraction at or below ``min_overlap`` are dropped.
        """
        hits: list[tuple[ObjectInstance, float]] = []
        for instance in self.objects:
            fraction = instance.box.overlap_fraction(region)
            if fraction > min_overlap:
                hits.append((instance, fraction))
        return tuple(hits)

    def ground_truth_boxes(self, category: str) -> tuple[BoundingBox, ...]:
        """Boxes of every instance of ``category`` (the oracle feedback source)."""
        return tuple(instance.box for instance in self.instances_of(category))


def count_category_images(images: Iterable[SyntheticImage], category: str) -> int:
    """Number of images containing at least one instance of ``category``."""
    return sum(1 for image in images if image.contains_category(category))
