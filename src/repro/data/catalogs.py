"""Dataset catalogs: synthetic stand-ins for the paper's four datasets.

The profiles below do not reproduce COCO/LVIS/ObjectNet/BDD pixel content —
they reproduce the *statistics the evaluation depends on*:

* **COCO-like**  — few, common, large, easy categories; zero-shot is strong.
* **LVIS-like**  — many categories, many small objects per image, a long tail
  of rare and misaligned queries.
* **ObjectNet-like** — fixed 224x224 images with one centered object, many
  categories, a substantial fraction of misaligned queries (the dataset is
  bias-controlled, so the text prompt often aligns poorly).
* **BDD-like**   — large driving-scene images, few categories, mostly very
  common and easy (car, person), with rare hard queries (wheelchair, "car
  with open door") whose objects are tiny — the case multiscale fixes.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.data.dataset import ImageDataset
from repro.data.generators import CategorySpec, DatasetProfile, SceneGenerator
from repro.exceptions import DatasetError

COCO_PROFILE = DatasetProfile(
    name="coco",
    description="COCO-like: common, large, well-aligned object categories.",
    image_count=1200,
    category_count=60,
    image_sizes=((640, 480), (640, 426), (500, 375)),
    contexts=("indoor", "outdoor", "street", "sports", "food"),
    objects_per_image=(2, 5),
    object_scale_range=(0.30, 0.70),
    frequency_range=(0.02, 0.12),
    rare_fraction=0.10,
    easy_query_fraction=0.92,
    hard_deficit_range=(0.90, 1.30),
    locality_noise=0.20,
    named_categories=(
        CategorySpec("dog", frequency=0.05, alignment_deficit=0.08, object_scale=0.5),
        CategorySpec("spoon", frequency=0.03, alignment_deficit=0.12, object_scale=0.2),
        CategorySpec("bicycle", frequency=0.05, alignment_deficit=0.10, object_scale=0.45),
    ),
)

LVIS_PROFILE = DatasetProfile(
    name="lvis",
    description="LVIS-like: large vocabulary, many small objects, long rare tail.",
    image_count=1200,
    category_count=150,
    image_sizes=((640, 480), (640, 426), (500, 375)),
    contexts=("indoor", "outdoor", "street", "kitchen", "office"),
    objects_per_image=(4, 10),
    object_scale_range=(0.10, 0.45),
    frequency_range=(0.004, 0.06),
    rare_fraction=0.45,
    easy_query_fraction=0.60,
    hard_deficit_range=(0.85, 1.35),
    locality_noise=0.24,
    named_categories=(
        CategorySpec("dustpan", frequency=0.008, alignment_deficit=0.85, object_scale=0.2),
        CategorySpec("melon", frequency=0.010, alignment_deficit=0.70, object_scale=0.25),
        CategorySpec("egg_carton", frequency=0.008, alignment_deficit=0.95, object_scale=0.22),
    ),
)

OBJECTNET_PROFILE = DatasetProfile(
    name="objectnet",
    description="ObjectNet-like: fixed-size, centered single objects, bias-controlled.",
    image_count=1000,
    category_count=100,
    image_sizes=((224, 224),),
    contexts=("household",),
    objects_per_image=(1, 1),
    object_scale_range=(0.70, 0.95),
    frequency_range=(0.006, 0.02),
    rare_fraction=0.2,
    easy_query_fraction=0.60,
    hard_deficit_range=(0.90, 1.40),
    locality_noise=0.22,
    named_categories=(
        CategorySpec("wheelchair", frequency=0.008, alignment_deficit=1.0, object_scale=0.8),
        CategorySpec("dustpan", frequency=0.009, alignment_deficit=0.9, object_scale=0.8),
        CategorySpec("egg_carton", frequency=0.009, alignment_deficit=0.8, object_scale=0.8),
        CategorySpec("spoon", frequency=0.010, alignment_deficit=0.15, object_scale=0.8),
    ),
)

BDD_PROFILE = DatasetProfile(
    name="bdd",
    description="BDD-like: large dash-cam scenes, few classes, tiny rare objects.",
    image_count=1000,
    category_count=12,
    image_sizes=((1280, 720),),
    contexts=("highway", "city_street", "residential", "night_street"),
    objects_per_image=(3, 8),
    object_scale_range=(0.06, 0.25),
    frequency_range=(0.05, 0.45),
    rare_fraction=0.0,
    easy_query_fraction=0.85,
    hard_deficit_range=(0.45, 0.9),
    locality_noise=0.22,
    min_positives=4,
    named_categories=(
        CategorySpec("car", frequency=0.60, alignment_deficit=0.05, object_scale=0.18),
        CategorySpec("person", frequency=0.35, alignment_deficit=0.06, object_scale=0.10),
        CategorySpec("bicycle", frequency=0.10, alignment_deficit=0.10, object_scale=0.12),
        CategorySpec("dog", frequency=0.015, alignment_deficit=0.55, object_scale=0.08),
        CategorySpec("wheelchair", frequency=0.006, alignment_deficit=1.05, object_scale=0.07),
        CategorySpec(
            "car_with_open_door", frequency=0.005, alignment_deficit=1.15, object_scale=0.16
        ),
    ),
)

DATASET_PROFILES: Mapping[str, DatasetProfile] = {
    "coco": COCO_PROFILE,
    "lvis": LVIS_PROFILE,
    "objectnet": OBJECTNET_PROFILE,
    "bdd": BDD_PROFILE,
}


def _scaled_profile(profile: DatasetProfile, size_scale: float) -> DatasetProfile:
    """Scale the image count of a profile (used by tests and quick benches)."""
    if size_scale == 1.0:
        return profile
    image_count = max(20, int(round(profile.image_count * size_scale)))
    category_count = profile.category_count
    if size_scale < 1.0:
        # Keep per-category positive counts workable by shrinking the
        # vocabulary with the data, never below the named categories.
        category_count = max(
            len(profile.named_categories) + 4,
            int(round(profile.category_count * max(size_scale, 0.2))),
        )
    return DatasetProfile(
        name=profile.name,
        description=profile.description,
        image_count=image_count,
        category_count=category_count,
        image_sizes=profile.image_sizes,
        contexts=profile.contexts,
        objects_per_image=profile.objects_per_image,
        object_scale_range=profile.object_scale_range,
        frequency_range=profile.frequency_range,
        rare_fraction=profile.rare_fraction,
        easy_query_fraction=profile.easy_query_fraction,
        hard_deficit_range=profile.hard_deficit_range,
        easy_deficit_range=profile.easy_deficit_range,
        locality_noise=profile.locality_noise,
        min_positives=profile.min_positives,
        named_categories=profile.named_categories,
    )


def load_dataset(name: str, seed: int = 0, size_scale: float = 1.0) -> ImageDataset:
    """Generate one of the four named synthetic datasets.

    Parameters
    ----------
    name:
        One of ``"coco"``, ``"lvis"``, ``"objectnet"``, ``"bdd"``.
    seed:
        Seed controlling the generated scenes (datasets are deterministic in it).
    size_scale:
        Multiplier on the number of images, useful for fast tests.
    """
    try:
        profile = DATASET_PROFILES[name]
    except KeyError as exc:
        raise DatasetError(
            f"Unknown dataset '{name}'; expected one of {sorted(DATASET_PROFILES)}"
        ) from exc
    return SceneGenerator(_scaled_profile(profile, size_scale), seed=seed).generate()


def _make_loader(name: str) -> Callable[..., ImageDataset]:
    def loader(seed: int = 0, size_scale: float = 1.0) -> ImageDataset:
        return load_dataset(name, seed=seed, size_scale=size_scale)

    loader.__name__ = f"{name}_like"
    loader.__doc__ = f"Generate the {name.upper()}-like synthetic dataset."
    return loader


coco_like = _make_loader("coco")
lvis_like = _make_loader("lvis")
objectnet_like = _make_loader("objectnet")
bdd_like = _make_loader("bdd")
