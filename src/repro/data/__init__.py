"""Synthetic image-dataset substrate.

The paper evaluates on COCO, LVIS, ObjectNet, and BDD.  Those datasets are
used only through their object annotations (categories + boxes) and their
image-size statistics, so this package provides synthetic datasets exposing
the same structure: images containing object instances with bounding boxes,
organised into categories whose frequency and typical object size follow
per-dataset profiles.
"""

from repro.data.catalogs import (
    DATASET_PROFILES,
    bdd_like,
    coco_like,
    load_dataset,
    lvis_like,
    objectnet_like,
)
from repro.data.dataset import CategoryInfo, DatasetStatistics, ImageDataset
from repro.data.generators import DatasetProfile, SceneGenerator
from repro.data.geometry import BoundingBox
from repro.data.image import ObjectInstance, SyntheticImage

__all__ = [
    "BoundingBox",
    "ObjectInstance",
    "SyntheticImage",
    "CategoryInfo",
    "ImageDataset",
    "DatasetStatistics",
    "DatasetProfile",
    "SceneGenerator",
    "DATASET_PROFILES",
    "coco_like",
    "lvis_like",
    "objectnet_like",
    "bdd_like",
    "load_dataset",
]
