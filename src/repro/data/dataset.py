"""Dataset container: images, category metadata, and derived statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.data.image import SyntheticImage
from repro.exceptions import DatasetError


@dataclass(frozen=True)
class CategoryInfo:
    """Metadata about one searchable category in a dataset.

    ``alignment_deficit`` is the angular offset (radians) between the CLIP
    text embedding of the category name and the category's latent concept
    direction.  It is part of the dataset definition (not the embedding)
    because the paper's observation is that difficulty is a property of a
    *query on a dataset*; it lets us construct the long tail of hard queries
    that Figure 1 documents.
    """

    name: str
    prompt: str
    alignment_deficit: float = 0.0
    locality_noise: float = 0.03
    frequency: float = 0.1

    def __post_init__(self) -> None:
        if not self.name:
            raise DatasetError("CategoryInfo.name must be non-empty")
        if self.alignment_deficit < 0:
            raise DatasetError("alignment_deficit must be >= 0")
        if self.locality_noise < 0:
            raise DatasetError("locality_noise must be >= 0")
        if not 0.0 < self.frequency <= 1.0:
            raise DatasetError("frequency must be in (0, 1]")


@dataclass(frozen=True)
class DatasetStatistics:
    """Summary statistics used in reports and latency experiments."""

    name: str
    image_count: int
    category_count: int
    object_count: int
    mean_objects_per_image: float
    mean_image_pixels: float
    positives_per_category: Mapping[str, int]

    def rare_categories(self, max_positives: int) -> list[str]:
        """Categories with at most ``max_positives`` positive images."""
        return sorted(
            name
            for name, count in self.positives_per_category.items()
            if count <= max_positives
        )


@dataclass
class ImageDataset:
    """A searchable synthetic image dataset.

    The dataset is immutable in practice: images and categories are provided
    at construction time and only derived lookups are computed afterwards.
    """

    name: str
    images: Sequence[SyntheticImage]
    categories: Sequence[CategoryInfo]
    description: str = ""
    _category_index: dict[str, CategoryInfo] = field(init=False, repr=False)
    _image_index: dict[int, SyntheticImage] = field(init=False, repr=False)
    _positives: dict[str, frozenset[int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.images:
            raise DatasetError(f"Dataset '{self.name}' has no images")
        if not self.categories:
            raise DatasetError(f"Dataset '{self.name}' has no categories")
        self.images = tuple(self.images)
        self.categories = tuple(self.categories)
        self._category_index = {info.name: info for info in self.categories}
        if len(self._category_index) != len(self.categories):
            raise DatasetError(f"Dataset '{self.name}' has duplicate category names")
        self._image_index = {image.image_id: image for image in self.images}
        if len(self._image_index) != len(self.images):
            raise DatasetError(f"Dataset '{self.name}' has duplicate image ids")
        known = set(self._category_index)
        positives: dict[str, set[int]] = {name: set() for name in known}
        for image in self.images:
            for category in image.categories:
                if category not in known:
                    raise DatasetError(
                        f"Image {image.image_id} uses unknown category '{category}'"
                    )
                positives[category].add(image.image_id)
        self._positives = {
            name: frozenset(ids) for name, ids in positives.items()
        }

    def __len__(self) -> int:
        return len(self.images)

    def __iter__(self) -> Iterator[SyntheticImage]:
        return iter(self.images)

    @property
    def category_names(self) -> tuple[str, ...]:
        """All category names, in catalog order."""
        return tuple(info.name for info in self.categories)

    def category(self, name: str) -> CategoryInfo:
        """Look up category metadata by name."""
        try:
            return self._category_index[name]
        except KeyError as exc:
            raise DatasetError(
                f"Unknown category '{name}' in dataset '{self.name}'"
            ) from exc

    def image(self, image_id: int) -> SyntheticImage:
        """Look up an image by id."""
        try:
            return self._image_index[image_id]
        except KeyError as exc:
            raise DatasetError(
                f"Unknown image id {image_id} in dataset '{self.name}'"
            ) from exc

    def positive_image_ids(self, category: str) -> frozenset[int]:
        """Ids of images containing ``category`` (ground-truth relevance)."""
        self.category(category)
        return self._positives[category]

    def positive_count(self, category: str) -> int:
        """Number of images containing ``category``."""
        return len(self.positive_image_ids(category))

    def is_relevant(self, image_id: int, category: str) -> bool:
        """Ground-truth relevance judgement used by the oracle and metrics."""
        return image_id in self.positive_image_ids(category)

    def searchable_categories(self, min_positives: int = 1) -> tuple[str, ...]:
        """Categories with at least ``min_positives`` positive images."""
        return tuple(
            name
            for name in self.category_names
            if self.positive_count(name) >= min_positives
        )

    def statistics(self) -> DatasetStatistics:
        """Compute summary statistics for reporting."""
        object_count = sum(len(image.objects) for image in self.images)
        mean_pixels = sum(
            float(image.width * image.height) for image in self.images
        ) / len(self.images)
        return DatasetStatistics(
            name=self.name,
            image_count=len(self.images),
            category_count=len(self.categories),
            object_count=object_count,
            mean_objects_per_image=object_count / len(self.images),
            mean_image_pixels=mean_pixels,
            positives_per_category={
                name: self.positive_count(name) for name in self.category_names
            },
        )

    def subset(self, image_ids: Iterable[int], name: "str | None" = None) -> "ImageDataset":
        """A new dataset restricted to ``image_ids`` (categories unchanged)."""
        wanted = set(image_ids)
        images = [image for image in self.images if image.image_id in wanted]
        return ImageDataset(
            name=name or f"{self.name}-subset",
            images=images,
            categories=self.categories,
            description=self.description,
        )
