"""Axis-aligned bounding boxes and overlap math.

Boxes are the unit of user feedback in SeeSaw: the user draws boxes around
relevant regions, and the multiscale index compares those boxes with the
pre-indexed patch boxes to derive positive / negative patch labels (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DatasetError


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned box in pixel coordinates: ``(x, y)`` is the top-left."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise DatasetError(
                f"BoundingBox must have positive size, got {self.width}x{self.height}"
            )

    @property
    def x2(self) -> float:
        """Right edge coordinate."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Bottom edge coordinate."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Box area in square pixels."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """The ``(cx, cy)`` center point."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def intersection(self, other: "BoundingBox") -> float:
        """Area of the intersection with ``other`` (0 when disjoint)."""
        overlap_w = min(self.x2, other.x2) - max(self.x, other.x)
        overlap_h = min(self.y2, other.y2) - max(self.y, other.y)
        if overlap_w <= 0 or overlap_h <= 0:
            return 0.0
        return overlap_w * overlap_h

    def iou(self, other: "BoundingBox") -> float:
        """Intersection-over-union with ``other``."""
        inter = self.intersection(other)
        if inter == 0.0:
            return 0.0
        return inter / (self.area + other.area - inter)

    def overlap_fraction(self, other: "BoundingBox") -> float:
        """Fraction of *this* box covered by ``other``."""
        return self.intersection(other) / self.area

    def overlaps(self, other: "BoundingBox") -> bool:
        """True when the two boxes share any area."""
        return self.intersection(other) > 0.0

    def contains_point(self, x: float, y: float) -> bool:
        """True when the point ``(x, y)`` lies inside the box."""
        return self.x <= x <= self.x2 and self.y <= y <= self.y2

    def clipped_to(self, width: float, height: float) -> "BoundingBox":
        """Return this box clipped to an image of size ``width`` x ``height``."""
        x1 = max(0.0, self.x)
        y1 = max(0.0, self.y)
        x2 = min(float(width), self.x2)
        y2 = min(float(height), self.y2)
        if x2 <= x1 or y2 <= y1:
            raise DatasetError("Box does not intersect the image it was clipped to")
        return BoundingBox(x1, y1, x2 - x1, y2 - y1)

    @staticmethod
    def full_image(width: float, height: float) -> "BoundingBox":
        """The box covering the whole image."""
        return BoundingBox(0.0, 0.0, float(width), float(height))
