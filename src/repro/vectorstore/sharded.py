"""Sharded vector store: image-aligned partitions scored in parallel.

The ROADMAP's scaling story starts here: one :class:`ShardedVectorStore`
partitions the stored vectors into ``n_shards`` contiguous, **image-aligned**
ranges (an image's patch vectors never straddle a shard boundary), builds an
independent inner :class:`VectorStore` over each range, and fans queries out
to the shards on a thread pool — NumPy kernels release the GIL, so shard
scoring overlaps on multi-core hosts.

Equivalence is a hard guarantee, not a best effort:

* ``score_all`` writes each shard's :func:`~repro.utils.linalg.dot_rows`
  output into one global score column.  ``dot_rows`` is bit-stable under row
  partitioning, so the column is **bit-identical** to the unsharded scan.
* ``search_arrays`` takes each shard's local top-``k``, offsets the ids back
  into the global id space, and re-ranks the merged candidates exactly.  Any
  vector in the global top-``k`` is necessarily in its own shard's local
  top-``k``, so the merge is an exact global top-``k``; ties are broken by
  ascending vector id, the same deterministic rule the exact store uses.

The wrapper subclasses :class:`VectorStore`, so every base accessor
(``records``, ``vector``, ``vectors``, the legacy ``search``) works on the
global id space unchanged, and the query engine drives a sharded store
through the very same interface as a flat one.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import VectorStoreError
from repro.obs import trace_span
from repro.vectorstore.base import VectorRecord, VectorStore, deterministic_top_k
from repro.vectorstore.exact import ExactVectorStore
from repro.vectorstore.forest import RandomProjectionForest
from repro.vectorstore.graph import GraphANNVectorStore
from repro.vectorstore.quantized import QuantizedVectorStore

StoreFactory = Callable[[np.ndarray, "list[VectorRecord]"], VectorStore]


@dataclass(frozen=True)
class _Shard:
    """One partition: a global id range plus the store built over it."""

    start: int
    stop: int
    store: VectorStore

    def __len__(self) -> int:
        return self.stop - self.start


class ShardedVectorStore(VectorStore):
    """Image-aligned shards of any :class:`VectorStore`, scored in parallel."""

    def __init__(
        self,
        vectors: np.ndarray,
        records: "list[VectorRecord]",
        n_shards: int = 2,
        store_factory: "StoreFactory | None" = None,
        compute_dtype: "np.dtype | str | None" = None,
    ) -> None:
        super().__init__(vectors, records, compute_dtype=compute_dtype)
        if n_shards < 1:
            raise VectorStoreError(f"n_shards must be >= 1, got {n_shards}")
        factory = store_factory or ExactVectorStore
        bounds = self._shard_bounds(records, n_shards)
        shards: "list[_Shard]" = []
        for start, stop in zip(bounds[:-1], bounds[1:]):
            start, stop = int(start), int(stop)
            inner = factory(
                self._vectors[start:stop],
                [
                    VectorRecord(
                        vector_id=record.vector_id - start,
                        image_id=record.image_id,
                        box=record.box,
                        scale_level=record.scale_level,
                    )
                    for record in records[start:stop]
                ],
            )
            # The inner store's construction copy holds the same bits as the
            # wrapper's rows (unit rows are preserved verbatim); swapping in
            # a view of the wrapper's matrix drops the copy so sharding does
            # not double the corpus's resident memory.
            inner._share_vectors(self._vectors[start:stop])
            shards.append(_Shard(start=start, stop=stop, store=inner))
        self._shards: "tuple[_Shard, ...]" = tuple(shards)
        # Exhaustive iff every shard full-scans: the engine may then drive
        # this store through score_all exactly like a flat exact store.
        self.exhaustive = all(shard.store.exhaustive for shard in self._shards)
        self._executor: "ThreadPoolExecutor | None" = None

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------
    @staticmethod
    def _shard_bounds(records: "list[VectorRecord]", n_shards: int) -> np.ndarray:
        """Split points: image-aligned, as close to an even split as possible."""
        image_ids = np.fromiter(
            (record.image_id for record in records), dtype=np.int64, count=len(records)
        )
        change_points = np.flatnonzero(np.diff(image_ids) != 0) + 1
        if np.unique(image_ids).size != change_points.size + 1:
            raise VectorStoreError(
                "image-aligned sharding requires each image's vectors to be "
                "stored contiguously"
            )
        boundaries = np.concatenate(([0], change_points, [len(records)]))
        targets = np.linspace(0, len(records), min(n_shards, boundaries.size - 1) + 1)
        # Snap each even-split target to the nearest image boundary; dedupe
        # keeps the bounds strictly increasing when images are few or lumpy.
        positions = boundaries[
            np.abs(boundaries[:, None] - targets[None, :]).argmin(axis=0)
        ]
        positions[0], positions[-1] = 0, len(records)
        return np.unique(positions)

    @classmethod
    def wrap(cls, store: VectorStore, n_shards: int) -> "ShardedVectorStore":
        """Shard an existing flat store (the service's runtime topology knob).

        The inner stores are rebuilt from the wrapped store's vectors and
        records with the same kind and parameters; wrapping an already
        sharded store reshards its flat content.
        """
        # Kind/parameters come from the flat template store (the inner store
        # when resharding), but vectors and records always come from `store`
        # itself — the wrapper holds the full corpus.
        template = store.shard_example if isinstance(store, ShardedVectorStore) else store
        factory: StoreFactory
        if isinstance(template, RandomProjectionForest):
            forest = template

            def factory(vectors: np.ndarray, records: "list[VectorRecord]") -> VectorStore:
                return RandomProjectionForest(
                    vectors,
                    records,
                    tree_count=forest.tree_count,
                    leaf_size=forest.leaf_size,
                    seed=forest.seed,
                )

        elif isinstance(template, GraphANNVectorStore):
            graph = template

            def factory(vectors: np.ndarray, records: "list[VectorRecord]") -> VectorStore:
                # Each shard builds its own navigable graph over its slice;
                # descent then runs per shard and the wrapper's deterministic
                # merge selects across the shard-local candidate sets.
                return GraphANNVectorStore(
                    vectors,
                    records,
                    graph_degree=graph.graph_degree,
                    ef=graph.ef,
                    seed=graph.seed,
                )

        elif isinstance(template, QuantizedVectorStore):
            quantized = template

            def factory(vectors: np.ndarray, records: "list[VectorRecord]") -> VectorStore:
                return QuantizedVectorStore(
                    vectors, records, rerank_factor=quantized.rerank_factor
                )

        elif isinstance(template, ExactVectorStore):
            factory = ExactVectorStore
        else:
            raise VectorStoreError(
                f"Cannot infer a shard factory for {type(template).__name__}; "
                "construct ShardedVectorStore with an explicit store_factory"
            )
        return cls(store.vectors, list(store.records), n_shards, store_factory=factory)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of effective shards (≤ requested when images are few)."""
        return len(self._shards)

    @property
    def shard_sizes(self) -> "tuple[int, ...]":
        """Vector count of each shard, in global id order."""
        return tuple(len(shard) for shard in self._shards)

    @property
    def shard_stores(self) -> "tuple[VectorStore, ...]":
        """The inner per-shard stores, in global id order."""
        return tuple(shard.store for shard in self._shards)

    @property
    def shard_example(self) -> VectorStore:
        """One inner store — the kind/parameter template for serialization."""
        return self._shards[0].store

    # ------------------------------------------------------------------
    # parallel dispatch
    # ------------------------------------------------------------------
    def _map_shards(self, task: "Callable[[_Shard], object]") -> "list[object]":
        if len(self._shards) == 1:
            return [task(self._shards[0])]
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=len(self._shards), thread_name_prefix="seesaw-shard"
            )
        return list(self._executor.map(task, self._shards))

    def close(self) -> None:
        """Release the scoring thread pool (safe to call repeatedly)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # scoring kernels
    # ------------------------------------------------------------------
    def score_all(self, query: np.ndarray) -> np.ndarray:
        """Bit-identical to the flat scan: shards fill one global column."""
        query = self._check_query(query)
        out = np.empty(len(self), dtype=self.compute_dtype)

        def run(shard: _Shard) -> None:
            out[shard.start : shard.stop] = shard.store.score_all(query)

        self._map_shards(run)
        return out

    def score_many(self, queries: np.ndarray) -> np.ndarray:
        """Per-shard GEMMs filling one global ``(Q x vectors)`` matrix."""
        queries = self._check_queries(queries)
        out = np.empty((queries.shape[0], len(self)), dtype=self.compute_dtype)

        def run(shard: _Shard) -> None:
            out[:, shard.start : shard.stop] = shard.store.score_many(queries)

        self._map_shards(run)
        return out

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search_arrays(
        self,
        query: np.ndarray,
        k: int,
        exclude_mask: "np.ndarray | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        if k < 1:
            raise VectorStoreError(f"k must be >= 1, got {k}")
        query = self._check_query(query)
        if exclude_mask is not None and exclude_mask.shape[0] != len(self):
            raise VectorStoreError(
                f"exclude_mask covers {exclude_mask.shape[0]} vectors, "
                f"store holds {len(self)}"
            )

        def run(shard: _Shard) -> "tuple[np.ndarray, np.ndarray]":
            shard_mask = (
                None if exclude_mask is None else exclude_mask[shard.start : shard.stop]
            )
            ids, scores = shard.store.search_arrays(
                query, min(k, len(shard)), exclude_mask=shard_mask
            )
            return ids + shard.start, scores

        parts: "list[tuple[np.ndarray, np.ndarray]]" = self._map_shards(run)  # type: ignore[assignment]
        with trace_span("merge", shards=len(parts)):
            ids = np.concatenate([part[0] for part in parts])
            scores = np.concatenate([part[1] for part in parts])
            if ids.size == 0:
                return (
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=self.compute_dtype),
                )
            # Select and order with the exact store's deterministic rule
            # (score desc, global id asc, ties resolved smallest-id-first at
            # the k-th boundary) so the merged result is bit-identical to the
            # unsharded result even when a tie group straddles the cut.
            top = deterministic_top_k(scores, ids, k)
            return ids[top], scores[top]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def search_arrays_per_shard(
        self, query: np.ndarray, k: int
    ) -> "list[tuple[np.ndarray, np.ndarray]]":
        """Each shard's local top-``k`` in global ids (inspection/debugging)."""
        query = self._check_query(query)
        results: "list[tuple[np.ndarray, np.ndarray]]" = []
        for shard in self._shards:
            ids, scores = shard.store.search_arrays(query, min(k, len(shard)))
            results.append((ids + shard.start, scores))
        return results


def image_spans(records: Sequence[VectorRecord]) -> "list[tuple[int, int]]":
    """Contiguous ``[start, stop)`` vector-id spans per image, in id order.

    Helper shared by tests asserting the image-aligned shard invariant.
    """
    spans: "list[tuple[int, int]]" = []
    start = 0
    for position in range(1, len(records) + 1):
        if (
            position == len(records)
            or records[position].image_id != records[position - 1].image_id
        ):
            spans.append((start, position))
            start = position
    return spans
