"""Navigable-graph ANN tier: sublinear candidate generation with exact rerank.

Every other store tier — exact, quantized+rerank, sharded — still scores all
N vectors per round, which caps throughput at brute-force memory bandwidth.
This store repurposes the paper's approximate kNN graph (built with
NN-descent, Dong et al., WWW 2011, because exact construction is quadratic)
into a *navigable* proximity graph in the HNSW spirit (Malkov & Yashunin):

1. **construction** — the kNN graph's directed edges are symmetrised into a
   CSR adjacency (every edge walkable in both directions), and an **entry
   pool** is chosen: the node nearest the corpus centroid plus an id-stride
   sample of ~4·sqrt(N) nodes across the whole corpus.  The pool plays the
   role of HNSW's upper layers — coarse coverage that lets greedy descent
   start near any region without maintaining a hierarchy;
2. **descent** — a query first scores the entry pool in one small GEMV and
   seeds the walk from the pool's best few nodes, then greedily walks the
   graph best-first with a bounded candidate heap (`ef` beam width): the
   best unexpanded node is popped, its unvisited neighbours are scored in
   one vectorised gather-GEMV, and anything better than the current ef-th
   best re-enters the frontier.  The walk stops when the frontier cannot
   improve the beam — touching a small, query-adaptive fraction of the
   corpus;
3. **exact rerank** — the beam's candidates are re-scored with true inner
   products in the compute dtype and the final top-``k`` is selected with
   the shared deterministic (score desc, id asc) rule, the same contract the
   quantized tier's rerank pass honors.

``exhaustive = False``: the query engine drives this store through the
masked candidate API with its widening schedule.  ``score_all`` /
``score_many`` stay exact full scans for the baselines.  When the effective
beam covers the whole store (tiny corpora, or ``k`` widened to the corpus
size) the search falls back to the exact masked scan, so results degrade to
exact rather than to a pointless whole-graph walk.

Exclusions are handled the standard graph-ANN way: excluded nodes are
*traversed* (they keep the graph connected) but never *collected*.  The
engine inflates ``k`` by the exclusion count, which inflates the beam in
step, so exclusions do not starve the result list.

The adjacency is three flat arrays (``offsets``, ``neighbors``, ``entries``)
so :mod:`repro.store.serialize` can persist them as raw ``.npy`` artifacts
and adopt them back with ``mmap_mode="r"`` — the graph loads zero-copy
exactly like the vector matrix.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.exceptions import VectorStoreError
from repro.obs import trace_registry, trace_span
from repro.vectorstore.base import VectorRecord, VectorStore, deterministic_top_k

ANN_HOPS_METRIC = "seesaw_ann_hops_total"
ANN_HOPS_HELP = (
    "Graph-ANN node expansions (hops) performed by GraphANNVectorStore "
    "descents."
)

_EXACT_BUILD_MAX = 4096
"""Below this many vectors the kNN graph is built with the exact chunked
scan (faster than NN-descent's per-node loop at small N, and deterministic
without a seed); above it NN-descent keeps construction sub-quadratic."""

_ENTRY_POOL_MIN = 32
"""Floor on the id-stride entry pool (plus the centroid node)."""

_ENTRY_POOL_FACTOR = 4
"""Entry pool size scales as ``factor * sqrt(count)``: large enough that
some pool node lands near every corpus region (the coarse-coverage role of
HNSW's upper layers), small enough that scoring the whole pool per query is
one negligible GEMV."""

_SEED_COUNT = 8
"""How many of the best-scoring pool nodes seed each descent."""


class GraphANNVectorStore(VectorStore):
    """Greedy best-first search over a navigable kNN graph, exact rerank."""

    exhaustive = False

    def __init__(
        self,
        vectors: np.ndarray,
        records: "list[VectorRecord]",
        graph_degree: int = 16,
        ef: int = 64,
        seed: int = 0,
        compute_dtype: "np.dtype | str | None" = None,
        adjacency: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None,
    ) -> None:
        super().__init__(vectors, records, compute_dtype=compute_dtype)
        if graph_degree < 2:
            raise VectorStoreError(
                f"graph_degree must be >= 2, got {graph_degree}"
            )
        if ef < 1:
            raise VectorStoreError(f"ef must be >= 1, got {ef}")
        self.graph_degree = int(graph_degree)
        self.ef = int(ef)
        self.seed = int(seed)
        if adjacency is not None:
            offsets, neighbors, entries = adjacency
            self._adopt_adjacency(offsets, neighbors, entries)
        else:
            self._build_adjacency()
        self._last_stats: "dict[str, int]" = {"hops": 0, "visited": 0}
        self._hops_registry = None
        self._hops_counter = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _adopt_adjacency(
        self, offsets: np.ndarray, neighbors: np.ndarray, entries: np.ndarray
    ) -> None:
        """Adopt prebuilt CSR adjacency arrays (zero-copy when possible).

        A serialized graph entry memory-maps these arrays read-only; keeping
        them as-is (no dtype conversion, no defensive copy) is what makes a
        graph index cold start as cheap as an exact one.
        """
        offsets = np.asarray(offsets)
        neighbors = np.asarray(neighbors)
        entries = np.asarray(entries)
        if offsets.ndim != 1 or offsets.shape[0] != len(self) + 1:
            raise VectorStoreError(
                f"adjacency offsets must have {len(self) + 1} entries, got "
                f"shape {offsets.shape}"
            )
        if neighbors.ndim != 1 or int(offsets[-1]) != neighbors.shape[0]:
            raise VectorStoreError(
                "adjacency neighbors do not match the offsets extent"
            )
        if entries.ndim != 1 or entries.size == 0:
            raise VectorStoreError("adjacency entries must be a non-empty 1-d array")
        if neighbors.size and (
            int(neighbors.min()) < 0 or int(neighbors.max()) >= len(self)
        ):
            raise VectorStoreError("adjacency neighbors reference unknown vectors")
        if int(entries.min()) < 0 or int(entries.max()) >= len(self):
            raise VectorStoreError("adjacency entries reference unknown vectors")
        self._offsets = offsets
        self._neighbors = neighbors
        self._entries = entries

    def _build_adjacency(self) -> None:
        """Build the navigable graph from the store's own (unit) vectors."""
        count = len(self)
        if count < 2:
            self._offsets = np.zeros(count + 1, dtype=np.int64)
            self._neighbors = np.zeros(0, dtype=np.int32)
            self._entries = np.zeros(1, dtype=np.int64)
            return
        # Reuse the paper's kNN-graph builders: exact for small corpora,
        # NN-descent (sub-quadratic) beyond _EXACT_BUILD_MAX.
        from repro.knng.nndescent import exact_knn, nn_descent

        degree = min(self.graph_degree, count - 1)
        if count <= _EXACT_BUILD_MAX:
            neighbor_ids, _ = exact_knn(self._vectors, k=degree)
        else:
            neighbor_ids, _ = nn_descent(self._vectors, k=degree, seed=self.seed)
        # Symmetrise into CSR: every directed kNN edge becomes walkable in
        # both directions, which is what makes greedy descent navigable —
        # a node can be *entered* through any node that considers it near.
        sources = np.repeat(np.arange(count, dtype=np.int64), degree)
        targets = neighbor_ids.ravel().astype(np.int64)
        edge_src = np.concatenate([sources, targets])
        edge_dst = np.concatenate([targets, sources])
        order = np.lexsort((edge_dst, edge_src))
        edge_src = edge_src[order]
        edge_dst = edge_dst[order]
        keep = np.ones(edge_src.size, dtype=bool)
        keep[1:] = (edge_src[1:] != edge_src[:-1]) | (edge_dst[1:] != edge_dst[:-1])
        edge_src = edge_src[keep]
        edge_dst = edge_dst[keep]
        offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(np.bincount(edge_src, minlength=count), out=offsets[1:])
        self._offsets = offsets
        self._neighbors = edge_dst.astype(np.int32)
        self._entries = self._choose_entries()

    def _choose_entries(self) -> np.ndarray:
        """Entry pool: centroid-nearest node + an id-stride long-range sample.

        The pool substitutes for HNSW's hierarchy: nodes spread across the
        id space guarantee every region of the corpus is a short walk from
        some starting point, without maintaining upper layers.  At query
        time the pool is scored in one GEMV and only its best few nodes
        seed the walk, so a bigger pool buys coverage, not beam width.
        """
        count = len(self)
        centroid = np.asarray(self._vectors, dtype=np.float64).mean(axis=0)
        medoid = int(np.argmax(self._vectors @ centroid.astype(self.compute_dtype)))
        pool_size = min(
            count,
            max(_ENTRY_POOL_MIN, _ENTRY_POOL_FACTOR * int(np.sqrt(count))),
        )
        sample = np.linspace(0, count - 1, num=pool_size, dtype=np.int64)
        return np.unique(np.concatenate([[medoid], sample]))

    # ------------------------------------------------------------------
    # introspection / serialization surface
    # ------------------------------------------------------------------
    @property
    def graph_offsets(self) -> np.ndarray:
        """CSR row offsets of the adjacency (``count + 1`` entries)."""
        return self._offsets

    @property
    def graph_neighbors(self) -> np.ndarray:
        """Flat neighbour ids, sliced per node by :attr:`graph_offsets`."""
        return self._neighbors

    @property
    def graph_entries(self) -> np.ndarray:
        """Descent entry-point node ids (centroid node + stride sample)."""
        return self._entries

    @property
    def edge_count(self) -> int:
        """Total directed edges in the symmetrised adjacency."""
        return int(self._neighbors.shape[0])

    @property
    def last_search_stats(self) -> "dict[str, int]":
        """Hops/visited counts of the most recent descent (diagnostics)."""
        return dict(self._last_stats)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _record_hops(self, hops: int) -> None:
        """Bump ``seesaw_ann_hops_total`` in the active telemetry registry.

        The resolved counter is memoized per registry identity (the same
        pattern the tracing runtime uses for stage children) so the hot
        path pays one attribute check, not a registry lock, per search.
        """
        registry = trace_registry()
        if self._hops_registry is not registry:
            self._hops_counter = registry.counter(ANN_HOPS_METRIC, ANN_HOPS_HELP)
            self._hops_registry = registry
        self._hops_counter.inc(hops)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search_arrays(
        self,
        query: np.ndarray,
        k: int,
        exclude_mask: "np.ndarray | None" = None,
        ef: "int | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        if k < 1:
            raise VectorStoreError(f"k must be >= 1, got {k}")
        beam_ef = self.ef if ef is None else int(ef)
        if beam_ef < 1:
            raise VectorStoreError(f"ef must be >= 1, got {beam_ef}")
        query = self._check_query(query)
        count = len(self)
        beam = min(count, max(beam_ef, k))
        if beam >= count:
            # The beam covers the whole store: an exact masked scan is both
            # faster than walking every edge and exactly correct, so wide
            # requests (engine widening, tiny corpora) degrade to exact.
            scores = self._vectors @ query  # fresh array, safe to mask in place
            if exclude_mask is not None:
                scores[exclude_mask] = -np.inf
            ids = np.arange(count, dtype=np.int64)
            top = deterministic_top_k(scores, ids, min(k, count))
            top = top[np.isfinite(scores[top])]
            return ids[top], scores[top]
        with trace_span("graph_descent", ef=beam):
            candidates, hops = self._descend(query, beam, exclude_mask)
        self._record_hops(hops)
        if candidates.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=self.compute_dtype)
        # Exact rerank: true inner products in the compute dtype, selected
        # and ordered with the same deterministic rule as the exact store.
        with trace_span("rerank", candidates=int(candidates.size)):
            exact = self._vectors[candidates] @ query
            top = deterministic_top_k(exact, candidates, min(k, candidates.size))
            return candidates[top], exact[top]

    def _descend(
        self,
        query: np.ndarray,
        beam: int,
        exclude_mask: "np.ndarray | None",
    ) -> "tuple[np.ndarray, int]":
        """Greedy best-first walk; returns (candidate ids, hop count).

        The entry pool is scored in one GEMV and only its best few nodes
        seed the walk — scoring the pool is how a query finds its region
        without a layer hierarchy; seeding from all of it would just widen
        the beam with far-away nodes.  The frontier is a max-heap keyed
        ``(-score, id)`` — the id tiebreak makes the walk fully
        deterministic — and the beam is a min-heap of the best ``beam``
        collectible nodes seen so far.  A popped node expands by scoring
        all its unvisited neighbours in one gather-GEMV.
        """
        vectors = self._vectors
        offsets = self._offsets
        neighbors = self._neighbors
        visited = np.zeros(len(self), dtype=bool)
        pool = self._entries
        pool_scores = vectors[pool] @ query
        # Deterministic seed selection: score desc, id asc on ties.
        seed_order = np.lexsort((pool, -pool_scores))[:_SEED_COUNT]
        seeds = pool[seed_order]
        seed_scores = pool_scores[seed_order]
        visited[seeds] = True
        frontier: "list[tuple[float, int]]" = []
        best: "list[tuple[float, int]]" = []  # min-heap of (score, id)
        for score, node in zip(seed_scores.tolist(), seeds.tolist()):
            heapq.heappush(frontier, (-score, node))
            if exclude_mask is None or not exclude_mask[node]:
                if len(best) < beam:
                    heapq.heappush(best, (score, node))
                else:
                    heapq.heappushpop(best, (score, node))
        hops = 0
        while frontier:
            negated, node = heapq.heappop(frontier)
            if len(best) == beam and -negated < best[0][0]:
                break  # the frontier can no longer improve the beam
            fresh = neighbors[offsets[node] : offsets[node + 1]]
            fresh = fresh[~visited[fresh]]
            if fresh.size == 0:
                continue
            visited[fresh] = True
            hops += 1
            scores = vectors[fresh] @ query
            if len(best) == beam:
                # Prune: only nodes that beat the current ef-th best can
                # extend the walk or enter the beam.
                keep = scores > best[0][0]
                fresh = fresh[keep]
                scores = scores[keep]
            collectible = exclude_mask is None
            for score, neighbor in zip(scores.tolist(), fresh.tolist()):
                heapq.heappush(frontier, (-score, neighbor))
                if collectible or not exclude_mask[neighbor]:
                    if len(best) < beam:
                        heapq.heappush(best, (score, neighbor))
                    else:
                        heapq.heappushpop(best, (score, neighbor))
        self._last_stats = {"hops": hops, "visited": int(visited.sum())}
        if not best:
            return np.zeros(0, dtype=np.int64), hops
        return np.fromiter((node for _, node in best), dtype=np.int64, count=len(best)), hops

    def search(
        self,
        query: np.ndarray,
        k: int,
        exclude_vector_ids: "set[int] | None" = None,
        ef: "int | None" = None,
    ) -> list:
        """Legacy hit-object adapter; forwards the ``ef`` beam override."""
        ids, scores = self.search_arrays(
            query,
            k,
            exclude_mask=self._mask_from_ids(exclude_vector_ids),
            ef=ef,
        )
        return self._hits_from_ids(ids, scores)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def recall_against_exact(
        self, queries: np.ndarray, k: int = 10, ef: "int | None" = None
    ) -> float:
        """Average top-``k`` recall of the descent against an exact scan."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        total = 0.0
        for query in queries:
            exact_scores = np.asarray(self.vectors, dtype=np.float64) @ query
            exact_ids = np.arange(len(self), dtype=np.int64)
            exact_top = set(
                exact_ids[deterministic_top_k(exact_scores, exact_ids, k)].tolist()
            )
            approx_ids, _ = self.search_arrays(query, k=k, ef=ef)
            total += len(exact_top & set(approx_ids.tolist())) / max(1, len(exact_top))
        return total / queries.shape[0]
