"""Vector-store interface and per-vector metadata records."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.data.geometry import BoundingBox
from repro.exceptions import VectorStoreError
from repro.utils.linalg import (
    COMPUTE_DTYPES,
    ZERO_NORM_EPSILON,
    dot_rows,
    ensure_dtype,
    normalize_rows,
    resolve_compute_dtype,
    unit_norm_tolerance,
)


def deterministic_top_k(scores: np.ndarray, ids: np.ndarray, k: int) -> np.ndarray:
    """Positions of the ``k`` best entries under (score desc, id asc).

    ``argpartition`` alone selects an *arbitrary* subset of entries tied at
    the k-th score, so two stores holding the same data could return
    different id sets when a tie group straddles the cut.  This helper makes
    the boundary deterministic: strictly-better entries are all taken, then
    tied entries fill the remaining slots smallest-id first, and the final
    ordering is score descending with ascending-id tie-break.  Both the
    exact store and the sharded merge select through it, which is what makes
    sharded results bit-identical to flat results *through ties* — any entry
    in the global top-k under this rule is also in its shard's local top-k
    under the same rule.
    """
    count = scores.shape[0]
    k = min(k, count)
    if k <= 0:
        return np.zeros(0, dtype=np.int64)
    if k == count:
        chosen = np.arange(count)
    else:
        partitioned = np.argpartition(-scores, k - 1)
        kth_score = scores[partitioned[k - 1]]
        strictly_better = np.flatnonzero(scores > kth_score)
        tied = np.flatnonzero(scores == kth_score)
        need = k - strictly_better.size
        if need < tied.size:
            tied = tied[np.argsort(ids[tied], kind="stable")[:need]]
        chosen = np.concatenate([strictly_better, tied])
    return chosen[np.lexsort((ids[chosen], -scores[chosen]))]


@dataclass(frozen=True)
class VectorRecord:
    """Metadata attached to one stored vector.

    With the multiscale representation a single image contributes several
    vectors; each record remembers which image and which patch the vector was
    computed from so results can be grouped back into images and compared
    against user box feedback.
    """

    vector_id: int
    image_id: int
    box: BoundingBox
    scale_level: int = 0
    """0 for the coarse full-image patch, 1 for the finer tiling."""

    @property
    def is_coarse(self) -> bool:
        """True when this record is the whole-image (coarse) vector."""
        return self.scale_level == 0


@dataclass(frozen=True)
class SearchHit:
    """One result of a store lookup."""

    vector_id: int
    score: float
    record: VectorRecord


class VectorStore(ABC):
    """Maximum-inner-product lookup over a fixed set of unit vectors."""

    exhaustive: bool = False
    """True when every query scores every stored vector (exact scan).

    The query engine full-scans exhaustive stores (mask + pool once, no
    retries) and drives candidate gathering for approximate ones.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        records: "list[VectorRecord]",
        compute_dtype: "np.dtype | str | None" = None,
    ) -> None:
        source = np.asarray(vectors)
        if compute_dtype is None:
            # Adopt the dtype the data arrives in when it is already a
            # compute dtype: shard slices, cache-loaded artifacts, and tier
            # wrappers then propagate the tier choice with zero configuration
            # (and zero conversion copies).  Anything else promotes to the
            # float64 reference dtype.
            dtype = source.dtype if source.dtype in COMPUTE_DTYPES else np.dtype(np.float64)
        else:
            dtype = resolve_compute_dtype(compute_dtype)
        vectors = ensure_dtype(source, dtype)
        converted = vectors is not source
        if vectors.ndim != 2:
            raise VectorStoreError("vectors must be a 2-d array (count x dim)")
        if vectors.shape[0] == 0:
            raise VectorStoreError("cannot build a vector store with no vectors")
        if len(records) != vectors.shape[0]:
            raise VectorStoreError(
                f"record count {len(records)} does not match vector count {vectors.shape[0]}"
            )
        scale_levels = np.empty(len(records), dtype=np.int8)
        for position, record in enumerate(records):
            if record.vector_id != position:
                raise VectorStoreError(
                    "records must be ordered so record.vector_id equals its row index"
                )
            scale_levels[position] = record.scale_level
        scale_levels.setflags(write=False)
        # Rows already in canonical form are kept bit-exact instead of being
        # re-divided by a norm of 1±ulp: rebuilding a store from another
        # store's vectors (shard slices, cache loads) must not drift scores
        # in the last bits — the sharded store's equivalence guarantee and
        # the index cache's reproducibility both rest on this.  Canonical
        # means unit norm within the dtype's tolerance *or* (near-)zero:
        # ``normalize_rows`` preserves zero rows verbatim, so they are
        # already in the form it would produce.  The defensive copy is
        # skipped when nobody else can mutate the rows: the dtype conversion
        # already produced a private array, and a read-only input (another
        # store's ``vectors`` view, an ``mmap_mode="r"`` artifact) stays
        # zero-copy — the point of the mmap cold-start path.
        norms = np.linalg.norm(vectors, axis=1)
        canonical = (np.abs(norms - 1.0) < unit_norm_tolerance(dtype)) | (
            norms < ZERO_NORM_EPSILON
        )
        if bool(canonical.all()):
            if converted or not vectors.flags.writeable:
                self._vectors = vectors
            else:
                self._vectors = vectors.copy()
        else:
            self._vectors = ensure_dtype(normalize_rows(vectors), dtype)
        self._records = list(records)
        self._scale_levels = scale_levels
        self._compute_dtype = dtype

    # ------------------------------------------------------------------
    # shared accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._vectors.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the stored vectors."""
        return self._vectors.shape[1]

    @property
    def compute_dtype(self) -> np.dtype:
        """The floating dtype scoring runs in (``float64`` or ``float32``).

        Queries are converted to this dtype once at the store boundary
        (:meth:`_check_query` / :meth:`_check_queries`); every score array the
        store returns carries it, so the engine's pooling and selection
        kernels inherit the tier without further conversions.
        """
        return self._compute_dtype

    @property
    def vectors(self) -> np.ndarray:
        """The full (count x dim) matrix of stored unit vectors (read-only view)."""
        view = self._vectors.view()
        view.setflags(write=False)
        return view

    @property
    def records(self) -> "tuple[VectorRecord, ...]":
        """All metadata records in vector-id order."""
        return tuple(self._records)

    @property
    def scale_levels(self) -> np.ndarray:
        """Per-vector multiscale level as an int8 column (read-only).

        Built during record validation at construction, so bulk level
        checks (e.g. the coarse-first index invariant) are one vectorized
        comparison instead of per-record attribute access.
        """
        return self._scale_levels

    def record(self, vector_id: int) -> VectorRecord:
        """Metadata for one stored vector."""
        try:
            return self._records[vector_id]
        except IndexError as exc:
            raise VectorStoreError(f"Unknown vector id {vector_id}") from exc

    def vector(self, vector_id: int) -> np.ndarray:
        """One stored vector by id."""
        if not 0 <= vector_id < len(self):
            raise VectorStoreError(f"Unknown vector id {vector_id}")
        return self._vectors[vector_id].copy()

    def _share_vectors(self, vectors: np.ndarray) -> None:
        """Swap the owned matrix for a shared view with identical content.

        Used by the sharded wrapper after building its inner stores: each
        shard's matrix is replaced by a view into the wrapper's rows (same
        bits — the unit-norm construction path preserved them), so sharding
        does not double the corpus's resident memory.
        """
        if vectors.shape != self._vectors.shape:
            raise VectorStoreError(
                f"shared matrix shape {vectors.shape} does not match "
                f"{self._vectors.shape}"
            )
        if vectors.dtype != self._compute_dtype:
            raise VectorStoreError(
                f"shared matrix dtype {vectors.dtype} does not match the "
                f"store's compute dtype {self._compute_dtype}"
            )
        self._vectors = vectors

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        query = ensure_dtype(query, self._compute_dtype).ravel()
        if query.shape[0] != self.dim:
            raise VectorStoreError(
                f"query dimension {query.shape[0]} does not match store dimension {self.dim}"
            )
        return query

    def _check_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(ensure_dtype(queries, self._compute_dtype))
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise VectorStoreError(
                f"queries must be (count x {self.dim}), got shape {queries.shape}"
            )
        return queries

    def _hits_from_ids(self, ids: np.ndarray, scores: np.ndarray) -> "list[SearchHit]":
        return [
            SearchHit(vector_id=int(vid), score=float(score), record=self._records[int(vid)])
            for vid, score in zip(ids, scores)
        ]

    def _mask_from_ids(self, exclude_vector_ids: "set[int] | None") -> "np.ndarray | None":
        """Boolean exclusion mask from a legacy id set (out-of-range ids dropped)."""
        if not exclude_vector_ids:
            return None
        valid = np.fromiter(
            (vid for vid in exclude_vector_ids if 0 <= vid < len(self)),
            dtype=np.int64,
        )
        if not valid.size:
            return None
        mask = np.zeros(len(self), dtype=bool)
        mask[valid] = True
        return mask

    # ------------------------------------------------------------------
    # interface
    # ------------------------------------------------------------------
    @abstractmethod
    def search_arrays(
        self,
        query: np.ndarray,
        k: int,
        exclude_mask: "np.ndarray | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Array-native top-``k``: aligned ``(vector_ids, scores)``, best first.

        ``exclude_mask`` is an optional boolean column over the stored
        vectors (``True`` = excluded).  This is the hot-path entry point the
        query engine drives each round; no per-hit objects are created.
        """

    def score_all(self, query: np.ndarray) -> np.ndarray:
        """Inner product of ``query`` with every stored vector.

        The engine's bulk-scoring kernel; also pays the deliberate
        linear-scan cost of the global baselines (ENS, label propagation)
        the paper contrasts SeeSaw against.  Computed with the shard-stable
        :func:`~repro.utils.linalg.dot_rows` kernel so a sharded store's
        per-shard scoring is bit-identical to the full scan.
        """
        query = self._check_query(query)
        return dot_rows(self._vectors, query)

    def score_many(self, queries: np.ndarray) -> np.ndarray:
        """Inner products of every query row with every stored vector.

        Returns a ``(query_count x vector_count)`` matrix — one BLAS GEMM,
        the fused kernel :class:`~repro.engine.batch.BatchQueryEngine` scores
        many concurrent sessions with.  Row ``q`` equals
        ``score_all(queries[q])`` up to last-bit rounding (GEMM blocks the
        reduction differently from the row-wise kernel).
        """
        queries = self._check_queries(queries)
        return queries @ self._vectors.T

    def search(
        self,
        query: np.ndarray,
        k: int,
        exclude_vector_ids: "set[int] | None" = None,
    ) -> "list[SearchHit]":
        """Return up to ``k`` hits with the largest inner product with ``query``.

        ``exclude_vector_ids`` removes already-inspected vectors from
        consideration, which is how the interactive loop avoids re-showing
        images the user has already labelled.  This is the legacy hit-object
        API, kept as a thin adapter over :meth:`search_arrays`.
        """
        ids, scores = self.search_arrays(
            query, k, exclude_mask=self._mask_from_ids(exclude_vector_ids)
        )
        return self._hits_from_ids(ids, scores)
