"""Annoy-style approximate store: a forest of random-hyperplane trees.

Each tree recursively splits the vectors with a hyperplane through the
midpoint of two randomly chosen points (the split rule Annoy uses).  A query
descends each tree with a priority queue ordered by margin, gathering
candidate leaves until a candidate budget (``search_k``) is met, and the
candidates are re-ranked exactly.  This reproduces the accuracy/latency
trade-off of the store the paper deploys (§2.2).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.exceptions import VectorStoreError
from repro.utils.linalg import normalize_vector
from repro.utils.rng import ensure_rng
from repro.vectorstore.base import SearchHit, VectorRecord, VectorStore


@dataclass
class _TreeNode:
    """One node of a random-projection tree."""

    # Leaf payload: indices of the vectors stored at this node.
    items: "np.ndarray | None" = None
    # Internal-node payload: splitting hyperplane and children indices.
    normal: "np.ndarray | None" = None
    offset: float = 0.0
    left: int = -1
    right: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.items is not None


class RandomProjectionForest(VectorStore):
    """Approximate maximum-inner-product store built from random-split trees."""

    def __init__(
        self,
        vectors: np.ndarray,
        records: "list[VectorRecord]",
        tree_count: int = 8,
        leaf_size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__(vectors, records)
        if tree_count < 1:
            raise VectorStoreError("tree_count must be >= 1")
        if leaf_size < 2:
            raise VectorStoreError("leaf_size must be >= 2")
        self.tree_count = int(tree_count)
        self.leaf_size = int(leaf_size)
        self.seed = int(seed)
        rng = ensure_rng(seed)
        self._trees: list[list[_TreeNode]] = [
            self._build_tree(rng) for _ in range(self.tree_count)
        ]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_tree(self, rng: np.random.Generator) -> "list[_TreeNode]":
        nodes: list[_TreeNode] = []
        all_items = np.arange(len(self), dtype=np.int64)
        self._split_recursive(all_items, rng, nodes)
        return nodes

    def _split_recursive(
        self, items: np.ndarray, rng: np.random.Generator, nodes: "list[_TreeNode]"
    ) -> int:
        node_index = len(nodes)
        nodes.append(_TreeNode())
        if items.size <= self.leaf_size:
            nodes[node_index].items = items
            return node_index
        normal, offset = self._choose_hyperplane(items, rng)
        margins = self._vectors[items] @ normal - offset
        left_mask = margins <= 0
        left_items = items[left_mask]
        right_items = items[~left_mask]
        if left_items.size == 0 or right_items.size == 0:
            # Degenerate split (e.g. duplicated vectors): fall back to a
            # random balanced split so the recursion always terminates.
            shuffled = items.copy()
            rng.shuffle(shuffled)
            half = shuffled.size // 2
            left_items, right_items = shuffled[:half], shuffled[half:]
        node = nodes[node_index]
        node.normal = normal
        node.offset = offset
        node.left = self._split_recursive(left_items, rng, nodes)
        node.right = self._split_recursive(right_items, rng, nodes)
        return node_index

    def _choose_hyperplane(
        self, items: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, float]:
        """Hyperplane through the midpoint of two random distinct points."""
        first, second = rng.choice(items, size=2, replace=False)
        point_a = self._vectors[first]
        point_b = self._vectors[second]
        normal = normalize_vector(point_a - point_b)
        if not np.any(normal):
            normal = normalize_vector(rng.standard_normal(self.dim))
        midpoint = (point_a + point_b) / 2.0
        offset = float(normal @ midpoint)
        return normal, offset

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search_arrays(
        self,
        query: np.ndarray,
        k: int,
        exclude_mask: "np.ndarray | None" = None,
        search_k: "int | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        if k < 1:
            raise VectorStoreError(f"k must be >= 1, got {k}")
        query = self._check_query(query)
        excluded_count = 0 if exclude_mask is None else int(np.count_nonzero(exclude_mask))
        # Over-fetch candidates so exclusions do not starve the result list.
        budget = search_k if search_k is not None else max(64, self.tree_count * k * 8)
        budget += excluded_count
        candidates = self._candidates(query, budget)
        if excluded_count and candidates.size:
            candidates = candidates[~exclude_mask[candidates]]
        if candidates.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0)
        scores = self._vectors[candidates] @ query
        order = np.argsort(-scores)[:k]
        return candidates[order], scores[order]

    def search(
        self,
        query: np.ndarray,
        k: int,
        exclude_vector_ids: "set[int] | None" = None,
        search_k: "int | None" = None,
    ) -> "list[SearchHit]":
        """Legacy hit-object adapter; forwards the ``search_k`` budget knob."""
        ids, scores = self.search_arrays(
            query,
            k,
            exclude_mask=self._mask_from_ids(exclude_vector_ids),
            search_k=search_k,
        )
        return self._hits_from_ids(ids, scores)

    def _candidates(self, query: np.ndarray, budget: int) -> np.ndarray:
        """Gather candidate vector ids from all trees with a margin-ordered queue."""
        collected: set[int] = set()
        # Heap entries: (priority, tie_breaker, tree_index, node_index).
        heap: list[tuple[float, int, int, int]] = []
        counter = 0
        for tree_index in range(self.tree_count):
            heapq.heappush(heap, (0.0, counter, tree_index, 0))
            counter += 1
        while heap and len(collected) < budget:
            _, _, tree_index, node_index = heapq.heappop(heap)
            node = self._trees[tree_index][node_index]
            if node.is_leaf:
                collected.update(int(item) for item in node.items)
                continue
            margin = float(query @ node.normal - node.offset)
            near, far = (node.left, node.right) if margin <= 0 else (node.right, node.left)
            heapq.heappush(heap, (0.0, counter, tree_index, near))
            counter += 1
            heapq.heappush(heap, (abs(margin), counter, tree_index, far))
            counter += 1
        return np.fromiter(collected, dtype=np.int64, count=len(collected))

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def recall_against_exact(
        self, queries: np.ndarray, k: int = 10, search_k: "int | None" = None
    ) -> float:
        """Average top-``k`` recall of the forest against an exact scan.

        Used by tests and the store-accuracy experiment to confirm the
        approximate index only loses a small amount of accuracy, the paper's
        observation when comparing Annoy with an exact scan.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        total = 0.0
        for query in queries:
            exact_scores = self._vectors @ query
            exact_top = set(np.argsort(-exact_scores)[:k].tolist())
            approx = self.search(query, k=k, search_k=search_k)
            approx_top = {hit.vector_id for hit in approx}
            total += len(exact_top & approx_top) / max(1, len(exact_top))
        return total / queries.shape[0]
