"""Vector stores for maximum-inner-product lookup.

The paper uses Annoy, an approximate index.  This package provides an exact
scan store, :class:`RandomProjectionForest` (an Annoy-style forest of
random-hyperplane trees), :class:`QuantizedVectorStore` (int8 candidate
scoring with exact re-rank), :class:`GraphANNVectorStore` (navigable
kNN-graph greedy descent with exact re-rank — the sublinear candidate
tier), and :class:`ShardedVectorStore` (image-aligned
partitions of any of them, scored in parallel), behind one
:class:`VectorStore` interface.  Every store runs its scoring in a
configurable compute dtype (float64 bit-parity default, float32 fast tier).  Vectors carry :class:`VectorRecord` metadata (image id, patch
box, scale level) so the multiscale index can map patch hits back to images.
"""

from repro.vectorstore.base import VectorRecord, VectorStore
from repro.vectorstore.exact import ExactVectorStore
from repro.vectorstore.forest import RandomProjectionForest
from repro.vectorstore.graph import GraphANNVectorStore
from repro.vectorstore.quantized import QuantizedVectorStore
from repro.vectorstore.sharded import ShardedVectorStore

__all__ = [
    "VectorRecord",
    "VectorStore",
    "ExactVectorStore",
    "GraphANNVectorStore",
    "QuantizedVectorStore",
    "RandomProjectionForest",
    "ShardedVectorStore",
]
