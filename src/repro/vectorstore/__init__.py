"""Vector stores for maximum-inner-product lookup.

The paper uses Annoy, an approximate index.  This package provides an exact
scan store, :class:`RandomProjectionForest` (an Annoy-style forest of
random-hyperplane trees), and :class:`ShardedVectorStore` (image-aligned
partitions of either, scored in parallel), behind one :class:`VectorStore`
interface.  Vectors carry :class:`VectorRecord` metadata (image id, patch
box, scale level) so the multiscale index can map patch hits back to images.
"""

from repro.vectorstore.base import VectorRecord, VectorStore
from repro.vectorstore.exact import ExactVectorStore
from repro.vectorstore.forest import RandomProjectionForest
from repro.vectorstore.sharded import ShardedVectorStore

__all__ = [
    "VectorRecord",
    "VectorStore",
    "ExactVectorStore",
    "RandomProjectionForest",
    "ShardedVectorStore",
]
