"""Exact maximum-inner-product store (full scan).

The paper notes that an exact scan is the accuracy reference Annoy is
compared against (§2.2); it is also the store used in most tests because its
results are unambiguous.  The array-native :meth:`search_arrays` is the real
kernel; the legacy hit-object ``search`` is the base-class adapter over it.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import VectorStoreError
from repro.utils.linalg import dot_rows
from repro.vectorstore.base import VectorStore, deterministic_top_k


class ExactVectorStore(VectorStore):
    """Brute-force inner-product search over all stored vectors."""

    exhaustive = True

    def search_arrays(
        self,
        query: np.ndarray,
        k: int,
        exclude_mask: "np.ndarray | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        if k < 1:
            raise VectorStoreError(f"k must be >= 1, got {k}")
        query = self._check_query(query)
        # dot_rows (not gemv) so a sharded wrapper scoring row slices gets
        # bit-identical values; see repro.utils.linalg.dot_rows.
        scores = dot_rows(self._vectors, query)
        if exclude_mask is not None:
            # dot_rows allocated a fresh array, so masking in place is safe —
            # no defensive copy needed.
            scores[exclude_mask] = -np.inf
        # Deterministic selection and ordering (score desc, id asc) even when
        # a tie group straddles the k-th position — the rule the sharded
        # merge reproduces, keeping flat and sharded results bit-identical.
        ids = np.arange(len(self), dtype=np.int64)
        top = deterministic_top_k(scores, ids, k)
        top = top[np.isfinite(scores[top])]
        return top, scores[top]
