"""Exact maximum-inner-product store (full scan).

The paper notes that an exact scan is the accuracy reference Annoy is
compared against (§2.2); it is also the store used in most tests because its
results are unambiguous.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import VectorStoreError
from repro.vectorstore.base import SearchHit, VectorStore


class ExactVectorStore(VectorStore):
    """Brute-force inner-product search over all stored vectors."""

    def search(
        self,
        query: np.ndarray,
        k: int,
        exclude_vector_ids: "set[int] | None" = None,
    ) -> "list[SearchHit]":
        if k < 1:
            raise VectorStoreError(f"k must be >= 1, got {k}")
        query = self._check_query(query)
        scores = self._vectors @ query
        if exclude_vector_ids:
            excluded = np.fromiter(
                (vid for vid in exclude_vector_ids if 0 <= vid < len(self)),
                dtype=np.int64,
            )
            if excluded.size:
                # The matmul above allocated a fresh array, so masking
                # in place is safe — no defensive copy needed.
                scores[excluded] = -np.inf
        k = min(k, len(self))
        # argpartition gives the top-k in O(n); sort only those k by score.
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top])]
        top = top[np.isfinite(scores[top])]
        return self._hits_from_ids(top, scores[top])

    def score_all(self, query: np.ndarray) -> np.ndarray:
        """Inner product of ``query`` with every stored vector.

        Exposed for baselines (ENS, label propagation) that intentionally pay
        the linear-scan cost the paper contrasts SeeSaw against.
        """
        query = self._check_query(query)
        return self._vectors @ query
