"""Exact maximum-inner-product store (full scan).

The paper notes that an exact scan is the accuracy reference Annoy is
compared against (§2.2); it is also the store used in most tests because its
results are unambiguous.  The array-native :meth:`search_arrays` is the real
kernel; the legacy hit-object ``search`` is the base-class adapter over it.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import VectorStoreError
from repro.vectorstore.base import VectorStore


class ExactVectorStore(VectorStore):
    """Brute-force inner-product search over all stored vectors."""

    exhaustive = True

    def search_arrays(
        self,
        query: np.ndarray,
        k: int,
        exclude_mask: "np.ndarray | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        if k < 1:
            raise VectorStoreError(f"k must be >= 1, got {k}")
        query = self._check_query(query)
        scores = self._vectors @ query
        if exclude_mask is not None:
            # The matmul above allocated a fresh array, so masking in place
            # is safe — no defensive copy needed.
            scores[exclude_mask] = -np.inf
        k = min(k, len(self))
        # argpartition gives the top-k in O(n); sort only those k by score.
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top])]
        top = top[np.isfinite(scores[top])]
        return top, scores[top]
