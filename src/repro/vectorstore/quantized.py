"""Int8-quantized candidate tier with exact re-ranking.

The per-round scoring cost of an exhaustive store is memory bandwidth: every
query streams the full vector matrix.  This store keeps a symmetric per-row
int8 quantization of the matrix alongside the exact compute-dtype rows and
splits each search into two passes:

1. **candidate pass** — the query is quantized the same way and scored
   against the int8 matrix with an int32-accumulated GEMM
   (``np.einsum(..., dtype=np.int32)``, no up-cast copy of the matrix), an
   8x bandwidth reduction over float64 scoring;
2. **exact re-rank** — the top ``rerank_factor * k`` candidates under the
   approximate scores are re-scored with true inner products in the compute
   dtype, and the final top-``k`` is selected from those with the same
   deterministic (score desc, id asc) rule the exact store uses.

Per-row symmetric quantization (``scale_i = max|row_i| / 127``) makes the
approximation *sliceable*: a shard's quantized rows equal the same rows of
the flat quantization, so the tier composes with
:class:`~repro.vectorstore.sharded.ShardedVectorStore` without changing any
candidate score.  With unit-norm rows the per-score error is well below the
typical top-k score gaps, so at modest re-rank factors the returned top-k is
empirically identical to the exact store's (recall@k = 1.0 — pinned by the
property suite); the contract invariants (true inner-product scores,
deterministic ordering, absolute exclusions) hold exactly because the
re-rank pass computes them exactly.

The store reports ``exhaustive = False``: its headline ``search_arrays``
results are approximate, so the query engine drives it through the masked
candidate API (like the forest) rather than the full-scan pool.  ``score_all``
/ ``score_many`` stay exact — baselines and the fused batch path that need
true global scores read the compute-dtype rows, never the int8 tier.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import VectorStoreError
from repro.obs import trace_span
from repro.vectorstore.base import VectorRecord, VectorStore, deterministic_top_k

_QUANT_LEVELS = 127
"""Symmetric int8 range: codes in [-127, 127] (-128 unused, keeping the
quantization symmetric so negating a vector negates its codes)."""


class QuantizedVectorStore(VectorStore):
    """Exact store wrapped in a symmetric per-row int8 candidate tier."""

    exhaustive = False

    def __init__(
        self,
        vectors: np.ndarray,
        records: "list[VectorRecord]",
        rerank_factor: int = 4,
        compute_dtype: "np.dtype | str | None" = None,
    ) -> None:
        super().__init__(vectors, records, compute_dtype=compute_dtype)
        if rerank_factor < 1:
            raise VectorStoreError(
                f"rerank_factor must be >= 1, got {rerank_factor}"
            )
        # int32 accumulation holds dim * 127 * 127 per dot product; beyond
        # ~130k dimensions the worst case could wrap.
        if self.dim * _QUANT_LEVELS * _QUANT_LEVELS > np.iinfo(np.int32).max:
            raise VectorStoreError(
                f"dimension {self.dim} overflows int32 accumulation"
            )
        self.rerank_factor = int(rerank_factor)
        matrix = self._vectors
        # Per-row symmetric scales: row_i ~= codes_i * row_scales_i.  A
        # zero row gets scale 1 so its codes (all zero) stay exact.
        scales = np.abs(matrix).max(axis=1) / _QUANT_LEVELS
        scales[scales == 0.0] = 1.0
        self._row_scales = scales.astype(self.compute_dtype)
        self._codes = np.round(matrix / scales[:, None]).astype(np.int8)

    # ------------------------------------------------------------------
    # quantized scoring
    # ------------------------------------------------------------------
    def quantized_scores(self, query: np.ndarray) -> np.ndarray:
        """Approximate inner products from the int8 tier (candidate pass).

        One int32-accumulated GEMM over the codes plus a per-row rescale;
        exposed for the throughput benchmark and recall diagnostics.
        """
        query = self._check_query(query)
        return self._approximate_scores(query)

    def _approximate_scores(self, query: np.ndarray) -> np.ndarray:
        query_scale = float(np.abs(query).max()) / _QUANT_LEVELS
        if query_scale == 0.0:
            return np.zeros(len(self), dtype=self.compute_dtype)
        query_codes = np.round(query / query_scale).astype(np.int8)
        # dtype=np.int32 makes einsum accumulate in int32 without an up-cast
        # copy of the int8 matrix — the whole point of the tier is that the
        # candidate pass streams 1 byte per weight.
        raw = np.einsum("ij,j->i", self._codes, query_codes, dtype=np.int32)
        rescale = self._row_scales * self.compute_dtype.type(query_scale)
        return raw.astype(self.compute_dtype) * rescale

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search_arrays(
        self,
        query: np.ndarray,
        k: int,
        exclude_mask: "np.ndarray | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        if k < 1:
            raise VectorStoreError(f"k must be >= 1, got {k}")
        query = self._check_query(query)
        approximate = self._approximate_scores(query)
        if exclude_mask is not None:
            approximate[exclude_mask] = -np.inf
        ids = np.arange(len(self), dtype=np.int64)
        fetch = min(len(self), self.rerank_factor * k)
        candidates = deterministic_top_k(approximate, ids, fetch)
        candidates = candidates[np.isfinite(approximate[candidates])]
        if candidates.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=self.compute_dtype)
        # Exact re-rank: true inner products in the compute dtype, selected
        # and ordered with the same deterministic rule as the exact store.
        with trace_span("rerank", candidates=int(candidates.size)):
            exact = self._vectors[candidates] @ query
            top = deterministic_top_k(exact, candidates, min(k, candidates.size))
            return candidates[top], exact[top]
