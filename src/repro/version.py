"""Package version, kept in one place so docs and metadata agree."""

__version__ = "1.0.0"
