"""Shared benchmark fixtures: dataset bundles and method factories.

A :class:`DatasetBundle` packages everything the experiments need for one
dataset: the synthetic dataset, its embedding model, and lazily built coarse
and multiscale SeeSaw indexes.  Experiments at different fidelity levels
(quick CI runs vs full paper-scale runs) are controlled by
:class:`ExperimentScale`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.baselines import (
    EnsMethod,
    FewShotClipMethod,
    PropagationMethod,
    RocchioMethod,
    ZeroShotClipMethod,
)
from repro.bench.tasks import BenchmarkQuery, queries_for_dataset
from repro.config import MultiscaleConfig, SeeSawConfig
from repro.core.indexing import SeeSawIndex
from repro.core.interfaces import SearchMethod
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.data.catalogs import load_dataset
from repro.data.dataset import ImageDataset
from repro.embedding.synthetic_clip import SyntheticClip

DATASET_NAMES = ("lvis", "objectnet", "coco", "bdd")

FULL_SCALE_ENV = "REPRO_FULL_BENCH"
"""Set this environment variable to run experiments at full paper scale."""


@dataclass(frozen=True)
class ExperimentScale:
    """How large an experiment run should be."""

    size_scale: float = 0.25
    max_queries_per_dataset: int = 24
    embedding_dim: int = 128
    seed: int = 0
    datasets: Sequence[str] = DATASET_NAMES

    @classmethod
    def from_environment(cls) -> "ExperimentScale":
        """Quick scale by default; full paper scale when REPRO_FULL_BENCH=1."""
        if os.environ.get(FULL_SCALE_ENV, "") not in ("", "0", "false", "False"):
            return cls(size_scale=1.0, max_queries_per_dataset=10_000)
        return cls()

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """The smallest useful scale; used by integration tests."""
        return cls(size_scale=0.08, max_queries_per_dataset=6)


class DatasetBundle:
    """One dataset plus its embedding and (lazily built) SeeSaw indexes."""

    def __init__(
        self,
        dataset: ImageDataset,
        embedding: SyntheticClip,
        config: SeeSawConfig,
    ) -> None:
        self.dataset = dataset
        self.embedding = embedding
        self.config = config
        self._multiscale_index: "SeeSawIndex | None" = None
        self._coarse_index: "SeeSawIndex | None" = None

    @property
    def name(self) -> str:
        """Dataset name (coco / lvis / objectnet / bdd)."""
        return self.dataset.name

    @property
    def multiscale_index(self) -> SeeSawIndex:
        """Index with the multiscale patch representation enabled."""
        if self._multiscale_index is None:
            config = self.config.with_overrides(
                multiscale=MultiscaleConfig(enabled=True)
            )
            self._multiscale_index = SeeSawIndex.build(self.dataset, self.embedding, config)
        return self._multiscale_index

    @property
    def coarse_index(self) -> SeeSawIndex:
        """Index with one coarse vector per image (multiscale disabled)."""
        if self._coarse_index is None:
            config = self.config.with_overrides(
                multiscale=MultiscaleConfig(enabled=False)
            )
            self._coarse_index = SeeSawIndex.build(self.dataset, self.embedding, config)
        return self._coarse_index

    def index(self, multiscale: bool) -> SeeSawIndex:
        """The coarse or multiscale index, by flag."""
        return self.multiscale_index if multiscale else self.coarse_index

    def queries(
        self, scale: ExperimentScale, min_positives: int = 2
    ) -> "list[BenchmarkQuery]":
        """The benchmark queries for this dataset at the given scale."""
        return queries_for_dataset(
            self.dataset,
            min_positives=min_positives,
            max_queries=scale.max_queries_per_dataset,
            seed=scale.seed,
        )


def build_bundle(
    name: str,
    scale: "ExperimentScale | None" = None,
    config: "SeeSawConfig | None" = None,
) -> DatasetBundle:
    """Generate the dataset and embedding for one named dataset profile."""
    scale = scale or ExperimentScale()
    config = config or SeeSawConfig(embedding_dim=scale.embedding_dim, seed=scale.seed)
    dataset = load_dataset(name, seed=scale.seed, size_scale=scale.size_scale)
    embedding = SyntheticClip.for_dataset(
        dataset, dim=config.embedding_dim, seed=scale.seed
    )
    return DatasetBundle(dataset=dataset, embedding=embedding, config=config)


def build_bundles(
    scale: "ExperimentScale | None" = None,
    config: "SeeSawConfig | None" = None,
    names: "Sequence[str] | None" = None,
) -> "dict[str, DatasetBundle]":
    """Build bundles for every evaluation dataset."""
    scale = scale or ExperimentScale()
    names = names or scale.datasets
    return {name: build_bundle(name, scale, config) for name in names}


@dataclass(frozen=True)
class MethodSpec:
    """A named search-method factory plus whether it uses multiscale indexes."""

    name: str
    factory: Callable[[], SearchMethod]
    multiscale: bool = False


def method_factories(
    config: "SeeSawConfig | None" = None,
    horizon: int = 60,
    include: "Sequence[str] | None" = None,
) -> Mapping[str, MethodSpec]:
    """The standard method lineup of the baseline comparison (Table 3).

    All methods run on the coarse index, matching the paper's note that the
    baseline comparison disables multiscale for every method.
    """
    config = config or SeeSawConfig()
    specs = {
        "zero_shot": MethodSpec("zero_shot", ZeroShotClipMethod),
        "few_shot": MethodSpec("few_shot", lambda: FewShotClipMethod(config)),
        "ens": MethodSpec("ens", lambda: EnsMethod(horizon=horizon)),
        "rocchio": MethodSpec("rocchio", RocchioMethod),
        "seesaw": MethodSpec("seesaw", lambda: SeeSawSearchMethod(config)),
        "propagation": MethodSpec("propagation", PropagationMethod),
    }
    if include is None:
        return specs
    return {name: specs[name] for name in include}
