"""Benchmark task definitions (§5.1).

A benchmark query is one labelled category of one dataset, searched for with
the category's text prompt.  The task is to find ``target_results`` relevant
images within ``max_images`` inspected images.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import ImageDataset
from repro.exceptions import BenchmarkError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class BenchmarkQuery:
    """One search task: a category searched by its text prompt on a dataset."""

    dataset: str
    category: str
    prompt: str
    positives: int

    @property
    def key(self) -> str:
        """Stable identifier used to join per-method results."""
        return f"{self.dataset}/{self.category}"


def queries_for_dataset(
    dataset: ImageDataset,
    min_positives: int = 2,
    max_queries: "int | None" = None,
    seed: int = 0,
) -> "list[BenchmarkQuery]":
    """Enumerate the benchmark queries for a dataset.

    Categories with fewer than ``min_positives`` relevant images are skipped
    (they cannot be evaluated meaningfully).  When ``max_queries`` is given, a
    deterministic subsample is drawn, always keeping the explicitly named
    categories (wheelchair, dog, ...) because several experiments reference
    them directly.
    """
    if min_positives < 1:
        raise BenchmarkError("min_positives must be >= 1")
    queries = [
        BenchmarkQuery(
            dataset=dataset.name,
            category=name,
            prompt=dataset.category(name).prompt,
            positives=dataset.positive_count(name),
        )
        for name in dataset.searchable_categories(min_positives=min_positives)
    ]
    if max_queries is None or len(queries) <= max_queries:
        return queries
    named = [q for q in queries if not q.category.startswith(f"{dataset.name}_category_")]
    generated = [q for q in queries if q.category.startswith(f"{dataset.name}_category_")]
    keep = max(0, max_queries - len(named))
    rng = ensure_rng(seed)
    if keep < len(generated):
        chosen = rng.choice(len(generated), size=keep, replace=False)
        generated = [generated[int(i)] for i in sorted(chosen)]
    return sorted(named + generated, key=lambda q: q.category)
