"""Benchmark harness regenerating every table and figure of the evaluation.

The central pieces are:

* :class:`repro.bench.tasks.BenchmarkQuery` — one (dataset, category) search task.
* :class:`repro.bench.simulate.OracleUser` — replays ground-truth boxes as
  feedback, exactly as §5.1 describes.
* :func:`repro.bench.runner.run_search_task` — drives one method through one
  task and measures AP and latency.
* :mod:`repro.bench.experiments` — one entry point per paper table/figure.
"""

from repro.bench.runner import BenchmarkSettings, SessionOutcome, run_search_task
from repro.bench.scenarios import (
    SCENARIO_PACK,
    BurstProfile,
    OpMix,
    TailGates,
    TrafficScenario,
    get_scenario,
    scenario_names,
)
from repro.bench.simulate import OracleUser
from repro.bench.suite import DatasetBundle, build_bundle, method_factories
from repro.bench.tasks import BenchmarkQuery, queries_for_dataset
from repro.bench.traffic import (
    RequestRecord,
    TrafficRun,
    TrafficSummary,
    assert_tail_gates,
    gate_violations,
    poisson_schedule,
    read_run_jsonl,
    run_and_report,
    run_scenario,
    scenario_schedule,
    summarize,
    write_run_jsonl,
)

__all__ = [
    "BenchmarkQuery",
    "queries_for_dataset",
    "OracleUser",
    "BenchmarkSettings",
    "SessionOutcome",
    "run_search_task",
    "DatasetBundle",
    "build_bundle",
    "method_factories",
    # open-loop traffic harness
    "SCENARIO_PACK",
    "BurstProfile",
    "OpMix",
    "TailGates",
    "TrafficScenario",
    "get_scenario",
    "scenario_names",
    "RequestRecord",
    "TrafficRun",
    "TrafficSummary",
    "poisson_schedule",
    "scenario_schedule",
    "run_scenario",
    "run_and_report",
    "summarize",
    "gate_violations",
    "assert_tail_gates",
    "write_run_jsonl",
    "read_run_jsonl",
]
