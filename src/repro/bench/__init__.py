"""Benchmark harness regenerating every table and figure of the evaluation.

The central pieces are:

* :class:`repro.bench.tasks.BenchmarkQuery` — one (dataset, category) search task.
* :class:`repro.bench.simulate.OracleUser` — replays ground-truth boxes as
  feedback, exactly as §5.1 describes.
* :func:`repro.bench.runner.run_search_task` — drives one method through one
  task and measures AP and latency.
* :mod:`repro.bench.experiments` — one entry point per paper table/figure.
"""

from repro.bench.runner import BenchmarkSettings, SessionOutcome, run_search_task
from repro.bench.simulate import OracleUser
from repro.bench.suite import DatasetBundle, build_bundle, method_factories
from repro.bench.tasks import BenchmarkQuery, queries_for_dataset

__all__ = [
    "BenchmarkQuery",
    "queries_for_dataset",
    "OracleUser",
    "BenchmarkSettings",
    "SessionOutcome",
    "run_search_task",
    "DatasetBundle",
    "build_bundle",
    "method_factories",
]
