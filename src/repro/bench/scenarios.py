"""Scenario configs for the open-loop traffic harness.

Every workload the harness (:mod:`repro.bench.traffic`) can fire at the
`/v1` service is described by a frozen :class:`TrafficScenario`: the Poisson
arrival rate and duration, the operation mix, an optional burst profile, and
the tail-latency gates CI asserts against the run's summary.  Scenarios are
plain data — JSON round-trippable, hashable, trivially `scaled()` down for
smoke runs — so a CI gate, a local soak, and a full-scale report all name
the exact same workload.

The shipped pack (:data:`SCENARIO_PACK`) covers the load shapes that
historically flushed out serving bugs: steady arrivals, bursts (queueing
collapse and window-latency waste), session churn (registry lock pressure),
mixed next/stream/info ratios, slow-drip streaming consumers (keep-alive
and chunked-writer behaviour), adversarial feedback replays (idempotency
under concurrency), rate-limit storms (the 429 path under fire),
live-ingest runs (queries racing dataset upserts across forced segment-merge
swaps — the mutable tier's zero-downtime proof), and the
``chaos`` scenario — a windowed fault-injection run (injected latency,
typed 500s, connection resets, truncated streams, skewed deadlines) whose
gates assert the resilience layer fails *typed* and recovers after the
window closes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import BenchmarkError
from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class OpMix:
    """Relative weights of the interaction kinds an arrival can trigger.

    Weights are relative, not normalized; any subset may be zero as long as
    one is positive.  ``next_results`` is the plain feedback round (one
    ``/next`` plus feedback for every shown item), ``stream`` consumes the
    batch through the NDJSON streaming surface, ``feedback_replay`` is the
    adversarial idempotency workload, ``churn`` closes and restarts the
    session, ``info`` is a cheap read (``GET /sessions/{id}``), and
    ``mutate`` upserts a fresh image into the live dataset tier
    (``POST /datasets/{name}/upsert``).
    """

    next_results: float = 1.0
    stream: float = 0.0
    feedback_replay: float = 0.0
    churn: float = 0.0
    info: float = 0.0
    mutate: float = 0.0

    def __post_init__(self) -> None:
        weights = dataclasses.asdict(self)
        for name, weight in weights.items():
            if weight < 0:
                raise BenchmarkError(f"OpMix weight '{name}' must be >= 0, got {weight}")
        if sum(weights.values()) <= 0:
            raise BenchmarkError("OpMix needs at least one positive weight")

    def weights(self) -> "tuple[tuple[str, float], ...]":
        """The positive (op-name, weight) pairs, in stable field order."""
        pairs = (
            ("next", self.next_results),
            ("stream", self.stream),
            ("replay", self.feedback_replay),
            ("churn", self.churn),
            ("info", self.info),
            ("mutate", self.mutate),
        )
        return tuple((name, weight) for name, weight in pairs if weight > 0)


@dataclass(frozen=True)
class BurstProfile:
    """A periodic on/off burst overlaid on the base Poisson rate.

    For the first ``duty`` fraction of every ``period_seconds`` window the
    arrival rate is ``factor`` times the scenario's base rate; for the rest
    of the window it is the base rate.  The offered *average* rate therefore
    exceeds the base rate — the point is the transient queue the on-phase
    builds, which closed-loop load tests structurally cannot produce.
    """

    factor: float = 4.0
    period_seconds: float = 1.0
    duty: float = 0.25

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise BenchmarkError(f"Burst factor must be >= 1, got {self.factor}")
        if self.period_seconds <= 0:
            raise BenchmarkError(
                f"Burst period must be positive, got {self.period_seconds}"
            )
        if not 0.0 < self.duty < 1.0:
            raise BenchmarkError(f"Burst duty must be in (0, 1), got {self.duty}")

    def rate_at(self, offset_seconds: float, base_rate: float) -> float:
        """The instantaneous arrival rate ``offset_seconds`` into the run."""
        phase = offset_seconds % self.period_seconds
        if phase < self.duty * self.period_seconds:
            return base_rate * self.factor
        return base_rate


@dataclass(frozen=True)
class TailGates:
    """What a run must achieve for CI to pass — tails, never means.

    A mean hides queueing collapse behind a sea of fast requests; the p99
    and p999 are where stranded waiters, full-window sleeps, and keep-alive
    desyncs actually show up.  ``min_achieved_ratio`` bounds achieved/offered
    throughput (an open-loop run that silently falls behind its schedule is
    a failure even if every completed request was fast), and
    ``max_unexpected_errors`` keeps the error taxonomy honest.
    """

    p99_ms: float
    p999_ms: "float | None" = None
    min_achieved_ratio: float = 0.5
    max_unexpected_errors: int = 0
    recovery_p99_ms: "float | None" = None
    """For fault scenarios with a bounded window: p99 over the primaries
    scheduled *after* the fault window closed.  The recovery gate is what
    proves the service healed — breakers re-closed, degradation lifted,
    no stranded waiters — instead of merely surviving the chaos."""

    def __post_init__(self) -> None:
        if self.p99_ms <= 0:
            raise BenchmarkError(f"p99 gate must be positive, got {self.p99_ms}")
        if self.p999_ms is not None and self.p999_ms < self.p99_ms:
            raise BenchmarkError(
                f"p999 gate ({self.p999_ms}) must be >= the p99 gate ({self.p99_ms})"
            )
        if not 0.0 < self.min_achieved_ratio <= 1.0:
            raise BenchmarkError(
                f"min_achieved_ratio must be in (0, 1], got {self.min_achieved_ratio}"
            )
        if self.max_unexpected_errors < 0:
            raise BenchmarkError("max_unexpected_errors must be >= 0")
        if self.recovery_p99_ms is not None and self.recovery_p99_ms <= 0:
            raise BenchmarkError(
                f"recovery_p99_ms gate must be positive, got {self.recovery_p99_ms}"
            )


@dataclass(frozen=True)
class TrafficScenario:
    """One open-loop workload: arrival process, op mix, and its tail gates."""

    name: str
    description: str
    duration_seconds: float = 4.0
    rate_rps: float = 30.0
    session_count: int = 8
    batch_size: int = 3
    mix: OpMix = field(default_factory=OpMix)
    burst: "BurstProfile | None" = None
    drip_seconds: float = 0.0
    """Consumer-side sleep between streamed items (the slow-drip workload)."""
    max_inflight: int = 64
    """Worker cap of the open-loop executor.  Arrivals beyond it queue —
    and their queueing time is charged to their open-loop latency, exactly
    like a real listen backlog."""
    seed: int = 1234
    expected_errors: "tuple[str, ...]" = ()
    """Exception class names the workload *intends* to provoke (e.g.
    ``RateLimitedError`` in a storm).  Anything else counts as unexpected
    and trips the gate."""
    server_rate_limit_rps: float = 0.0
    """Hint for the fixture building the server: a positive value asks for
    ``RateLimitMiddleware`` at this sustained rate (HTTP transport only —
    the in-process client sits below the middleware pipeline)."""
    faults: "FaultPlan | None" = None
    """A fault plan makes this a chaos scenario: the harness wraps the
    client in :class:`~repro.faults.client.FaultyClient` (armed at the
    run's t0, so the plan's window offsets line up with arrival offsets)
    and every injected failure must land in ``expected_errors``."""
    forced_merges: int = 0
    """How many segment merges to force at evenly spaced offsets during the
    run (``POST /datasets/{name}/merge`` from a background thread).  The
    live-ingest workload uses this to prove generation swaps are invisible
    to in-flight traffic: merge errors land in the taxonomy and trip the
    unexpected-errors gate, but the merges are non-primary so their build
    latency never skews the query tail."""
    gates: TailGates = field(default_factory=lambda: TailGates(p99_ms=500.0))

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise BenchmarkError(
                f"duration_seconds must be positive, got {self.duration_seconds}"
            )
        if self.rate_rps <= 0:
            raise BenchmarkError(f"rate_rps must be positive, got {self.rate_rps}")
        if self.session_count < 1:
            raise BenchmarkError(f"session_count must be >= 1, got {self.session_count}")
        if self.batch_size < 1:
            raise BenchmarkError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.drip_seconds < 0:
            raise BenchmarkError(f"drip_seconds must be >= 0, got {self.drip_seconds}")
        if self.max_inflight < 1:
            raise BenchmarkError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.forced_merges < 0:
            raise BenchmarkError(
                f"forced_merges must be >= 0, got {self.forced_merges}"
            )

    def scaled(
        self,
        duration_seconds: "float | None" = None,
        rate_rps: "float | None" = None,
        session_count: "int | None" = None,
    ) -> "TrafficScenario":
        """The same workload at a different scale (for CI smoke runs).

        Rescaling the duration also rescales a fault plan's window by the
        same ratio, so a smoke run keeps the full baseline → chaos →
        recovery arc instead of compressing the run to before (or entirely
        inside) the fault window.
        """
        overrides: "dict[str, Any]" = {}
        if duration_seconds is not None:
            overrides["duration_seconds"] = duration_seconds
            if self.faults is not None and self.duration_seconds > 0:
                ratio = duration_seconds / self.duration_seconds
                stop = self.faults.window_stop_seconds
                overrides["faults"] = dataclasses.replace(
                    self.faults,
                    window_start_seconds=self.faults.window_start_seconds * ratio,
                    window_stop_seconds=None if stop is None else stop * ratio,
                )
        if rate_rps is not None:
            overrides["rate_rps"] = rate_rps
        if session_count is not None:
            overrides["session_count"] = session_count
        return dataclasses.replace(self, **overrides)

    def to_json(self) -> "dict[str, Any]":
        """A JSON-serializable dict that :meth:`from_json` reconstructs."""
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(payload: "Mapping[str, Any]") -> "TrafficScenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        data = dict(payload)
        try:
            mix = OpMix(**data.pop("mix"))
            burst_payload = data.pop("burst", None)
            burst = BurstProfile(**burst_payload) if burst_payload else None
            gates = TailGates(**data.pop("gates"))
            expected = tuple(data.pop("expected_errors", ()))
            faults_payload = data.pop("faults", None)
            faults = (
                FaultPlan.from_json(faults_payload) if faults_payload else None
            )
            return TrafficScenario(
                mix=mix,
                burst=burst,
                gates=gates,
                expected_errors=expected,
                faults=faults,
                **data,
            )
        except TypeError as exc:
            raise BenchmarkError(f"Malformed scenario payload: {exc}") from exc


SCENARIO_PACK: "tuple[TrafficScenario, ...]" = (
    TrafficScenario(
        name="steady",
        description="Pure feedback rounds at a steady Poisson rate — the baseline scoreboard row.",
        rate_rps=30.0,
        gates=TailGates(p99_ms=400.0, p999_ms=900.0, min_achieved_ratio=0.6),
    ),
    TrafficScenario(
        name="burst",
        description="5x arrival bursts for 20% of every second — the queueing-collapse probe.",
        rate_rps=24.0,
        burst=BurstProfile(factor=5.0, period_seconds=1.0, duty=0.2),
        gates=TailGates(p99_ms=700.0, p999_ms=1500.0, min_achieved_ratio=0.6),
    ),
    TrafficScenario(
        name="session_churn",
        description="Sessions constantly closed and restarted under live next/info traffic.",
        rate_rps=25.0,
        mix=OpMix(next_results=0.6, churn=0.3, info=0.1),
        gates=TailGates(p99_ms=600.0, min_achieved_ratio=0.6),
    ),
    TrafficScenario(
        name="mixed_ratio",
        description="Blended next / NDJSON-stream / info traffic in one arrival process.",
        rate_rps=25.0,
        mix=OpMix(next_results=0.45, stream=0.35, info=0.2),
        gates=TailGates(p99_ms=600.0, min_achieved_ratio=0.6),
    ),
    TrafficScenario(
        name="slow_drip",
        description="Streaming consumers that sip one item at a time — slow-reader back-pressure.",
        rate_rps=12.0,
        mix=OpMix(next_results=0.0, stream=1.0),
        drip_seconds=0.02,
        gates=TailGates(p99_ms=1200.0, min_achieved_ratio=0.5),
    ),
    TrafficScenario(
        name="feedback_replay",
        description="Adversarial idempotency traffic: duplicate keys, then conflicting payloads.",
        rate_rps=20.0,
        mix=OpMix(next_results=0.4, feedback_replay=0.6),
        expected_errors=("IdempotencyConflictError",),
        gates=TailGates(p99_ms=600.0, min_achieved_ratio=0.6),
    ),
    TrafficScenario(
        name="rate_limit_storm",
        description="Arrivals far above the server's token bucket — the 429 path under fire.",
        rate_rps=80.0,
        burst=BurstProfile(factor=3.0, period_seconds=1.0, duty=0.3),
        server_rate_limit_rps=40.0,
        # A 429 mid-round leaves sessions the harness has to recycle; the
        # close/start/next races that recycling loses under the storm
        # surface as session-liveness errors, which are part of the
        # workload's intended chaos — anything else still trips the gate.
        expected_errors=(
            "RateLimitedError",
            "SessionError",
            "UnknownResourceError",
        ),
        gates=TailGates(p99_ms=800.0, min_achieved_ratio=0.2),
    ),
    TrafficScenario(
        name="live_ingest",
        description=(
            "Queries racing live upserts with forced segment merges mid-run "
            "— the zero-downtime proof for the mutable dataset tier."
        ),
        duration_seconds=6.0,
        rate_rps=20.0,
        mix=OpMix(next_results=0.7, info=0.1, mutate=0.2),
        forced_merges=2,
        # The delta cap backpressures writers with a typed 503 when ingest
        # outruns merging — that is the intended shedding path.  Anything
        # else (a query failing mid-swap, a stale-generation crash) is
        # exactly what this scenario exists to catch.
        expected_errors=("ServiceOverloadedError",),
        gates=TailGates(p99_ms=800.0, p999_ms=2000.0, min_achieved_ratio=0.5),
    ),
    TrafficScenario(
        name="chaos",
        description=(
            "Windowed fault injection over mixed traffic: latency, 500s, "
            "resets, truncated streams, and skewed deadlines — the resilience "
            "layer's proof run."
        ),
        duration_seconds=6.0,
        rate_rps=20.0,
        mix=OpMix(next_results=0.7, stream=0.2, info=0.1),
        faults=FaultPlan(
            seed=97,
            latency_ms=80.0,
            latency_probability=0.15,
            error_probability=0.08,
            reset_probability=0.08,
            truncate_probability=0.05,
            skew_probability=0.05,
            window_start_seconds=1.5,
            window_stop_seconds=4.0,
        ),
        # Every fault family surfaces as its typed error; the session
        # recycling a mid-round failure forces can itself lose close/start
        # races, which shows up as session-liveness errors.  Anything
        # outside this taxonomy (raw socket errors, harness crashes) trips
        # the gate — that is the scenario's whole point.
        expected_errors=(
            "InternalServiceError",
            "ConnectionFailedError",
            "TransportError",
            "DeadlineExceededError",
            "CircuitOpenError",
            "SessionError",
            "UnknownResourceError",
        ),
        gates=TailGates(
            p99_ms=1500.0,
            min_achieved_ratio=0.4,
            recovery_p99_ms=600.0,
        ),
    ),
)
"""The shipped scenario pack — ISSUE/ROADMAP's named load shapes plus the
steady baseline every scaling PR reports against and the ``chaos``
fault-injection run the resilience layer gates on."""


def scenario_names() -> "tuple[str, ...]":
    """The names in :data:`SCENARIO_PACK`, in pack order."""
    return tuple(scenario.name for scenario in SCENARIO_PACK)


def get_scenario(name: str) -> TrafficScenario:
    """Look a pack scenario up by name."""
    for scenario in SCENARIO_PACK:
        if scenario.name == name:
            return scenario
    raise BenchmarkError(
        f"Unknown traffic scenario '{name}'; pack has {', '.join(scenario_names())}"
    )
