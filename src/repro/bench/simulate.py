"""Oracle feedback: replaying ground-truth boxes as simulated user input.

The accuracy benchmark (§5.1) involves no real users: when a method shows an
image, the benchmark looks up the dataset's ground truth for the query
category; if the image contains the category it is marked relevant and the
annotation boxes are used as the region feedback, otherwise it is marked not
relevant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import ImageDataset
from repro.data.geometry import BoundingBox
from repro.exceptions import BenchmarkError


@dataclass(frozen=True)
class OracleJudgement:
    """The oracle's answer for one shown image."""

    image_id: int
    relevant: bool
    boxes: tuple[BoundingBox, ...]


class OracleUser:
    """Provides ground-truth relevance and boxes for one (dataset, category)."""

    def __init__(self, dataset: ImageDataset, category: str) -> None:
        dataset.category(category)  # validate early
        self.dataset = dataset
        self.category = category

    def judge(self, image_id: int) -> OracleJudgement:
        """Judge one image: relevant iff it contains the category."""
        image = self.dataset.image(image_id)
        boxes = image.ground_truth_boxes(self.category)
        if boxes:
            return OracleJudgement(image_id=image_id, relevant=True, boxes=boxes)
        return OracleJudgement(image_id=image_id, relevant=False, boxes=())

    @property
    def total_relevant(self) -> int:
        """Number of relevant images in the dataset for this category."""
        count = self.dataset.positive_count(self.category)
        if count == 0:
            raise BenchmarkError(
                f"Category '{self.category}' has no positives in '{self.dataset.name}'"
            )
        return count
