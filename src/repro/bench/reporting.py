"""Plain-text rendering of benchmark results (paper-style tables and CDFs)."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: "str | None" = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a simple aligned text table."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            if np.isnan(cell):
                return "NA"
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in rendered)) if rendered else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_cdf(
    values: Mapping[str, Sequence[float]],
    thresholds: Sequence[float] = (-0.25, 0.0, 0.25, 0.5, 0.75, 1.0),
    title: "str | None" = None,
) -> str:
    """Summarise one or more empirical CDFs at fixed thresholds."""
    headers = ["series"] + [f"P(x<={t:g})" for t in thresholds]
    rows = []
    for name, series in values.items():
        array = np.asarray(list(series), dtype=np.float64)
        array = array[np.isfinite(array)]
        if array.size == 0:
            rows.append([name] + [float("nan")] * len(thresholds))
            continue
        rows.append([name] + [float(np.mean(array <= t)) for t in thresholds])
    return format_table(headers, rows, title=title)


def format_mean_ap_matrix(
    results: Mapping[str, Mapping[str, float]],
    datasets: Sequence[str],
    title: "str | None" = None,
) -> str:
    """Render a rows-by-datasets mAP matrix with a trailing average column."""
    headers = ["method"] + list(datasets) + ["avg."]
    rows = []
    for row_name, per_dataset in results.items():
        values = [per_dataset.get(dataset, float("nan")) for dataset in datasets]
        finite = [v for v in values if not np.isnan(v)]
        average = float(np.mean(finite)) if finite else float("nan")
        rows.append([row_name] + values + [average])
    return format_table(headers, rows, title=title)
