"""One entry point per table and figure of the paper's evaluation.

Every experiment takes pre-built :class:`~repro.bench.suite.DatasetBundle`
objects plus an :class:`~repro.bench.suite.ExperimentScale`, returns a result
object holding the raw numbers, and can render a paper-style text report.
The benchmark scripts under ``benchmarks/`` are thin wrappers around these
functions; they are also importable for ad-hoc analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.baselines import (
    EnsMethod,
    FewShotClipMethod,
    RocchioMethod,
    ZeroShotClipMethod,
    fit_ideal_vector,
)
from repro.baselines.propagation_search import PropagationMethod
from repro.bench.reporting import format_cdf, format_mean_ap_matrix, format_table
from repro.bench.runner import BenchmarkSettings, SessionOutcome, run_query_set
from repro.bench.suite import DatasetBundle, ExperimentScale
from repro.bench.tasks import BenchmarkQuery
from repro.config import LossWeights, SeeSawConfig
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.embedding.calibration import PlattScaler
from repro.exceptions import BenchmarkError
from repro.metrics.aggregates import (
    HARD_SUBSET_THRESHOLD,
    ApDistribution,
    hard_subset,
    mean_average_precision,
)
from repro.metrics.average_precision import average_precision_full
from repro.users.model import BASELINE_TIMING, SEESAW_TIMING, AnnotationTimeModel
from repro.users.study import StudyQuery, StudyResult, simulate_user_study


def _ap_map(outcomes: Mapping[str, SessionOutcome]) -> "dict[str, float]":
    return {key: outcome.average_precision for key, outcome in outcomes.items()}


def _mean_over(ap: Mapping[str, float], keys: "Sequence[str] | None" = None) -> float:
    if keys is None:
        return mean_average_precision(list(ap.values()))
    return mean_average_precision([ap[key] for key in keys if key in ap])


# ---------------------------------------------------------------------------
# Figure 1 — zero-shot CLIP AP distribution
# ---------------------------------------------------------------------------
@dataclass
class Figure1Result:
    """CDF of zero-shot AP per dataset and the fraction of hard queries."""

    distributions: "dict[str, ApDistribution]"

    def format_text(self) -> str:
        rows = []
        for name, dist in self.distributions.items():
            rows.append(
                [
                    name,
                    len(dist.per_query),
                    dist.mean,
                    dist.median,
                    dist.fraction_below(HARD_SUBSET_THRESHOLD),
                    dist.count_below(HARD_SUBSET_THRESHOLD),
                ]
            )
        return format_table(
            ["dataset", "queries", "mean AP", "median AP", "frac AP<.5", "count AP<.5"],
            rows,
            title="Figure 1: zero-shot CLIP AP distribution per dataset",
        )


def figure1_zero_shot_cdf(
    bundles: Mapping[str, DatasetBundle],
    scale: ExperimentScale,
    settings: "BenchmarkSettings | None" = None,
) -> Figure1Result:
    """Zero-shot CLIP AP per query on the coarse index (Figure 1)."""
    settings = settings or BenchmarkSettings()
    distributions: dict[str, ApDistribution] = {}
    for name, bundle in bundles.items():
        outcomes = run_query_set(
            bundle.coarse_index, ZeroShotClipMethod, bundle.queries(scale), settings
        )
        distributions[name] = ApDistribution(
            dataset=name, method="zero_shot", per_query=_ap_map(outcomes)
        )
    return Figure1Result(distributions=distributions)


# ---------------------------------------------------------------------------
# Figure 4 — ideal query vector vs initial query vector (ObjectNet)
# ---------------------------------------------------------------------------
@dataclass
class Figure4Result:
    """Per-category (initial AP, ideal AP) pairs on the ObjectNet-like dataset."""

    points: "list[tuple[str, float, float]]"

    @property
    def median_initial(self) -> float:
        return float(np.median([p[1] for p in self.points])) if self.points else float("nan")

    @property
    def median_ideal(self) -> float:
        return float(np.median([p[2] for p in self.points])) if self.points else float("nan")

    @property
    def fraction_ideal_perfect(self) -> float:
        """Fraction of categories whose ideal vector reaches AP = 1."""
        if not self.points:
            return float("nan")
        return float(np.mean([p[2] >= 0.999 for p in self.points]))

    def format_text(self) -> str:
        rows = [
            ["median", self.median_initial, self.median_ideal],
            ["fraction ideal AP=1", float("nan"), self.fraction_ideal_perfect],
        ]
        header = format_table(
            ["statistic", "initial query AP", "ideal query AP"],
            rows,
            title="Figure 4: ideal vs initial query vector AP (ObjectNet-like)",
        )
        return header


def figure4_ideal_vs_initial(
    bundle: DatasetBundle,
    scale: ExperimentScale,
    lambda_norm: float = 1.0,
) -> Figure4Result:
    """Fit the per-category best linear query and compare with the text query."""
    index = bundle.coarse_index
    vectors = np.asarray(index.store.vectors)
    image_ids = [record.image_id for record in index.store.records]
    points: list[tuple[str, float, float]] = []
    for query in bundle.queries(scale):
        labels = np.array(
            [
                1.0 if bundle.dataset.is_relevant(image_id, query.category) else 0.0
                for image_id in image_ids
            ]
        )
        if labels.max() == labels.min():
            continue
        text_vector = bundle.embedding.embed_text(query.prompt)
        initial_ap = average_precision_full(vectors @ text_vector, labels)
        ideal_vector = fit_ideal_vector(vectors, labels, lambda_norm=lambda_norm)
        ideal_ap = average_precision_full(vectors @ ideal_vector, labels)
        points.append((query.category, initial_ap, ideal_ap))
    return Figure4Result(points=points)


# ---------------------------------------------------------------------------
# Figure 5 — ΔAP CDF of SeeSaw over zero-shot CLIP
# ---------------------------------------------------------------------------
@dataclass
class Figure5Result:
    """Per-dataset ΔAP (SeeSaw − zero-shot) for all queries and the hard subset."""

    delta_all: "dict[str, dict[str, float]]"
    delta_hard: "dict[str, dict[str, float]]"

    def improvement_fraction(self, dataset: str) -> float:
        """Fraction of queries whose AP improved or stayed the same."""
        values = np.array(list(self.delta_all[dataset].values()))
        return float(np.mean(values >= -1e-9)) if values.size else float("nan")

    def format_text(self) -> str:
        sections = []
        for dataset in self.delta_all:
            sections.append(
                format_cdf(
                    {
                        "all queries": list(self.delta_all[dataset].values()),
                        "hard subset": list(self.delta_hard[dataset].values()),
                    },
                    thresholds=(-0.25, 0.0, 0.25, 0.5, 0.75),
                    title=f"Figure 5 [{dataset}]: CDF of change in AP (SeeSaw - zero-shot)",
                )
            )
            sections.append(
                f"  fraction of queries improving or unchanged: "
                f"{self.improvement_fraction(dataset):.2f}"
            )
        return "\n".join(sections)


def figure5_delta_ap(
    bundles: Mapping[str, DatasetBundle],
    scale: ExperimentScale,
    settings: "BenchmarkSettings | None" = None,
    config: "SeeSawConfig | None" = None,
) -> Figure5Result:
    """ΔAP of full SeeSaw (multiscale) over coarse zero-shot CLIP (Figure 5)."""
    settings = settings or BenchmarkSettings()
    delta_all: dict[str, dict[str, float]] = {}
    delta_hard: dict[str, dict[str, float]] = {}
    for name, bundle in bundles.items():
        queries = bundle.queries(scale)
        zero = _ap_map(
            run_query_set(bundle.coarse_index, ZeroShotClipMethod, queries, settings)
        )
        seesaw_config = config or bundle.config
        seesaw = _ap_map(
            run_query_set(
                bundle.multiscale_index,
                lambda: SeeSawSearchMethod(seesaw_config),
                queries,
                settings,
            )
        )
        deltas = {key: seesaw[key] - zero[key] for key in seesaw}
        hard = set(hard_subset(zero))
        delta_all[name] = deltas
        delta_hard[name] = {key: value for key, value in deltas.items() if key in hard}
    return Figure5Result(delta_all=delta_all, delta_hard=delta_hard)


# ---------------------------------------------------------------------------
# Table 2 — ablation of SeeSaw components
# ---------------------------------------------------------------------------
ABLATION_ROWS = (
    "zero-shot CLIP",
    "+multiscale",
    "+few-shot CLIP",
    "+Query align",
    "+DB align",
)


@dataclass
class Table2Result:
    """mAP per ablation row and dataset, over all queries and the hard subset."""

    all_queries: "dict[str, dict[str, float]]"
    hard_queries: "dict[str, dict[str, float]]"
    datasets: "tuple[str, ...]"

    def format_text(self) -> str:
        return "\n\n".join(
            [
                format_mean_ap_matrix(
                    self.all_queries, self.datasets, title="Table 2 (all queries)"
                ),
                format_mean_ap_matrix(
                    self.hard_queries, self.datasets, title="Table 2 (hard subset)"
                ),
            ]
        )


def table2_ablation(
    bundles: Mapping[str, DatasetBundle],
    scale: ExperimentScale,
    settings: "BenchmarkSettings | None" = None,
) -> Table2Result:
    """Add SeeSaw's components one at a time and record the mAP after each."""
    settings = settings or BenchmarkSettings()
    all_queries: dict[str, dict[str, float]] = {row: {} for row in ABLATION_ROWS}
    hard_queries: dict[str, dict[str, float]] = {row: {} for row in ABLATION_ROWS}
    for name, bundle in bundles.items():
        queries = bundle.queries(scale)
        config = bundle.config
        query_align_config = config.with_overrides(use_db_alignment=False)
        per_row: dict[str, dict[str, float]] = {}
        per_row["zero-shot CLIP"] = _ap_map(
            run_query_set(bundle.coarse_index, ZeroShotClipMethod, queries, settings)
        )
        per_row["+multiscale"] = _ap_map(
            run_query_set(bundle.multiscale_index, ZeroShotClipMethod, queries, settings)
        )
        per_row["+few-shot CLIP"] = _ap_map(
            run_query_set(
                bundle.multiscale_index, lambda: FewShotClipMethod(config), queries, settings
            )
        )
        per_row["+Query align"] = _ap_map(
            run_query_set(
                bundle.multiscale_index,
                lambda: SeeSawSearchMethod(query_align_config),
                queries,
                settings,
            )
        )
        per_row["+DB align"] = _ap_map(
            run_query_set(
                bundle.multiscale_index,
                lambda: SeeSawSearchMethod(config),
                queries,
                settings,
            )
        )
        hard = hard_subset(per_row["zero-shot CLIP"])
        for row in ABLATION_ROWS:
            all_queries[row][name] = _mean_over(per_row[row])
            hard_queries[row][name] = _mean_over(per_row[row], hard)
    return Table2Result(
        all_queries=all_queries,
        hard_queries=hard_queries,
        datasets=tuple(bundles),
    )


# ---------------------------------------------------------------------------
# Table 3 — baseline comparison (no multiscale)
# ---------------------------------------------------------------------------
BASELINE_ROWS = ("zero-shot CLIP", "few-shot CLIP", "ENS", "Rocchio", "this work")


@dataclass
class Table3Result:
    """mAP of every method on the coarse index, all queries and hard subset."""

    all_queries: "dict[str, dict[str, float]]"
    hard_queries: "dict[str, dict[str, float]]"
    datasets: "tuple[str, ...]"

    def format_text(self) -> str:
        return "\n\n".join(
            [
                format_mean_ap_matrix(
                    self.all_queries, self.datasets, title="Table 3 (all queries, no multiscale)"
                ),
                format_mean_ap_matrix(
                    self.hard_queries, self.datasets, title="Table 3 (hard subset, no multiscale)"
                ),
            ]
        )


def table3_baselines(
    bundles: Mapping[str, DatasetBundle],
    scale: ExperimentScale,
    settings: "BenchmarkSettings | None" = None,
) -> Table3Result:
    """Compare SeeSaw with zero-shot, few-shot, ENS, and Rocchio (Table 3)."""
    settings = settings or BenchmarkSettings()
    all_queries: dict[str, dict[str, float]] = {row: {} for row in BASELINE_ROWS}
    hard_queries: dict[str, dict[str, float]] = {row: {} for row in BASELINE_ROWS}
    for name, bundle in bundles.items():
        queries = bundle.queries(scale)
        index = bundle.coarse_index
        config = bundle.config
        horizon = settings.max_images
        per_row = {
            "zero-shot CLIP": _ap_map(
                run_query_set(index, ZeroShotClipMethod, queries, settings)
            ),
            "few-shot CLIP": _ap_map(
                run_query_set(index, lambda: FewShotClipMethod(config), queries, settings)
            ),
            "ENS": _ap_map(
                run_query_set(index, lambda: EnsMethod(horizon=horizon), queries, settings)
            ),
            "Rocchio": _ap_map(run_query_set(index, RocchioMethod, queries, settings)),
            "this work": _ap_map(
                run_query_set(index, lambda: SeeSawSearchMethod(config), queries, settings)
            ),
        }
        hard = hard_subset(per_row["zero-shot CLIP"])
        for row in BASELINE_ROWS:
            all_queries[row][name] = _mean_over(per_row[row])
            hard_queries[row][name] = _mean_over(per_row[row], hard)
    return Table3Result(
        all_queries=all_queries,
        hard_queries=hard_queries,
        datasets=tuple(bundles),
    )


# ---------------------------------------------------------------------------
# Table 4 — ENS sensitivity to horizon and calibration
# ---------------------------------------------------------------------------
@dataclass
class Table4Result:
    """ENS mAP (averaged over datasets) per reward horizon, raw vs calibrated."""

    horizons: "tuple[int, ...]"
    raw: "dict[int, float]"
    calibrated: "dict[int, float]"

    def format_text(self) -> str:
        rows = [
            ["raw gamma_i"] + [self.raw[h] for h in self.horizons],
            ["calibrated gamma_i"] + [self.calibrated[h] for h in self.horizons],
        ]
        return format_table(
            ["gamma source"] + [f"t={h}" for h in self.horizons],
            rows,
            title="Table 4: ENS mAP vs reward horizon and score calibration",
        )


def _calibrator_for_query(
    bundle: DatasetBundle, query: BenchmarkQuery
) -> "PlattScaler":
    """Platt-scale CLIP scores against ground truth (not possible in practice)."""
    index = bundle.coarse_index
    text_vector = bundle.embedding.embed_text(query.prompt)
    scores = np.asarray(index.store.vectors) @ text_vector
    labels = np.array(
        [
            1.0 if bundle.dataset.is_relevant(record.image_id, query.category) else 0.0
            for record in index.store.records
        ]
    )
    return PlattScaler().fit(scores, labels)


def table4_ens_horizon(
    bundles: Mapping[str, DatasetBundle],
    scale: ExperimentScale,
    horizons: Sequence[int] = (1, 2, 10, 60),
    settings: "BenchmarkSettings | None" = None,
) -> Table4Result:
    """ENS accuracy as a function of the reward horizon and calibration."""
    settings = settings or BenchmarkSettings()
    raw: dict[int, list[float]] = {h: [] for h in horizons}
    calibrated: dict[int, list[float]] = {h: [] for h in horizons}
    for bundle in bundles.values():
        queries = bundle.queries(scale)
        index = bundle.coarse_index
        for horizon in horizons:
            raw_outcomes = run_query_set(
                index,
                lambda: EnsMethod(horizon=horizon, shrink_horizon=False),
                queries,
                settings,
            )
            raw[horizon].append(_mean_over(_ap_map(raw_outcomes)))
            calibrated_values: list[float] = []
            for query in queries:
                scaler = _calibrator_for_query(bundle, query)
                method = EnsMethod(
                    horizon=horizon,
                    shrink_horizon=False,
                    gamma_calibrator=scaler.transform,
                )
                outcome = run_query_set(index, lambda: method, [query], settings)
                calibrated_values.append(outcome[query.key].average_precision)
            calibrated[horizon].append(mean_average_precision(calibrated_values))
    return Table4Result(
        horizons=tuple(horizons),
        raw={h: mean_average_precision(raw[h]) for h in horizons},
        calibrated={h: mean_average_precision(calibrated[h]) for h in horizons},
    )


# ---------------------------------------------------------------------------
# Table 5 — user annotation time per image
# ---------------------------------------------------------------------------
@dataclass
class Table5Result:
    """Mean annotation seconds per image, baseline vs SeeSaw UIs."""

    baseline_skip: tuple[float, float]
    baseline_mark: tuple[float, float]
    seesaw_skip: tuple[float, float]
    seesaw_mark: tuple[float, float]

    def format_text(self) -> str:
        rows = [
            ["not marked", *self.baseline_skip, *self.seesaw_skip],
            ["marked relevant", *self.baseline_mark, *self.seesaw_mark],
        ]
        return format_table(
            ["image", "baseline mean", "baseline ±", "seesaw mean", "seesaw ±"],
            rows,
            title="Table 5: annotation time per image (seconds)",
        )


def table5_annotation_time(samples: int = 2000, seed: int = 0) -> Table5Result:
    """Per-image annotation time of the simulated users (Table 5)."""
    baseline = AnnotationTimeModel(BASELINE_TIMING, seed=seed)
    seesaw = AnnotationTimeModel(SEESAW_TIMING, seed=seed + 1)
    return Table5Result(
        baseline_skip=baseline.confidence_interval(False, samples),
        baseline_mark=baseline.confidence_interval(True, samples),
        seesaw_skip=seesaw.confidence_interval(False, samples),
        seesaw_mark=seesaw.confidence_interval(True, samples),
    )


# ---------------------------------------------------------------------------
# Figure 6 — end-to-end time to complete the task
# ---------------------------------------------------------------------------
DEFAULT_STUDY_QUERIES = (
    StudyQuery(category="dog", prompt="a dog", difficulty="hard"),
    StudyQuery(category="wheelchair", prompt="a wheelchair", difficulty="hard"),
    StudyQuery(category="car_with_open_door", prompt="a car with open door", difficulty="hard"),
    StudyQuery(category="car", prompt="a car", difficulty="easy"),
    StudyQuery(category="person", prompt="a person", difficulty="easy"),
    StudyQuery(category="bicycle", prompt="a bicycle", difficulty="easy"),
)


@dataclass
class Figure6Result:
    """Median task-completion times per query and system."""

    results: "list[StudyResult]"

    def format_text(self) -> str:
        rows = []
        for result in self.results:
            rows.append(
                [
                    result.query.difficulty,
                    result.query.category,
                    result.system,
                    result.median_seconds,
                    result.ci_low,
                    result.ci_high,
                    result.completion_rate,
                ]
            )
        return format_table(
            ["difficulty", "query", "system", "median s", "ci low", "ci high", "completed"],
            rows,
            title="Figure 6: time to find 10 examples (360 s budget)",
            float_format="{:.1f}",
        )


def figure6_user_study(
    bundle: DatasetBundle,
    queries: "Sequence[StudyQuery] | None" = None,
    users_per_system: int = 8,
    target_results: int = 10,
    time_budget_seconds: float = 360.0,
    seed: int = 0,
) -> Figure6Result:
    """Simulated end-to-end study on the BDD-like dataset (Figure 6)."""
    available = set(bundle.dataset.category_names)
    chosen = [
        query
        for query in (queries or DEFAULT_STUDY_QUERIES)
        if query.category in available
    ]
    results = simulate_user_study(
        bundle.multiscale_index,
        chosen,
        users_per_system=users_per_system,
        target_results=target_results,
        time_budget_seconds=time_budget_seconds,
        seed=seed,
    )
    return Figure6Result(results=results)


# ---------------------------------------------------------------------------
# Table 6 — per-iteration latency vs database size
# ---------------------------------------------------------------------------
@dataclass
class Table6Result:
    """Mean per-iteration latency (seconds) per method and index."""

    rows: "list[dict[str, object]]"

    def format_text(self) -> str:
        methods = ["CLIP", "ENS", "Rocchio", "SeeSaw", "prop."]
        table_rows = [
            [row["index"], row["vectors"]] + [row.get(method, float("nan")) for method in methods]
            for row in self.rows
        ]
        return format_table(
            ["index", "vectors"] + methods,
            table_rows,
            title="Table 6: per-iteration latency (seconds) vs database size",
            float_format="{:.4f}",
        )


def table6_latency(
    bundles: Mapping[str, DatasetBundle],
    scale: ExperimentScale,
    settings: "BenchmarkSettings | None" = None,
    queries_per_index: int = 3,
) -> Table6Result:
    """Measure per-round latency of each method on coarse and multiscale indexes."""
    settings = settings or BenchmarkSettings()
    rows: list[dict[str, object]] = []
    for name, bundle in bundles.items():
        for multiscale in (False, True):
            if name in ("lvis",) and multiscale:
                # COCO and LVIS share the same image collection in the paper's
                # Table 6, so only one multiscale row is reported for them.
                continue
            index = bundle.index(multiscale)
            queries = bundle.queries(scale)[:queries_per_index]
            if not queries:
                continue
            config = bundle.config
            methods: dict[str, object] = {
                "CLIP": ZeroShotClipMethod,
                "Rocchio": RocchioMethod,
                "SeeSaw": lambda: SeeSawSearchMethod(config),
                "prop.": PropagationMethod,
            }
            if not multiscale:
                methods["ENS"] = lambda: EnsMethod(horizon=settings.max_images)
            row: dict[str, object] = {
                "index": f"{name}{'' if multiscale else '-'}",
                "vectors": index.vector_count,
            }
            for method_name, factory in methods.items():
                outcomes = run_query_set(index, factory, queries, settings)
                row[method_name] = float(
                    np.mean([outcome.seconds_per_round for outcome in outcomes.values()])
                )
            if multiscale:
                row["ENS"] = float("nan")
            rows.append(row)
    rows.sort(key=lambda row: row["vectors"])
    return Table6Result(rows=rows)


# ---------------------------------------------------------------------------
# Table 6 (engine) — legacy object path vs columnar engine, per-round latency
# ---------------------------------------------------------------------------
@dataclass
class EngineLatencyResult:
    """Per-round latency of the legacy object path vs the columnar engine."""

    rows: "list[dict[str, object]]"

    def format_text(self) -> str:
        columns = ["legacy_ms", "engine_ms", "speedup"]
        table_rows = [
            [row["store"], row["vectors"], row["rounds"]] + [row[c] for c in columns]
            for row in self.rows
        ]
        return format_table(
            ["store", "vectors", "rounds"] + columns,
            table_rows,
            title=(
                "Table 6 (engine): per-round next-batch latency, "
                "legacy object path vs columnar engine"
            ),
            float_format="{:.3f}",
        )


def table6_engine_latency(
    bundle: DatasetBundle,
    rounds: int = 10,
    batch_size: int = 10,
    repeats: int = 3,
    store_kinds: Sequence[str] = ("exact", "forest"),
) -> EngineLatencyResult:
    """Measure what the columnar rewrite bought on the round hot path.

    Both measurements drive the same workload — ``rounds`` batches of
    ``batch_size`` images with the exclusion state growing every round —
    through the preserved legacy implementation
    (:func:`repro.engine.legacy.legacy_top_unseen_images`: exclusion id
    sets, ``SearchHit`` objects, Python regrouping) and through the
    production engine-backed ``SearchContext`` (persistent ``SeenMask``,
    ``reduceat`` pooling).  The best of ``repeats`` runs is reported to
    damp scheduler noise.
    """
    import time

    from repro.core.indexing import SeeSawIndex
    from repro.core.interfaces import SearchContext
    from repro.engine.legacy import legacy_top_unseen_images

    query = bundle.embedding.embed_text(bundle.queries(ExperimentScale())[0].prompt)
    rows: list[dict[str, object]] = []
    for store_kind in store_kinds:
        if store_kind == "exact":
            index = bundle.multiscale_index
        else:
            index = SeeSawIndex.build(
                bundle.dataset,
                bundle.embedding,
                bundle.config,
                store_kind=store_kind,
                build_graph=False,
            )
        total_rounds = min(rounds, max(1, len(index.image_ids) // batch_size))

        def run_legacy() -> float:
            excluded: set[int] = set()
            start = time.perf_counter()
            for _ in range(total_rounds):
                results = legacy_top_unseen_images(index, query, batch_size, excluded)
                excluded |= {result.image_id for result in results}
            return (time.perf_counter() - start) / total_rounds

        def run_engine() -> float:
            context = SearchContext(index)
            excluded: set[int] = set()
            start = time.perf_counter()
            for _ in range(total_rounds):
                results = context.top_unseen_images(query, batch_size, excluded)
                shown = [result.image_id for result in results]
                context.mark_seen(shown)
                excluded |= set(shown)
            return (time.perf_counter() - start) / total_rounds

        legacy_seconds = min(run_legacy() for _ in range(repeats))
        engine_seconds = min(run_engine() for _ in range(repeats))
        rows.append(
            {
                "store": store_kind,
                "vectors": index.vector_count,
                "rounds": total_rounds,
                "legacy_ms": legacy_seconds * 1000.0,
                "engine_ms": engine_seconds * 1000.0,
                "speedup": legacy_seconds / max(engine_seconds, 1e-12),
            }
        )
    return EngineLatencyResult(rows=rows)


# ---------------------------------------------------------------------------
# Table 6 (telemetry) — hot-path overhead of the observability layer
# ---------------------------------------------------------------------------
@dataclass
class TelemetryOverheadResult:
    """Per-round engine latency with tracing enabled vs disabled."""

    rounds: int
    repeats: int
    disabled_ms: float
    enabled_ms: float
    spans_recorded: int

    @property
    def overhead_pct(self) -> float:
        """Relative per-round cost of enabled telemetry, in percent."""
        return (self.enabled_ms / max(self.disabled_ms, 1e-12) - 1.0) * 100.0

    def format_text(self) -> str:
        return format_table(
            ["mode", "per_round_ms", "spans"],
            [
                ["disabled", self.disabled_ms, 0],
                ["enabled", self.enabled_ms, self.spans_recorded],
                ["overhead_pct", self.overhead_pct, ""],
            ],
            title=(
                "Table 6 (telemetry): per-round engine latency, "
                "tracing spans enabled vs disabled"
            ),
            float_format="{:.3f}",
        )


def table6_telemetry_overhead(
    bundle: DatasetBundle,
    rounds: int = 10,
    batch_size: int = 10,
    repeats: int = 5,
) -> TelemetryOverheadResult:
    """Measure what the tracing spans cost on the engine round hot path.

    The same workload as the engine-latency experiment — ``rounds`` batches
    through an engine-backed ``SearchContext`` — run twice per repeat with
    the tracing runtime flipped between runs (interleaved, so drift in
    machine load hits both modes equally).  Disabled mode exercises the
    :data:`~repro.obs.NOOP_SPAN` fast path; enabled mode records every
    score/pool/select span into a private registry.  The best of ``repeats``
    per mode is reported — the CI gate holds the enabled/disabled ratio
    under the acceptance threshold.
    """
    import time

    from repro import obs
    from repro.core.interfaces import SearchContext

    index = bundle.multiscale_index
    query = bundle.embedding.embed_text(bundle.queries(ExperimentScale())[0].prompt)
    total_rounds = min(rounds, max(1, len(index.image_ids) // batch_size))
    registry = obs.MetricsRegistry()
    was_enabled = obs.tracing_enabled()

    def run_rounds() -> float:
        context = SearchContext(index)
        excluded: set[int] = set()
        start = time.perf_counter()
        for _ in range(total_rounds):
            results = context.top_unseen_images(query, batch_size, excluded)
            shown = [result.image_id for result in results]
            context.mark_seen(shown)
            excluded |= set(shown)
        return (time.perf_counter() - start) / total_rounds

    disabled_s = float("inf")
    enabled_s = float("inf")
    try:
        # One warm-up pass outside the timed repeats (first-touch caches).
        obs.configure(enabled=False, registry=registry)
        run_rounds()
        for _ in range(repeats):
            obs.configure(enabled=False, registry=registry)
            disabled_s = min(disabled_s, run_rounds())
            obs.configure(enabled=True, registry=registry)
            enabled_s = min(enabled_s, run_rounds())
    finally:
        obs.configure(enabled=was_enabled, registry=None)

    stage_family = registry.get("seesaw_stage_seconds")
    spans = (
        sum(child.count for _, child in stage_family.collect())
        if stage_family is not None
        else 0
    )
    return TelemetryOverheadResult(
        rounds=total_rounds,
        repeats=repeats,
        disabled_ms=disabled_s * 1000.0,
        enabled_ms=enabled_s * 1000.0,
        spans_recorded=spans,
    )


# ---------------------------------------------------------------------------
# Table 6 (service) — HTTP round-trip latency, warm vs cold index cache
# ---------------------------------------------------------------------------
@dataclass
class ServiceLatencyResult:
    """Start-up and per-request latency of the HTTP service layer."""

    rows: "list[dict[str, object]]"

    def format_text(self) -> str:
        columns = ["startup_s", "http_start_ms", "http_next_ms", "cache_hits"]
        table_rows = [
            [row["phase"], row["vectors"]] + [row[column] for column in columns]
            for row in self.rows
        ]
        return format_table(
            ["phase", "vectors"] + columns,
            table_rows,
            title=(
                "Table 6 (service): HTTP round-trip latency, "
                "cold vs warm index cache"
            ),
            float_format="{:.3f}",
        )


def table6_service_latency(
    bundle: DatasetBundle,
    cache_dir: str,
    requests_per_phase: int = 3,
) -> ServiceLatencyResult:
    """Measure service start-up and HTTP start+next latency, cold then warm.

    The *cold* phase registers the dataset against an empty cache directory
    (full preprocessing, then persisted); the *warm* phase starts a fresh
    service against the now-populated cache and must load from disk.
    """
    import time

    from repro.server import (
        SeeSawApp,
        SeeSawService,
        ServiceClient,
        SessionManager,
        StartSessionRequest,
        serve_in_background,
    )

    rows: list[dict[str, object]] = []
    query = bundle.queries(ExperimentScale())[0].prompt
    for phase in ("cold", "warm"):
        start = time.perf_counter()
        service = SeeSawService(bundle.config)
        service.register_dataset(
            bundle.dataset, bundle.embedding, preprocess=True, cache_dir=cache_dir
        )
        startup_seconds = time.perf_counter() - start
        app = SeeSawApp(SessionManager(service))
        start_latencies: list[float] = []
        next_latencies: list[float] = []
        with serve_in_background(app) as server:
            client = ServiceClient(server.url)
            for _ in range(requests_per_phase):
                begin = time.perf_counter()
                info = client.start_session(
                    StartSessionRequest(
                        dataset=bundle.dataset.name, text_query=query, batch_size=3
                    )
                )
                start_latencies.append(time.perf_counter() - begin)
                begin = time.perf_counter()
                client.next_results(info.session_id)
                next_latencies.append(time.perf_counter() - begin)
                client.close_session(info.session_id)
        rows.append(
            {
                "phase": phase,
                "vectors": service.index_for(bundle.dataset.name).vector_count,
                "startup_s": startup_seconds,
                "http_start_ms": float(np.mean(start_latencies)) * 1000.0,
                "http_next_ms": float(np.mean(next_latencies)) * 1000.0,
                "cache_hits": service.cache_hits,
            }
        )
    return ServiceLatencyResult(rows=rows)


# ---------------------------------------------------------------------------
# Table 6 (protocol) — `/v1` streaming NDJSON vs single-shot JSON
# ---------------------------------------------------------------------------
@dataclass
class ProtocolStreamingResult:
    """Wire-level latency of `/v1` next-batch delivery, per mode and count."""

    rows: "list[dict[str, object]]"

    def format_text(self) -> str:
        columns = ["count", "mode", "first_item_ms", "total_ms"]
        table_rows = [[row[column] for column in columns] for row in self.rows]
        return format_table(
            columns,
            table_rows,
            title=(
                "Table 6 (protocol): /v1 next-batch delivery, "
                "streaming NDJSON vs single-shot JSON"
            ),
            float_format="{:.3f}",
        )

    def by_mode(self, mode: str) -> "dict[int, dict[str, float]]":
        """``count -> row`` for one delivery mode (gate helper)."""
        return {
            int(row["count"]): {
                "first_item_ms": float(row["first_item_ms"]),
                "total_ms": float(row["total_ms"]),
            }
            for row in self.rows
            if row["mode"] == mode
        }


def table6_protocol_streaming(
    bundle: DatasetBundle,
    counts: Sequence[int] = (8, 32, 128),
    repeats: int = 5,
) -> ProtocolStreamingResult:
    """Measure `/v1` result delivery: chunked NDJSON vs one JSON body.

    Both modes compute the batch identically server-side; the question is
    wire behaviour — how soon the *first* item is decodable client-side
    (what a UI paints) vs the total time for the batch.  Each measurement
    uses a fresh session so every fetch returns exactly ``count`` unseen
    items; item identity between the two modes is asserted, not assumed.
    Timings are min-of-``repeats``.
    """
    import time

    from repro.server import (
        HTTPClient,
        SeeSawApp,
        SeeSawService,
        SessionManager,
        StartSessionRequest,
        serve_in_background,
    )

    query = bundle.queries(ExperimentScale())[0].prompt
    available = len(bundle.dataset.images)
    counts = [count for count in counts if count <= available] or [available]
    service = SeeSawService(bundle.config)
    service.register_dataset(bundle.dataset, bundle.embedding, preprocess=True)
    app = SeeSawApp(SessionManager(service))
    rows: "list[dict[str, object]]" = []
    with serve_in_background(app) as server:
        client = HTTPClient(server.url, client_id="bench-protocol")
        for count in counts:
            reference_ids: "list[int] | None" = None
            for mode in ("json", "ndjson"):
                best_first = float("inf")
                best_total = float("inf")
                for _ in range(repeats):
                    info = client.start_session(
                        StartSessionRequest(
                            dataset=bundle.dataset.name,
                            text_query=query,
                            batch_size=count,
                        )
                    )
                    begin = time.perf_counter()
                    if mode == "json":
                        response = client.next_results(info.session_id)
                        total = time.perf_counter() - begin
                        first = total
                        image_ids = [item.image_id for item in response.items]
                    else:
                        first = float("inf")
                        image_ids = []
                        for item in client.stream_next_results(info.session_id):
                            if not image_ids:
                                first = time.perf_counter() - begin
                            image_ids.append(item.image_id)
                        total = time.perf_counter() - begin
                    client.close_session(info.session_id)
                    if reference_ids is None:
                        reference_ids = image_ids
                    elif image_ids != reference_ids:
                        raise BenchmarkError(
                            f"Delivery modes disagree at count={count}: "
                            f"{mode} returned different items"
                        )
                    best_first = min(best_first, first)
                    best_total = min(best_total, total)
                rows.append(
                    {
                        "count": count,
                        "mode": mode,
                        "first_item_ms": best_first * 1000.0,
                        "total_ms": best_total * 1000.0,
                    }
                )
    return ProtocolStreamingResult(rows=rows)


# ---------------------------------------------------------------------------
# Table 6 (sharded/batched) — the scaling layer's latency profile
# ---------------------------------------------------------------------------
@dataclass
class ShardedLatencyResult:
    """Per-round latency of the sharded store and the fused batch engine."""

    rows: "list[dict[str, object]]"

    def format_text(self) -> str:
        columns = ["mode", "sessions", "shards", "per_session_ms"]
        table_rows = [[row.get(column, "") for column in columns] for row in self.rows]
        return format_table(
            columns,
            table_rows,
            title=(
                "Table 6 (sharded/batched): per-session per-round latency "
                "vs concurrency and shard count"
            ),
            float_format="{:.3f}",
        )

    def fused_by_sessions(self) -> "dict[int, float]":
        """``sessions -> per_session_ms`` for the fused rows (gate helper)."""
        return {
            int(row["sessions"]): float(row["per_session_ms"])
            for row in self.rows
            if row["mode"] == "fused"
        }

    def sequential_by_sessions(self) -> "dict[int, float]":
        """``sessions -> per_session_ms`` for the sequential rows."""
        return {
            int(row["sessions"]): float(row["per_session_ms"])
            for row in self.rows
            if row["mode"] == "sequential"
        }


def table6_sharded_latency(
    bundle: DatasetBundle,
    shard_count: int = 4,
    session_counts: Sequence[int] = (1, 4, 8, 16),
    rounds: int = 6,
    batch_size: int = 5,
    repeats: int = 3,
) -> ShardedLatencyResult:
    """Measure what sharding and fused batching buy on the round hot path.

    Two row families over the bundle's multiscale index:

    * ``score_all`` rows — one full bulk-scoring call on the flat exact
      store vs the ``shard_count``-way sharded wrapper (whose results are
      bit-identical; the property suite pins that, this measures it).
    * ``sequential`` vs ``fused`` rows — Q concurrent sessions driven for
      ``rounds`` rounds either as Q independent engine rounds or as one
      fused :class:`~repro.engine.batch.BatchQueryEngine` cohort per round.
      ``per_session_ms`` is the per-session per-round latency; the fused
      number falling as Q grows is the amortization the coalescing
      scheduler exists to harvest.

    The shared bundle index is never mutated: sharded/batched paths run on
    engines built over a wrapped copy of its store.
    """
    import time

    from repro.engine import BatchQueryEngine, QueryEngine
    from repro.vectorstore.sharded import ShardedVectorStore

    index = bundle.multiscale_index
    flat_engine = QueryEngine(index.store, index.segments)
    sharded_engine = QueryEngine(
        ShardedVectorStore.wrap(index.store, shard_count), index.segments
    )
    batch_engine = BatchQueryEngine(flat_engine)
    rng = np.random.default_rng(0)
    probe = bundle.embedding.embed_text(bundle.queries(ExperimentScale())[0].prompt)

    rows: "list[dict[str, object]]" = []
    for label, engine, shards in (("flat", flat_engine, 1), ("sharded", sharded_engine, shard_count)):
        def run_score_all(engine=engine) -> float:
            start = time.perf_counter()
            for _ in range(rounds):
                engine.score_all_images(probe)
            return (time.perf_counter() - start) / rounds
        rows.append(
            {
                "mode": f"score_all/{label}",
                "sessions": 1,
                "shards": shards,
                "per_session_ms": min(run_score_all() for _ in range(repeats)) * 1000.0,
            }
        )

    max_sessions = max(session_counts)
    # Distinct per-session query vectors: the probe plus seeded perturbations,
    # the spread a cohort of different text queries would produce.
    query_pool = probe + 0.25 * rng.standard_normal((max_sessions, probe.shape[0]))

    for session_count in session_counts:
        queries = query_pool[:session_count]

        def run_sequential() -> float:
            masks = [flat_engine.new_mask() for _ in range(session_count)]
            start = time.perf_counter()
            for _ in range(rounds):
                for row in range(session_count):
                    ids, _, _ = flat_engine.top_unseen_arrays(
                        queries[row], batch_size, masks[row]
                    )
                    masks[row].mark_images(ids.tolist())
            return (time.perf_counter() - start) / (rounds * session_count)

        def run_fused() -> float:
            masks = [flat_engine.new_mask() for _ in range(session_count)]
            start = time.perf_counter()
            for _ in range(rounds):
                triples = batch_engine.top_unseen_batch(queries, batch_size, masks)
                for row, (ids, _, _) in enumerate(triples):
                    masks[row].mark_images(ids.tolist())
            return (time.perf_counter() - start) / (rounds * session_count)

        sequential_seconds = min(run_sequential() for _ in range(repeats))
        fused_seconds = min(run_fused() for _ in range(repeats))
        rows.append(
            {
                "mode": "sequential",
                "sessions": session_count,
                "shards": 1,
                "per_session_ms": sequential_seconds * 1000.0,
            }
        )
        rows.append(
            {
                "mode": "fused",
                "sessions": session_count,
                "shards": 1,
                "per_session_ms": fused_seconds * 1000.0,
            }
        )
    return ShardedLatencyResult(rows=rows)


# ---------------------------------------------------------------------------
# Table 6 (dtype/quantized/mmap) — the storage & compute tier profile
# ---------------------------------------------------------------------------
@dataclass
class DtypeThroughputResult:
    """Per-round scoring latency per compute tier, and cold-load latency per
    on-disk layout."""

    scoring_rows: "list[dict[str, object]]"
    load_rows: "list[dict[str, object]]"

    def format_text(self) -> str:
        columns = ["tier", "vectors", "per_round_ms", "speedup_vs_f64", "stream_mb"]
        scoring = format_table(
            columns,
            [[row[column] for column in columns] for row in self.scoring_rows],
            title=(
                "Table 6 (dtype): per-round top-k scoring latency by compute "
                "tier (stream_mb = matrix bytes the candidate pass reads)"
            ),
            float_format="{:.3f}",
        )
        load_columns = ["layout", "vectors", "cold_load_ms", "speedup"]
        loads = format_table(
            load_columns,
            [[row[column] for column in load_columns] for row in self.load_rows],
            title=(
                "Table 6 (index load): cold index load latency, compressed "
                "npz vs raw npy with mmap"
            ),
            float_format="{:.3f}",
        )
        return scoring + "\n\n" + loads

    def scoring_ms(self) -> "dict[str, float]":
        """``tier -> per_round_ms`` (gate helper)."""
        return {
            str(row["tier"]): float(row["per_round_ms"]) for row in self.scoring_rows
        }

    def load_ms(self) -> "dict[str, float]":
        """``layout -> cold_load_ms`` (gate helper)."""
        return {str(row["layout"]): float(row["cold_load_ms"]) for row in self.load_rows}


def table6_dtype_throughput(
    bundle: DatasetBundle,
    vector_count: int = 16384,
    dim: int = 128,
    k: int = 10,
    query_count: int = 8,
    repeats: int = 5,
    load_repeats: int = 3,
    cache_dir: "str | None" = None,
) -> DtypeThroughputResult:
    """Measure what the storage & compute tiers buy, and what they cost.

    **Scoring rows** run the per-round top-k (``search_arrays``) over one
    seeded random unit-vector corpus through three tiers:

    * ``float64`` — the bit-parity reference scan;
    * ``float32`` — same scan at half the bytes per score (the expected ~2x
      bandwidth win this experiment gates in CI);
    * ``int8+rerank`` — the quantized candidate pass (int32-accumulated
      int8 GEMM, an 8x reduction in matrix bytes streamed) plus the exact
      float32 re-rank of ``rerank_factor * k`` candidates.  NumPy has no
      vectorised int8 GEMM kernel, so this tier trades CPU time for the
      smaller scoring working set — ``stream_mb`` is the honest column to
      compare; its top-k is pinned equal to the exact store's.

    **Load rows** serialize the bundle's real multiscale index in both
    layouts and time a cold :func:`~repro.store.serialize.load_index` —
    decompressing ``arrays.npz`` into private arrays vs memory-mapping raw
    ``.npy`` (no inflate, no copy; the load's validation pass streams the
    pages through the OS page cache), the second CI gate.
    """
    import tempfile
    import time

    from repro.data.geometry import BoundingBox
    from repro.store.serialize import load_index, save_index
    from repro.vectorstore.base import VectorRecord
    from repro.vectorstore.exact import ExactVectorStore
    from repro.vectorstore.quantized import QuantizedVectorStore

    rng = np.random.default_rng(6)
    matrix = rng.standard_normal((vector_count, dim))
    matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
    records = [
        VectorRecord(vector_id=i, image_id=i, box=BoundingBox(0.0, 0.0, 32.0, 32.0))
        for i in range(vector_count)
    ]
    queries = rng.standard_normal((query_count, dim))
    stores = {
        "float64": ExactVectorStore(matrix, records),
        "float32": ExactVectorStore(matrix, records, compute_dtype="float32"),
        "int8+rerank": QuantizedVectorStore(
            matrix, records, compute_dtype="float32"
        ),
    }
    stream_bytes = {
        "float64": vector_count * dim * 8,
        "float32": vector_count * dim * 4,
        # codes + the re-ranked candidate rows in float32
        "int8+rerank": vector_count * dim
        + stores["int8+rerank"].rerank_factor * k * dim * 4,
    }

    def run(store) -> float:
        start = time.perf_counter()
        for query in queries:
            store.search_arrays(query, k=k)
        return (time.perf_counter() - start) / query_count

    scoring_rows: "list[dict[str, object]]" = []
    baseline_ms = None
    for tier, store in stores.items():
        seconds = min(run(store) for _ in range(repeats))
        per_round_ms = seconds * 1000.0
        if baseline_ms is None:
            baseline_ms = per_round_ms
        scoring_rows.append(
            {
                "tier": tier,
                "vectors": vector_count,
                "per_round_ms": per_round_ms,
                "speedup_vs_f64": baseline_ms / max(per_round_ms, 1e-12),
                "stream_mb": stream_bytes[tier] / 1e6,
            }
        )
    # The quantized tier's contract rides along: recall@k = 1.0 against the
    # exact scan *in the same compute dtype* (the contract the property
    # suite states; comparing id sets, not ordering, keeps the gate immune
    # to last-bit kernel-rounding flips at the k-th boundary).
    for query in queries:
        exact_ids, _ = stores["float32"].search_arrays(query, k=k)
        quant_ids, _ = stores["int8+rerank"].search_arrays(query, k=k)
        assert set(quant_ids.tolist()) == set(exact_ids.tolist()), (
            "quantized tier lost recall on the benchmark corpus"
        )

    index = bundle.multiscale_index
    load_rows: "list[dict[str, object]]" = []
    with tempfile.TemporaryDirectory(dir=cache_dir) as scratch:
        from pathlib import Path

        compressed_ms = None
        for layout, arrays_format, mmap in (
            ("npz-compressed", "npz", False),
            ("npy-mmap", "npy", True),
        ):
            entry = Path(scratch) / layout
            save_index(index, entry, arrays_format=arrays_format)

            def run_load(entry=entry, mmap=mmap) -> float:
                start = time.perf_counter()
                load_index(entry, bundle.dataset, bundle.embedding, mmap=mmap)
                return time.perf_counter() - start

            cold_ms = min(run_load() for _ in range(load_repeats)) * 1000.0
            if compressed_ms is None:
                compressed_ms = cold_ms
            load_rows.append(
                {
                    "layout": layout,
                    "vectors": index.vector_count,
                    "cold_load_ms": cold_ms,
                    "speedup": compressed_ms / max(cold_ms, 1e-12),
                }
            )
    return DtypeThroughputResult(scoring_rows=scoring_rows, load_rows=load_rows)


@dataclass
class AnnRecallLatencyResult:
    """Recall-vs-latency curve of the graph-ANN tier against the exact oracle."""

    rows: "list[dict[str, object]]"
    exact_ms: float
    vector_count: int
    k: int
    build_seconds: float

    def format_text(self) -> str:
        columns = [
            "ef",
            "recall_at_k",
            "per_round_ms",
            "speedup_vs_exact",
            "hops",
            "visited",
        ]
        body = [[row[column] for column in columns] for row in self.rows]
        body.append(["exact", 1.0, self.exact_ms, 1.0, "-", self.vector_count])
        return format_table(
            columns,
            body,
            title=(
                f"Table 6 (graph ANN): recall@{self.k} vs per-round latency, "
                f"greedy graph descent over {self.vector_count} vectors "
                f"(graph build {self.build_seconds:.1f}s; exact scan "
                f"{self.exact_ms:.3f}ms is the oracle and the latency bar)"
            ),
            float_format="{:.3f}",
        )

    def by_ef(self) -> "dict[int, dict[str, object]]":
        """``ef -> row`` (gate helper)."""
        return {int(row["ef"]): row for row in self.rows}

    def passing(self, min_recall: float = 0.95) -> "list[dict[str, object]]":
        """Rows meeting the tier's contract: recall and a latency win."""
        return [
            row
            for row in self.rows
            if float(row["recall_at_k"]) >= min_recall
            and float(row["per_round_ms"]) < self.exact_ms
        ]


def table6_ann_recall_latency(
    vector_count: int = 16384,
    dim: int = 128,
    cluster_count: int = 96,
    cluster_noise: float = 0.15,
    k: int = 10,
    query_count: int = 16,
    ef_values: "Sequence[int]" = (8, 16, 32, 64, 128),
    graph_degree: int = 16,
    repeats: int = 5,
    min_recall: float = 0.95,
    seed: int = 6,
) -> AnnRecallLatencyResult:
    """Sweep the graph-ANN tier's ``ef`` beam against the exact oracle.

    The corpus is a seeded mixture of Gaussians on the unit sphere —
    clustered the way real image embeddings are (CLIP-style encoders map a
    dataset's categories to tight directional clusters), which is the regime
    the navigable-graph tier is built for; queries are perturbed cluster
    centers, the benchmark's stand-in for text/seen-image query vectors.

    One :class:`~repro.vectorstore.graph.GraphANNVectorStore` is built at
    ``graph_degree`` (NN-descent at this corpus size) and swept through
    ``ef_values`` via the search-time override — ``ef`` is a runtime knob,
    so one build serves the whole curve, exactly as one cached index serves
    any configured ``ann_ef``.  Latency is min-of-``repeats`` per-round
    ``search_arrays`` time; recall@k counts id overlap with the exact
    store's top-k (the oracle).  The in-experiment assertion is the tier's
    contract: some swept ``ef`` must reach ``min_recall`` while beating the
    exact scan's per-round latency — otherwise the tier has no operating
    point and the experiment (and the CI gate on it) fails.
    """
    import time

    from repro.data.geometry import BoundingBox
    from repro.vectorstore.base import VectorRecord
    from repro.vectorstore.exact import ExactVectorStore
    from repro.vectorstore.graph import GraphANNVectorStore

    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((cluster_count, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    assignment = rng.integers(0, cluster_count, vector_count)
    matrix = centers[assignment] + cluster_noise * rng.standard_normal(
        (vector_count, dim)
    )
    matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
    records = [
        VectorRecord(vector_id=i, image_id=i, box=BoundingBox(0.0, 0.0, 32.0, 32.0))
        for i in range(vector_count)
    ]
    queries = centers[
        rng.integers(0, cluster_count, query_count)
    ] + 0.8 * cluster_noise * rng.standard_normal((query_count, dim))
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)

    build_start = time.perf_counter()
    graph = GraphANNVectorStore(
        matrix,
        records,
        graph_degree=graph_degree,
        ef=max(ef_values),
        seed=seed,
        compute_dtype="float32",
    )
    build_seconds = time.perf_counter() - build_start
    exact = ExactVectorStore(matrix, records, compute_dtype="float32")

    def run(search) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for query in queries:
                search(query)
            best = min(best, (time.perf_counter() - start) / query_count)
        return best * 1000.0

    exact_ms = run(lambda query: exact.search_arrays(query, k=k))
    oracle = [set(exact.search_arrays(query, k=k)[0].tolist()) for query in queries]

    rows: "list[dict[str, object]]" = []
    for ef in ef_values:
        per_round_ms = run(lambda query: graph.search_arrays(query, k=k, ef=ef))
        recalls = []
        hops = visited = 0
        for query, truth in zip(queries, oracle):
            ids, _ = graph.search_arrays(query, k=k, ef=ef)
            recalls.append(len(truth & set(ids.tolist())) / len(truth))
            stats = graph.last_search_stats
            hops += stats["hops"]
            visited += stats["visited"]
        rows.append(
            {
                "ef": int(ef),
                "recall_at_k": float(np.mean(recalls)),
                "per_round_ms": per_round_ms,
                "speedup_vs_exact": exact_ms / max(per_round_ms, 1e-12),
                "hops": hops // query_count,
                "visited": visited // query_count,
            }
        )

    result = AnnRecallLatencyResult(
        rows=rows,
        exact_ms=exact_ms,
        vector_count=vector_count,
        k=k,
        build_seconds=build_seconds,
    )
    assert result.passing(min_recall), (
        f"graph-ANN tier has no operating point: no swept ef reached "
        f"recall@{k} >= {min_recall} under the exact scan's {exact_ms:.3f}ms"
    )
    return result


# ---------------------------------------------------------------------------
# Table 7 — hyperparameter sensitivity
# ---------------------------------------------------------------------------
# The paper sweeps lambda_c in {3, 10, 30}, lambda_D in {300, 1000, 3000} and
# lambda in {30, 100, 300} around its defaults (10, 1000, 100).  This grid is
# the same sweep — one order of magnitude in every direction, same ratios —
# around this reproduction's rescaled defaults (1, 30, 1); see LossWeights.
DEFAULT_HYPERPARAMETER_GRID = (
    (0.3, 10.0, 1.0),
    (0.3, 30.0, 1.0),
    (0.3, 100.0, 1.0),
    (1.0, 10.0, 1.0),
    (1.0, 30.0, 0.3),
    (1.0, 30.0, 1.0),
    (1.0, 30.0, 3.0),
    (1.0, 100.0, 1.0),
    (3.0, 10.0, 1.0),
    (3.0, 30.0, 1.0),
    (3.0, 100.0, 1.0),
)


@dataclass
class Table7Result:
    """SeeSaw mAP per (lambda_c, lambda_D, lambda) setting and dataset."""

    grid: "list[tuple[float, float, float]]"
    results: "dict[tuple[float, float, float], dict[str, float]]"
    datasets: "tuple[str, ...]"

    def format_text(self) -> str:
        rows = []
        for setting in self.grid:
            per_dataset = self.results[setting]
            values = [per_dataset.get(name, float("nan")) for name in self.datasets]
            finite = [v for v in values if not np.isnan(v)]
            avg = float(np.mean(finite)) if finite else float("nan")
            rows.append(list(setting) + values + [avg])
        return format_table(
            ["lambda_c", "lambda_D", "lambda"] + list(self.datasets) + ["avg."],
            rows,
            title="Table 7: SeeSaw mAP under different hyperparameter settings",
        )


def table7_hyperparameters(
    bundles: Mapping[str, DatasetBundle],
    scale: ExperimentScale,
    grid: Sequence[tuple[float, float, float]] = DEFAULT_HYPERPARAMETER_GRID,
    settings: "BenchmarkSettings | None" = None,
) -> Table7Result:
    """Sweep (lambda_c, lambda_D, lambda) and record SeeSaw's mAP (Table 7)."""
    settings = settings or BenchmarkSettings()
    results: dict[tuple[float, float, float], dict[str, float]] = {}
    for setting in grid:
        lambda_clip, lambda_db, lambda_norm = setting
        per_dataset: dict[str, float] = {}
        for name, bundle in bundles.items():
            config = bundle.config.with_overrides(
                loss=LossWeights(
                    lambda_norm=lambda_norm,
                    lambda_clip=lambda_clip,
                    lambda_db=lambda_db,
                )
            )
            outcomes = run_query_set(
                bundle.multiscale_index,
                lambda: SeeSawSearchMethod(config),
                bundle.queries(scale),
                settings,
            )
            per_dataset[name] = _mean_over(_ap_map(outcomes))
        results[tuple(setting)] = per_dataset
    return Table7Result(
        grid=[tuple(s) for s in grid], results=results, datasets=tuple(bundles)
    )
