"""Run one search method through one benchmark task and score it."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.bench.simulate import OracleUser
from repro.bench.tasks import BenchmarkQuery
from repro.config import BenchmarkTaskConfig
from repro.core.indexing import SeeSawIndex
from repro.core.interfaces import SearchMethod
from repro.core.session import SearchSession
from repro.exceptions import BenchmarkError
from repro.metrics.average_precision import average_precision_at_cutoff

MethodFactory = Callable[[], SearchMethod]


@dataclass(frozen=True)
class BenchmarkSettings:
    """How benchmark sessions are run (cutoffs and batch size, §5.1)."""

    task: BenchmarkTaskConfig = field(default_factory=BenchmarkTaskConfig)

    @property
    def target_results(self) -> int:
        """Relevant results to find before stopping (10 in the paper)."""
        return self.task.target_results

    @property
    def max_images(self) -> int:
        """Maximum images to inspect before giving up (60 in the paper)."""
        return self.task.max_images

    @property
    def batch_size(self) -> int:
        """Images shown per feedback round."""
        return self.task.batch_size


@dataclass
class SessionOutcome:
    """The scored result of one (method, query) benchmark session."""

    query: BenchmarkQuery
    method_name: str
    average_precision: float
    found: int
    shown: int
    seconds_per_round: float
    lookup_seconds: float
    update_seconds: float
    relevance: tuple[bool, ...]

    @property
    def completed(self) -> bool:
        """Whether the task target was reached within the budget."""
        return self.found >= min(self.query.positives, 10)


def run_search_task(
    index: SeeSawIndex,
    method: SearchMethod,
    query: BenchmarkQuery,
    settings: "BenchmarkSettings | None" = None,
) -> SessionOutcome:
    """Drive ``method`` through the benchmark task for ``query``.

    The oracle (dataset ground truth) supplies relevance judgements and box
    feedback after every shown image; the session stops once the target
    number of results has been found or the image budget is exhausted.
    """
    settings = settings or BenchmarkSettings()
    if index.dataset.name != query.dataset:
        raise BenchmarkError(
            f"Query is for dataset '{query.dataset}' but the index holds '{index.dataset.name}'"
        )
    oracle = OracleUser(index.dataset, query.category)
    session = SearchSession(
        index=index,
        method=method,
        text_query=query.prompt,
        batch_size=settings.batch_size,
    )
    found = 0
    while len(session.history) < settings.max_images and found < settings.target_results:
        remaining = settings.max_images - len(session.history)
        batch = session.next_batch(min(settings.batch_size, remaining))
        if not batch:
            break
        for result in batch:
            judgement = oracle.judge(result.image_id)
            session.give_feedback(
                result.image_id, judgement.relevant, judgement.boxes
            )
            if judgement.relevant:
                found += 1
    relevance = session.relevance_sequence()
    ap = average_precision_at_cutoff(
        relevance,
        total_relevant=oracle.total_relevant,
        target_results=settings.target_results,
        max_images=settings.max_images,
    )
    return SessionOutcome(
        query=query,
        method_name=method.name,
        average_precision=ap,
        found=found,
        shown=len(relevance),
        seconds_per_round=session.stats.seconds_per_round,
        lookup_seconds=session.stats.lookup_seconds,
        update_seconds=session.stats.update_seconds,
        relevance=tuple(relevance),
    )


def run_query_set(
    index: SeeSawIndex,
    method_factory: MethodFactory,
    queries: Iterable[BenchmarkQuery],
    settings: "BenchmarkSettings | None" = None,
) -> "dict[str, SessionOutcome]":
    """Run a fresh method instance over every query; keyed by query key."""
    outcomes: dict[str, SessionOutcome] = {}
    for query in queries:
        outcomes[query.key] = run_search_task(index, method_factory(), query, settings)
    return outcomes
