"""Configuration dataclasses for the SeeSaw reproduction.

The defaults follow the hyperparameters reported in the paper (§5.2) —
``k=10`` neighbours for the kNN graph, the benchmark task cutoffs of 10
relevant results within 60 inspected images (§5.1) — with two documented
adaptations for the synthetic embedding substrate: the loss weights are
rescaled (see :class:`LossWeights`) and the kernel bandwidth has an adaptive
floor (see :class:`KnnGraphConfig`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Mapping

from repro.exceptions import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class LossWeights:
    """Weights of the four terms of the SeeSaw loss (Equation 5 / Table 1).

    The paper reports ``lambda = 100``, ``lambda_c = 10``, ``lambda_D = 1000``
    for CLIP's 512-dimensional embedding and its feedback-set sizes.  The
    loss's data term is a *sum* over feedback examples while the two
    alignment terms are scale-free, so the useful absolute values depend on
    the embedding geometry and on how many patch labels a round produces.
    The defaults here are the same three weights rescaled for the synthetic
    embedding shipped with this reproduction (each divided by roughly two
    orders of magnitude, preserving their ratios); Table 7's sweep covers an
    order of magnitude around them, as the paper's does around its values.
    """

    lambda_norm: float = 1.0
    lambda_clip: float = 1.0
    lambda_db: float = 30.0

    def __post_init__(self) -> None:
        check_positive("lambda_norm", self.lambda_norm, allow_zero=True)
        check_positive("lambda_clip", self.lambda_clip, allow_zero=True)
        check_positive("lambda_db", self.lambda_db, allow_zero=True)


@dataclass(frozen=True)
class KnnGraphConfig:
    """kNN-graph construction parameters used for DB alignment and ENS."""

    k: int = 10
    sigma: float = 0.05
    adaptive_sigma: bool = True
    """When true, the kernel bandwidth is max(sigma, median neighbour
    distance).  The paper's sigma=.05 is tuned to CLIP's embedding geometry;
    the adaptive floor keeps the Gaussian kernel informative for embeddings
    with different typical neighbour distances (such as the synthetic one)."""
    use_nn_descent: bool = False
    nn_descent_iterations: int = 8
    nn_descent_sample_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        check_positive("sigma", self.sigma)
        if self.nn_descent_iterations < 1:
            raise ConfigurationError(
                f"nn_descent_iterations must be >= 1, got {self.nn_descent_iterations}"
            )
        check_probability("nn_descent_sample_rate", self.nn_descent_sample_rate)


@dataclass(frozen=True)
class MultiscaleConfig:
    """Multiscale patch-tiling configuration (§4.3).

    The paper uses the coarse full-image patch plus a tiling of patches half
    the image size, strided by half a patch, as long as patches stay at least
    ``min_patch_pixels`` on a side (224 px for CLIP).
    """

    enabled: bool = True
    min_patch_pixels: int = 224
    patch_fraction: float = 0.5
    stride_fraction: float = 0.5

    def __post_init__(self) -> None:
        check_positive("min_patch_pixels", self.min_patch_pixels)
        check_probability("patch_fraction", self.patch_fraction)
        check_probability("stride_fraction", self.stride_fraction)
        if self.patch_fraction == 0 or self.stride_fraction == 0:
            raise ConfigurationError("patch_fraction and stride_fraction must be > 0")


@dataclass(frozen=True)
class OptimizerConfig:
    """L-BFGS settings used when minimising the SeeSaw loss (§4.4)."""

    max_iterations: int = 50
    history_size: int = 10
    gradient_tolerance: float = 1e-6
    initial_step: float = 1.0
    wolfe_c1: float = 1e-4
    wolfe_c2: float = 0.9
    max_line_search_steps: int = 25

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        if self.history_size < 1:
            raise ConfigurationError("history_size must be >= 1")
        check_positive("gradient_tolerance", self.gradient_tolerance)
        check_positive("initial_step", self.initial_step)
        if not 0 < self.wolfe_c1 < self.wolfe_c2 < 1:
            raise ConfigurationError("require 0 < wolfe_c1 < wolfe_c2 < 1")


@dataclass(frozen=True)
class BenchmarkTaskConfig:
    """The benchmark task of §5.1: find ``target_results`` within ``max_images``."""

    target_results: int = 10
    max_images: int = 60
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.target_results < 1:
            raise ConfigurationError("target_results must be >= 1")
        if self.max_images < self.target_results:
            raise ConfigurationError("max_images must be >= target_results")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability knobs: tracing spans, slow-request log, series bounds.

    Governs the :mod:`repro.obs` layer.  Runtime-only by construction —
    none of these fields change what gets built, so (like ``n_shards``)
    the section is excluded from the index-cache key.
    """

    enabled: bool = True
    """Master switch for hot-path tracing spans.  ``False`` drops
    ``trace_span`` to a shared no-op singleton (no span allocation, no
    clock reads); request counters and access logs stay on — only the
    per-stage instrumentation is elided."""
    slow_request_ms: float = 0.0
    """Requests slower than this threshold (milliseconds) emit a structured
    warning on the ``repro.server.slow`` logger with the per-stage span
    breakdown attached.  ``0`` disables the slow-request log."""
    max_series_per_metric: int = 64
    """Label-cardinality bound per metric family: past this many distinct
    label sets, new label values collapse into one ``_overflow`` series so
    a mislabelled caller cannot grow the registry without bound."""

    def __post_init__(self) -> None:
        if self.slow_request_ms < 0:
            raise ConfigurationError(
                f"slow_request_ms must be >= 0, got {self.slow_request_ms}"
            )
        if self.max_series_per_metric < 1:
            raise ConfigurationError(
                f"max_series_per_metric must be >= 1, got "
                f"{self.max_series_per_metric}"
            )


@dataclass(frozen=True)
class SeeSawConfig:
    """Top-level configuration combining every tunable piece of SeeSaw."""

    embedding_dim: int = 128
    loss: LossWeights = field(default_factory=LossWeights)
    knn: KnnGraphConfig = field(default_factory=KnnGraphConfig)
    multiscale: MultiscaleConfig = field(default_factory=MultiscaleConfig)
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    task: BenchmarkTaskConfig = field(default_factory=BenchmarkTaskConfig)
    use_clip_alignment: bool = True
    use_db_alignment: bool = True
    fit_bias: bool = False
    seed: int = 0
    index_cache_dir: "str | None" = None
    """When set, built indexes are persisted under this directory (keyed by a
    content hash of dataset + embedding + config) and loaded back on the next
    start instead of being re-embedded.  See :mod:`repro.store`."""
    n_shards: int = 1
    """Number of image-aligned shards the service partitions each index's
    vector store into (``repro.vectorstore.sharded``).  Shards score on a
    thread pool (NumPy kernels release the GIL) and merge into an exact,
    bit-identical global top-k; ``1`` keeps the flat store.  A runtime
    topology knob: it does not change what gets built, so it is excluded
    from the index-cache key and can vary per deployment."""
    batch_window_ms: float = 0.0
    """Width (milliseconds) of the request-coalescing window for ``/next``.
    When positive, the :class:`~repro.server.manager.SessionManager` gathers
    concurrent next-batch requests arriving within the window and dispatches
    them through the fused :class:`~repro.engine.batch.BatchQueryEngine` —
    one GEMM for the whole cohort instead of one matvec per session.  ``0``
    disables coalescing (every request dispatches immediately)."""
    compute_dtype: str = "float64"
    """Floating dtype of the scoring hot path (store matrix, engine scores).
    ``"float64"`` is the bit-parity default every equivalence property in the
    test suite is stated against; ``"float32"`` halves the bytes per score —
    memory footprint and GEMM bandwidth both — at ~1e-7 relative rounding.
    The stored vectors are written to disk in this dtype, so it is part of
    the index-cache key (a float32 index is a different on-disk artifact)."""
    quantized_store: bool = False
    """When true, exhaustive stores are wrapped in an int8
    :class:`~repro.vectorstore.quantized.QuantizedVectorStore` tier after
    load/build: candidates are scored through a symmetric per-row int8
    matrix with int32 accumulation (an 8x bandwidth reduction over float64),
    then the top ``quantized_rerank_factor * k`` are re-ranked exactly in the
    compute dtype.  A runtime tier like ``n_shards`` — derived from the flat
    vectors at load time, so it is excluded from the index-cache key.
    Trade-off: the quantized tier is not exhaustive, so cohorts on a
    quantized index fall back from fused multi-session batching
    (``batch_window_ms``) to sequential per-session rounds — pick it for
    memory-bound workloads, not for high-concurrency fused serving."""
    quantized_rerank_factor: int = 4
    """Candidate over-fetch multiplier of the quantized tier: the int8 pass
    keeps ``rerank_factor * k`` candidates for the exact re-rank.  At the
    default the re-ranked top-k is empirically identical to the exact
    store's top-k (recall@k = 1.0 on the contract-suite indexes)."""
    ann_search: bool = False
    """When true, exhaustive stores are replaced after load/build by a
    :class:`~repro.vectorstore.graph.GraphANNVectorStore`: a navigable
    proximity graph (the NN-descent kNN graph, symmetrised, with long-range
    entry links) searched by greedy best-first descent with an ``ann_ef``
    candidate beam, then exact compute-dtype re-ranking of the beam — per-
    query cost scales with the beam and hop count, not with the corpus.
    Like ``quantized_store`` this is a runtime tier derived from the flat
    vectors at load time, so it is excluded from the index-cache key; when
    both are requested the graph tier wins (it consumes the exhaustive
    store first).  Trade-offs: results are approximate (recall@k >= 0.95
    gated by the ``table6_ann_recall_latency`` benchmark at the default
    knobs), and like the quantized tier a graph index opts out of fused
    multi-session batching."""
    ann_ef: int = 64
    """Beam width of the graph-ANN descent: the candidate heap keeps the
    best ``max(ann_ef, k)`` nodes and the walk stops when no frontier node
    can improve them; the beam is then re-ranked exactly.  Larger values
    trade latency for recall.  A runtime search knob — it changes no built
    artifact, so it is excluded from the index-cache key."""
    ann_graph_degree: int = 16
    """Neighbours per node in the kNN graph the ANN tier symmetrises into
    its adjacency.  Higher degrees make descent more robust (better recall
    at a given ``ann_ef``) at more memory and build time.  Part of the
    cache key only for indexes *built* as ``store_kind="graph"`` (the
    adjacency is serialized); as a runtime tier it stays excluded."""
    rate_limit_rps: float = 0.0
    """Sustained per-client request budget (requests/second) enforced by the
    app layer's token-bucket middleware.  Clients are keyed by the
    ``X-Client-Id`` header when present, else by remote address; a drained
    bucket returns the structured 429 envelope (``code="rate_limited"``,
    ``retryable=true``).  ``0`` disables rate limiting (the default — the
    contract and load suites drive the service far faster than any sane
    production budget)."""
    rate_limit_burst: int = 20
    """Bucket capacity of the rate limiter: how many requests a client may
    issue back-to-back before the sustained ``rate_limit_rps`` applies.
    Ignored when rate limiting is disabled."""
    mmap_index: bool = True
    """Load index-cache arrays with ``mmap_mode="r"`` (zero-copy, page-cache
    backed) when the on-disk entry uses the raw ``.npy`` layout.  Cold
    starts then map the artifacts instead of decompressing them into a
    private copy: one sequential validation pass reads the pages (free when
    the OS page cache is warm, e.g. on a service restart), and the mapped
    memory stays evictable and shared across processes.  Legacy compressed
    entries still load through the ``.npz`` path.  Runtime knob, excluded
    from the cache key."""
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    """Observability section (:mod:`repro.obs`): span tracing switch,
    slow-request log threshold, metric-series cardinality bound.  Runtime
    knobs only — excluded from the index-cache key."""
    request_deadline_ms: float = 0.0
    """Default per-request budget (milliseconds) the server applies when a
    request carries no ``X-Deadline-Ms`` header.  Once the budget runs out
    the request fails with the typed 504 (``code="deadline_exceeded"``)
    instead of burning coalescer slots and engine dispatch on an answer
    nobody is waiting for.  ``0`` applies no default — only client-sent
    deadlines are enforced.  Runtime knob, excluded from the cache key."""
    max_in_flight: int = 0
    """Admission-control bound: the maximum number of requests the service
    processes concurrently before the app sheds new arrivals with a 503 and
    a ``Retry-After`` hint — a cheap rejection *before* queueing collapse
    rather than an expensive timeout after it.  ``0`` disables shedding.
    Runtime knob, excluded from the cache key."""
    overload_ef_floor: int = 8
    """Graceful-degradation floor for the graph-ANN beam: while the service
    is overloaded (in-flight at or beyond ``max_in_flight``), admitted
    queries run with a reduced ``ef`` no lower than this floor, trading
    recall for latency until load drains.  Runtime knob, excluded from the
    cache key."""
    retry_max_attempts: int = 3
    """Client-side retry budget: total attempts per logical call (first try
    included) for retryable failures (429/503/transient 500s, connection
    failures on idempotent calls).  ``1`` disables retries."""
    retry_base_ms: float = 50.0
    """Base of the client's exponential backoff: attempt ``n`` sleeps a
    uniform random draw from ``[0, min(retry_max_ms, retry_base_ms * 2**n))``
    (full jitter), unless the server's ``Retry-After`` hint says longer."""
    retry_max_ms: float = 2000.0
    """Cap (milliseconds) on a single client backoff sleep."""
    breaker_failure_threshold: int = 5
    """Consecutive transport-level failures per host before the client's
    circuit breaker opens and calls fail fast with ``CircuitOpenError``
    instead of hammering a dead host.  ``0`` disables the breaker."""
    breaker_reset_s: float = 5.0
    """Cooldown (seconds) an open breaker waits before letting one probe
    call through (half-open); a successful probe closes it."""
    drain_timeout_s: float = 10.0
    """Graceful-drain budget: on SIGTERM/``shutdown()`` the server flips
    ``/healthz`` to ``draining``, rejects new sessions with a typed 503,
    and gives in-flight work this long to finish before closing."""
    faults: "FaultPlan | None" = None
    """Fault-injection plan (:mod:`repro.faults`).  When set, the server
    mounts :class:`~repro.faults.middleware.ChaosMiddleware` in the `/v1`
    pipeline and injects the planned latency/error faults deterministically
    from the plan's seed.  ``None`` (the default) injects nothing — the
    knob exists for chaos testing, never for production serving.  Runtime
    knob, excluded from the cache key."""
    live_datasets: bool = False
    """Enable the mutable dataset tier (:mod:`repro.live`): the
    ``/v1/datasets`` upsert/delete/merge routes, the writable delta segment
    over each sealed base index, and background compaction.  Off (the
    default) every registered dataset stays the immutable build-once
    artifact and mutation requests fail with a typed 400.  Runtime knob,
    excluded from the cache key (delta state is never part of a sealed
    artifact)."""
    delta_max_rows: int = 4096
    """Hard ceiling on the writable delta segment's row count.  A mutation
    that would push the live view past this many unsealed vectors triggers
    a background merge; mutations arriving while the delta is full and a
    merge is still running are rejected with a retryable 503 — bounded
    memory beats unbounded ingest.  Runtime knob, excluded from the cache
    key."""
    merge_trigger_ratio: float = 0.25
    """Background-merge trigger as a fraction of the sealed base segment:
    once ``delta rows >= merge_trigger_ratio * base rows`` the
    :class:`~repro.live.merger.SegmentMerger` schedules a compaction off
    the request path.  ``delta_max_rows`` still applies as the absolute
    bound for small bases.  Runtime knob, excluded from the cache key."""

    def __post_init__(self) -> None:
        if self.embedding_dim < 2:
            raise ConfigurationError("embedding_dim must be >= 2")
        if self.n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.batch_window_ms < 0:
            raise ConfigurationError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.compute_dtype not in ("float64", "float32"):
            raise ConfigurationError(
                f"compute_dtype must be 'float64' or 'float32', got "
                f"'{self.compute_dtype}'"
            )
        if self.quantized_rerank_factor < 1:
            raise ConfigurationError(
                f"quantized_rerank_factor must be >= 1, got "
                f"{self.quantized_rerank_factor}"
            )
        if self.ann_ef < 1:
            raise ConfigurationError(f"ann_ef must be >= 1, got {self.ann_ef}")
        if self.ann_graph_degree < 2:
            raise ConfigurationError(
                f"ann_graph_degree must be >= 2, got {self.ann_graph_degree}"
            )
        if self.rate_limit_rps < 0:
            raise ConfigurationError(
                f"rate_limit_rps must be >= 0, got {self.rate_limit_rps}"
            )
        if self.rate_limit_burst < 1:
            raise ConfigurationError(
                f"rate_limit_burst must be >= 1, got {self.rate_limit_burst}"
            )
        if self.request_deadline_ms < 0:
            raise ConfigurationError(
                f"request_deadline_ms must be >= 0, got {self.request_deadline_ms}"
            )
        if self.max_in_flight < 0:
            raise ConfigurationError(
                f"max_in_flight must be >= 0, got {self.max_in_flight}"
            )
        if self.overload_ef_floor < 1:
            raise ConfigurationError(
                f"overload_ef_floor must be >= 1, got {self.overload_ef_floor}"
            )
        if self.retry_max_attempts < 1:
            raise ConfigurationError(
                f"retry_max_attempts must be >= 1, got {self.retry_max_attempts}"
            )
        if self.retry_base_ms <= 0:
            raise ConfigurationError(
                f"retry_base_ms must be > 0, got {self.retry_base_ms}"
            )
        if self.retry_max_ms < self.retry_base_ms:
            raise ConfigurationError(
                f"retry_max_ms ({self.retry_max_ms}) must be >= retry_base_ms "
                f"({self.retry_base_ms})"
            )
        if self.breaker_failure_threshold < 0:
            raise ConfigurationError(
                f"breaker_failure_threshold must be >= 0, got "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_reset_s <= 0:
            raise ConfigurationError(
                f"breaker_reset_s must be > 0, got {self.breaker_reset_s}"
            )
        if self.drain_timeout_s < 0:
            raise ConfigurationError(
                f"drain_timeout_s must be >= 0, got {self.drain_timeout_s}"
            )
        if self.delta_max_rows < 1:
            raise ConfigurationError(
                f"delta_max_rows must be >= 1, got {self.delta_max_rows}"
            )
        if self.merge_trigger_ratio <= 0:
            raise ConfigurationError(
                f"merge_trigger_ratio must be > 0, got {self.merge_trigger_ratio}"
            )

    def with_overrides(self, **overrides: Any) -> "SeeSawConfig":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **overrides)

    def to_dict(self) -> "dict[str, Any]":
        """Full JSON-serializable representation (nested sections included)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SeeSawConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        sections: dict[str, type] = {
            "loss": LossWeights,
            "knn": KnnGraphConfig,
            "multiscale": MultiscaleConfig,
            "optimizer": OptimizerConfig,
            "task": BenchmarkTaskConfig,
            "telemetry": TelemetryConfig,
        }
        kwargs: dict[str, Any] = {}
        for key, value in data.items():
            if key == "faults":
                kwargs[key] = (
                    FaultPlan.from_json(value) if isinstance(value, Mapping) else value
                )
                continue
            section = sections.get(key)
            if section is not None and isinstance(value, Mapping):
                kwargs[key] = section(**value)
            else:
                kwargs[key] = value
        return cls(**kwargs)

    def describe(self) -> Mapping[str, Any]:
        """A flat mapping of the most important knobs, handy for reports."""
        return {
            "embedding_dim": self.embedding_dim,
            "lambda_norm": self.loss.lambda_norm,
            "lambda_clip": self.loss.lambda_clip,
            "lambda_db": self.loss.lambda_db,
            "knn_k": self.knn.k,
            "knn_sigma": self.knn.sigma,
            "multiscale": self.multiscale.enabled,
            "use_clip_alignment": self.use_clip_alignment,
            "use_db_alignment": self.use_db_alignment,
            "fit_bias": self.fit_bias,
            "target_results": self.task.target_results,
            "max_images": self.task.max_images,
            "seed": self.seed,
            "n_shards": self.n_shards,
            "batch_window_ms": self.batch_window_ms,
            "compute_dtype": self.compute_dtype,
            "quantized_store": self.quantized_store,
            "quantized_rerank_factor": self.quantized_rerank_factor,
            "ann_search": self.ann_search,
            "ann_ef": self.ann_ef,
            "ann_graph_degree": self.ann_graph_degree,
            "rate_limit_rps": self.rate_limit_rps,
            "rate_limit_burst": self.rate_limit_burst,
            "mmap_index": self.mmap_index,
            "telemetry_enabled": self.telemetry.enabled,
            "slow_request_ms": self.telemetry.slow_request_ms,
            "request_deadline_ms": self.request_deadline_ms,
            "max_in_flight": self.max_in_flight,
            "retry_max_attempts": self.retry_max_attempts,
            "drain_timeout_s": self.drain_timeout_s,
            "faults": self.faults is not None and self.faults.any_faults,
            "live_datasets": self.live_datasets,
            "delta_max_rows": self.delta_max_rows,
            "merge_trigger_ratio": self.merge_trigger_ratio,
        }


PAPER_DEFAULT_CONFIG = SeeSawConfig()
"""The configuration matching the paper's reported hyperparameters (§5.2)."""
