"""Small shared utilities: random-number handling and vector math helpers."""

from repro.utils.linalg import (
    cosine_similarity,
    normalize_rows,
    normalize_vector,
    pairwise_inner,
    random_unit_vectors,
)
from repro.utils.rng import derive_rng, ensure_rng, spawn_seeds
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_probability,
    check_shape,
    check_unit_norm,
)

__all__ = [
    "cosine_similarity",
    "normalize_rows",
    "normalize_vector",
    "pairwise_inner",
    "random_unit_vectors",
    "derive_rng",
    "ensure_rng",
    "spawn_seeds",
    "check_finite",
    "check_positive",
    "check_probability",
    "check_shape",
    "check_unit_norm",
]
