"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  These helpers make that convention uniform
and make it easy to derive independent child generators for sub-components so
that the same top-level seed always produces the same datasets, embeddings,
and benchmark results.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a non-deterministic generator, an ``int`` produces a
    deterministic one, and an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(seed: "int | np.random.Generator | None", *labels: str) -> np.random.Generator:
    """Derive a child generator that is stable for a given (seed, labels) pair.

    Deriving by label (rather than by call order) means adding a new stochastic
    component to the library does not perturb the randomness consumed by
    existing components.
    """
    if isinstance(seed, np.random.Generator):
        # Child streams from a live generator are only reproducible relative to
        # the generator's current state; integer seeds are preferred in tests.
        return np.random.default_rng(seed.integers(0, 2**63 - 1))
    base = 0 if seed is None else int(seed)
    digest = hashlib.sha256(("|".join(labels) + f"#{base}").encode("utf-8")).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)


def spawn_seeds(seed: "int | np.random.Generator | None", count: int) -> list[int]:
    """Produce ``count`` independent integer seeds derived from ``seed``."""
    rng = ensure_rng(seed)
    return [int(value) for value in rng.integers(0, 2**31 - 1, size=count)]


def shuffled(items: Sequence, seed: "int | np.random.Generator | None" = None) -> list:
    """Return a shuffled copy of ``items`` without mutating the input."""
    rng = ensure_rng(seed)
    out = list(items)
    rng.shuffle(out)
    return out


def sample_without_replacement(
    items: Iterable,
    count: int,
    seed: "int | np.random.Generator | None" = None,
) -> list:
    """Sample ``count`` distinct items; returns all items if fewer exist."""
    pool = list(items)
    if count >= len(pool):
        return pool
    rng = ensure_rng(seed)
    chosen = rng.choice(len(pool), size=count, replace=False)
    return [pool[i] for i in chosen]
