"""Argument-validation helpers that raise library exceptions with clear text."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError


def check_positive(name: str, value: float, allow_zero: bool = False) -> float:
    """Ensure a numeric parameter is positive (or non-negative)."""
    value = float(value)
    if allow_zero:
        if value < 0:
            raise ConfigurationError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Ensure a parameter lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_shape(name: str, array: np.ndarray, shape: Sequence["int | None"]) -> np.ndarray:
    """Ensure ``array`` matches ``shape`` where ``None`` entries are wildcards."""
    array = np.asarray(array)
    if array.ndim != len(shape):
        raise ConfigurationError(
            f"{name} must have {len(shape)} dimensions, got {array.ndim}"
        )
    for axis, expected in enumerate(shape):
        if expected is not None and array.shape[axis] != expected:
            raise ConfigurationError(
                f"{name} has shape {array.shape}, expected axis {axis} == {expected}"
            )
    return array


def check_finite(name: str, array: np.ndarray) -> np.ndarray:
    """Ensure every entry of ``array`` is finite."""
    array = np.asarray(array, dtype=np.float64)
    if not np.all(np.isfinite(array)):
        raise ConfigurationError(f"{name} contains NaN or infinite values")
    return array


def check_unit_norm(name: str, vector: np.ndarray, tolerance: float = 1e-6) -> np.ndarray:
    """Ensure ``vector`` has unit L2 norm within ``tolerance``."""
    vector = np.asarray(vector, dtype=np.float64)
    norm = float(np.linalg.norm(vector))
    if abs(norm - 1.0) > tolerance:
        raise ConfigurationError(f"{name} must be unit norm, got |v| = {norm:.6f}")
    return vector
