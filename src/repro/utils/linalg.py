"""Vector-math helpers shared across the embedding, store, and core modules.

The whole system operates on unit-norm vectors whose relevance is an inner
product (equivalently a cosine similarity), exactly as in the paper, so these
helpers centralise normalisation and similarity computations.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng

_EPSILON = 1e-12

ZERO_NORM_EPSILON = _EPSILON
"""Rows/vectors with an L2 norm below this are treated as zero: the
normalisation helpers preserve them verbatim instead of dividing, and the
canonical-form checks count them as already normalised."""

COMPUTE_DTYPES: "tuple[np.dtype, ...]" = (np.dtype(np.float64), np.dtype(np.float32))
"""The floating dtypes the scoring hot path may run in.

``float64`` is the bit-parity reference every equivalence guarantee in this
repo is stated against; ``float32`` halves the bytes every score streams
through memory and doubles effective GEMM throughput, at ~1e-7 relative
rounding.  Everything else (inputs arriving as python lists, integer arrays,
half precision) is promoted to ``float64`` at a store boundary.
"""


def resolve_compute_dtype(dtype: "np.dtype | str | type | None") -> np.dtype:
    """The validated compute dtype for ``dtype`` (``None`` means ``float64``)."""
    if dtype is None:
        return np.dtype(np.float64)
    resolved = np.dtype(dtype)
    if resolved not in COMPUTE_DTYPES:
        raise ValueError(
            f"compute dtype must be one of {[d.name for d in COMPUTE_DTYPES]}, "
            f"got '{resolved.name}'"
        )
    return resolved


def unit_norm_tolerance(dtype: "np.dtype | type") -> float:
    """How far from 1.0 a row norm may sit and still count as unit.

    Scaled to the dtype's precision: re-dividing a row whose norm is 1±ulp
    would change its bits, so the tolerance must be loose enough to recognise
    rows that were normalised in this dtype (or normalised in a wider dtype
    and cast down) and tight enough to catch genuinely unnormalised data.
    """
    return 1e-6 if np.dtype(dtype) == np.float32 else 1e-12


def ensure_dtype(array: np.ndarray, dtype: "np.dtype | type") -> np.ndarray:
    """Return ``array`` in ``dtype`` — the same object when already there.

    The hot-path alternative to ``np.asarray(array, dtype=...)`` sprinkled at
    every boundary: conversion happens at most once, and an array already in
    the compute dtype flows through zero-copy by identity, which
    :func:`assert_no_copy` can then verify.
    """
    array = np.asarray(array)
    if array.dtype == np.dtype(dtype):
        return array
    return array.astype(dtype)


def assert_no_copy(source: np.ndarray, result: np.ndarray) -> np.ndarray:
    """Guard that a dtype pass-through really was zero-copy.

    Used at call sites where the caller *knows* ``source`` is already in the
    target dtype (the store converted it once at its boundary) and a silent
    conversion copy would mean a hot-path regression.  Returns ``result`` so
    the guard composes inline.
    """
    if result is not source and not np.shares_memory(result, source):
        raise AssertionError(
            "expected a zero-copy dtype pass-through but the array was copied "
            f"(source dtype {source.dtype}, result dtype {result.dtype})"
        )
    return result


def normalize_vector(vector: np.ndarray) -> np.ndarray:
    """Return ``vector`` scaled to unit L2 norm (zero vectors stay zero)."""
    vector = np.asarray(vector, dtype=np.float64)
    norm = float(np.linalg.norm(vector))
    if norm < _EPSILON:
        return np.zeros_like(vector)
    return vector / norm


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix`` with each row scaled to unit L2 norm."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms = np.where(norms < _EPSILON, 1.0, norms)
    return matrix / norms


def unit_rows(matrix: np.ndarray) -> np.ndarray:
    """Rows at unit L2 norm, skipping the work (and the copy) when they already are.

    :func:`normalize_rows` always allocates and divides; callers on warm paths
    (kNN-graph construction over a store's already-normalised vectors, the
    NN-descent entry points re-checking their input) were paying a full-matrix
    copy per call for data that was unit norm all along.  Within the dtype's
    :func:`unit_norm_tolerance` the input is returned unchanged — same object,
    same bits — otherwise it is normalised in float64 and cast back.
    """
    matrix = np.asarray(matrix)
    if matrix.dtype in COMPUTE_DTYPES and matrix.size:
        norms = np.linalg.norm(matrix, axis=1)
        canonical = (np.abs(norms - 1.0) < unit_norm_tolerance(matrix.dtype)) | (
            norms < ZERO_NORM_EPSILON  # zero rows: normalize_rows keeps them
        )
        if bool(canonical.all()):
            return matrix
    normalized = normalize_rows(matrix)
    if matrix.dtype in COMPUTE_DTYPES:
        normalized = ensure_dtype(normalized, matrix.dtype)
    return normalized


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom < _EPSILON:
        return 0.0
    return float(np.dot(a, b) / denom)


def dot_rows(matrix: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Row-wise inner products of ``matrix`` with ``query``, shard-stable.

    ``matrix @ query`` delegates to BLAS ``gemv``, whose internal row
    blocking changes with the row count — scoring a row *slice* can differ
    from the same rows of a full scoring in the last bits.  ``np.einsum``
    contracts each row independently with the same reduction pattern
    regardless of how many rows are present, so

        ``dot_rows(M[a:b], q) == dot_rows(M, q)[a:b]``   (bit for bit)

    which is what lets :class:`~repro.vectorstore.sharded.ShardedVectorStore`
    guarantee bit-identical scores to an unsharded exact store.

    The tradeoff is explicit: einsum does not dispatch to BLAS, so unlike
    gemv it never multithreads and costs a modest single-kernel overhead
    (~15% on the engine benchmark's exact store).  That is the price of
    determinism — and parallelism is recovered *deterministically* by
    raising ``SeeSawConfig.n_shards``, which scores row slices of this same
    kernel on a thread pool instead of relying on BLAS's nondeterministic
    internal threading.
    """
    return np.einsum("ij,j->i", matrix, query)


def pairwise_inner(queries: np.ndarray, database: np.ndarray) -> np.ndarray:
    """Inner products between each query row and each database row."""
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    database = np.asarray(database, dtype=np.float64)
    return queries @ database.T


def random_unit_vectors(
    count: int,
    dim: int,
    seed: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Draw ``count`` unit vectors uniformly from the ``dim``-sphere."""
    rng = ensure_rng(seed)
    raw = rng.standard_normal(size=(count, dim))
    return normalize_rows(raw)


def rotate_towards(
    start: np.ndarray,
    target: np.ndarray,
    angle_radians: float,
) -> np.ndarray:
    """Rotate ``start`` towards ``target`` by ``angle_radians`` on the sphere.

    Used by the synthetic embedding to place a text vector at a controlled
    angular distance (the *alignment deficit*) from a concept direction.
    """
    start = normalize_vector(start)
    target = normalize_vector(target)
    # Component of target orthogonal to start defines the rotation plane.
    orthogonal = target - np.dot(target, start) * start
    orthogonal_norm = float(np.linalg.norm(orthogonal))
    if orthogonal_norm < _EPSILON:
        return start.copy()
    orthogonal = orthogonal / orthogonal_norm
    return normalize_vector(
        np.cos(angle_radians) * start + np.sin(angle_radians) * orthogonal
    )


def angular_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Angle in radians between two vectors."""
    cosine = np.clip(cosine_similarity(a, b), -1.0, 1.0)
    return float(np.arccos(cosine))
