"""Vector-math helpers shared across the embedding, store, and core modules.

The whole system operates on unit-norm vectors whose relevance is an inner
product (equivalently a cosine similarity), exactly as in the paper, so these
helpers centralise normalisation and similarity computations.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng

_EPSILON = 1e-12


def normalize_vector(vector: np.ndarray) -> np.ndarray:
    """Return ``vector`` scaled to unit L2 norm (zero vectors stay zero)."""
    vector = np.asarray(vector, dtype=np.float64)
    norm = float(np.linalg.norm(vector))
    if norm < _EPSILON:
        return np.zeros_like(vector)
    return vector / norm


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix`` with each row scaled to unit L2 norm."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms = np.where(norms < _EPSILON, 1.0, norms)
    return matrix / norms


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom < _EPSILON:
        return 0.0
    return float(np.dot(a, b) / denom)


def dot_rows(matrix: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Row-wise inner products of ``matrix`` with ``query``, shard-stable.

    ``matrix @ query`` delegates to BLAS ``gemv``, whose internal row
    blocking changes with the row count — scoring a row *slice* can differ
    from the same rows of a full scoring in the last bits.  ``np.einsum``
    contracts each row independently with the same reduction pattern
    regardless of how many rows are present, so

        ``dot_rows(M[a:b], q) == dot_rows(M, q)[a:b]``   (bit for bit)

    which is what lets :class:`~repro.vectorstore.sharded.ShardedVectorStore`
    guarantee bit-identical scores to an unsharded exact store.

    The tradeoff is explicit: einsum does not dispatch to BLAS, so unlike
    gemv it never multithreads and costs a modest single-kernel overhead
    (~15% on the engine benchmark's exact store).  That is the price of
    determinism — and parallelism is recovered *deterministically* by
    raising ``SeeSawConfig.n_shards``, which scores row slices of this same
    kernel on a thread pool instead of relying on BLAS's nondeterministic
    internal threading.
    """
    return np.einsum("ij,j->i", matrix, query)


def pairwise_inner(queries: np.ndarray, database: np.ndarray) -> np.ndarray:
    """Inner products between each query row and each database row."""
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    database = np.asarray(database, dtype=np.float64)
    return queries @ database.T


def random_unit_vectors(
    count: int,
    dim: int,
    seed: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Draw ``count`` unit vectors uniformly from the ``dim``-sphere."""
    rng = ensure_rng(seed)
    raw = rng.standard_normal(size=(count, dim))
    return normalize_rows(raw)


def rotate_towards(
    start: np.ndarray,
    target: np.ndarray,
    angle_radians: float,
) -> np.ndarray:
    """Rotate ``start`` towards ``target`` by ``angle_radians`` on the sphere.

    Used by the synthetic embedding to place a text vector at a controlled
    angular distance (the *alignment deficit*) from a concept direction.
    """
    start = normalize_vector(start)
    target = normalize_vector(target)
    # Component of target orthogonal to start defines the rotation plane.
    orthogonal = target - np.dot(target, start) * start
    orthogonal_norm = float(np.linalg.norm(orthogonal))
    if orthogonal_norm < _EPSILON:
        return start.copy()
    orthogonal = orthogonal / orthogonal_norm
    return normalize_vector(
        np.cos(angle_radians) * start + np.sin(angle_radians) * orthogonal
    )


def angular_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Angle in radians between two vectors."""
    cosine = np.clip(cosine_similarity(a, b), -1.0, 1.0)
    return float(np.arccos(cosine))
