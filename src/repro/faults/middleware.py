"""Server-side fault injection: :class:`ChaosMiddleware`.

Sits in the `/v1` middleware pipeline (appended by
:func:`repro.server.app.default_middlewares` when ``SeeSawConfig.faults``
is set) and perturbs requests per the plan's probabilities:

* **latency** — sleeps ``latency_ms`` before letting the request proceed,
  which is what makes deadline propagation observable: a request whose
  budget the injected sleep consumed must come back as the typed 504, not
  as a late success nobody is waiting for;
* **error** — raises :class:`~repro.exceptions.InternalServiceError`, which
  the app encodes as the structured 500 envelope.

The connection-level families (resets, truncated streams, skewed
deadlines) belong to the *client-side* injector
(:class:`repro.faults.client.FaultyClient`) — a middleware answering
through a healthy socket cannot fake a dead one honestly.  When the shared
decider draws one of those kinds here it is treated as no fault, so a
single plan drives both injectors without double-counting probabilities.

Probe routes (``/healthz``, ``/capabilities``, ``/metrics``) are exempt:
the chaos harness reads them to judge the run, and a load balancer's health
checker is not part of the experiment.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.exceptions import InternalServiceError
from repro.faults.inject import KIND_ERROR, FaultDecider
from repro.faults.plan import FaultPlan
from repro.obs import MetricsRegistry, get_registry
from repro.server.middleware import Handler, Request, Response, route_template


class ChaosMiddleware:
    """Injects plan-driven latency and typed 500s into the request path."""

    #: Probe/observability routes chaos never touches.
    EXEMPT_ROUTES = frozenset(
        {
            "/healthz",
            "/capabilities",
            "/metrics",
            "/v1/healthz",
            "/v1/capabilities",
            "/v1/metrics",
        }
    )

    def __init__(
        self,
        plan: FaultPlan,
        registry: "MetricsRegistry | None" = None,
        clock: "Callable[[], float]" = time.monotonic,
        sleep: "Callable[[float], None]" = time.sleep,
    ) -> None:
        self.plan = plan
        self.decider = FaultDecider(plan, clock=clock)
        self._sleep = sleep
        self._registry = registry

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def _count(self, kind: str) -> None:
        self.registry.counter(
            "seesaw_faults_injected_total",
            "Faults injected by the chaos layer, by kind.",
            labels=("kind",),
        ).labels(kind).inc()

    def __call__(self, request: Request, handler: Handler) -> Response:
        if route_template(request.target) in self.EXEMPT_ROUTES:
            return handler(request)
        outcome = self.decider.decide()
        if outcome.latency_seconds > 0.0:
            self._count("latency")
            self._sleep(outcome.latency_seconds)
        if outcome.kind == KIND_ERROR:
            self._count("error")
            raise InternalServiceError(
                f"chaos: injected server fault (opportunity {outcome.index})"
            )
        return handler(request)
