"""The seed-driven decision engine both fault injectors share.

Determinism model: every injection *opportunity* gets a monotonically
increasing index from its decider, and the decision for opportunity ``i`` is
a pure function of ``(plan.seed, i)`` — a private :class:`random.Random`
seeded per opportunity, so the decision stream does not depend on how many
random draws earlier opportunities consumed.  Given the same sequence of
opportunities, two runs inject the same faults; under concurrency the
*assignment* of decisions to requests follows arrival order, which is the
strongest guarantee an open-loop workload admits.

Fault families are checked in a fixed priority order (skew, reset, error,
truncate, then latency) and at most one fires per opportunity — latency can
additionally decorate any of them, since a slow failure is the interesting
case for deadline propagation.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.faults.plan import FaultPlan

#: Injection kinds, in decision priority order.
KIND_SKEW = "skew"
KIND_RESET = "reset"
KIND_ERROR = "error"
KIND_TRUNCATE = "truncate"
KIND_NONE = "none"


@dataclass(frozen=True)
class FaultOutcome:
    """What one opportunity should suffer."""

    index: int
    kind: str
    latency_seconds: float = 0.0

    @property
    def injects(self) -> bool:
        return self.kind != KIND_NONE or self.latency_seconds > 0.0


class FaultDecider:
    """Hands out :class:`FaultOutcome` decisions for a :class:`FaultPlan`.

    The decider is armed at construction (or re-armed with :meth:`arm`):
    the plan's fault window is measured from that instant, so the harness
    can give a run a clean pre-fault baseline and a recovery tail.
    """

    def __init__(
        self,
        plan: FaultPlan,
        clock: "Callable[[], float]" = time.monotonic,
    ) -> None:
        self.plan = plan
        self._clock = clock
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._armed_at = clock()

    def arm(self) -> None:
        """Restart the fault window (and the opportunity counter) from now."""
        with self._lock:
            self._armed_at = self._clock()
            self._counter = itertools.count()

    def in_window(self) -> bool:
        elapsed = self._clock() - self._armed_at
        if elapsed < self.plan.window_start_seconds:
            return False
        stop = self.plan.window_stop_seconds
        return stop is None or elapsed < stop

    def decide(self) -> FaultOutcome:
        """Claim the next opportunity index and decide its fate."""
        with self._lock:
            index = next(self._counter)
        if not self.in_window():
            return FaultOutcome(index=index, kind=KIND_NONE)
        plan = self.plan
        rng = random.Random((plan.seed << 20) ^ index)
        kind = KIND_NONE
        for candidate, probability in (
            (KIND_SKEW, plan.skew_probability),
            (KIND_RESET, plan.reset_probability),
            (KIND_ERROR, plan.error_probability),
            (KIND_TRUNCATE, plan.truncate_probability),
        ):
            if probability > 0.0 and rng.random() < probability:
                kind = candidate
                break
        latency = 0.0
        if plan.latency_probability > 0.0 and rng.random() < plan.latency_probability:
            latency = plan.latency_ms / 1000.0
        return FaultOutcome(index=index, kind=kind, latency_seconds=latency)
