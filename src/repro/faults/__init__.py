"""Fault injection: deterministic chaos for the resilience layer.

The subsystem has three pieces:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, the frozen, JSON-round-
  trippable description of *what* to inject (latency, typed errors,
  connection resets, truncated streams, clock-skewed deadlines), with what
  probability, inside which time window;
* :mod:`repro.faults.inject` — :class:`FaultDecider`, the seed-driven
  decision engine both injectors share (per-opportunity determinism, fault
  windowing);
* :mod:`repro.faults.middleware` — :class:`ChaosMiddleware`, the server-side
  injector (sits in the `/v1` pipeline, gated on ``SeeSawConfig.faults``);
* :mod:`repro.faults.client` — :class:`FaultyClient`, the client-side fault
  transport wrapping any :class:`~repro.server.protocol.SeeSawClientProtocol`.

Every injected fault is a *typed* failure the resilience layer is supposed
to absorb — the chaos traffic scenario's gates assert that nothing else
(raw socket errors, stranded waiters, hung sessions) leaks out.

The injector modules are imported lazily (not re-exported here): the
package root must stay importable from :mod:`repro.config` without pulling
the whole server stack in.
"""

from repro.faults.inject import FaultDecider, FaultOutcome
from repro.faults.plan import FaultPlan

__all__ = ["FaultDecider", "FaultOutcome", "FaultPlan"]
