"""The fault plan: what to inject, how often, inside which window.

A :class:`FaultPlan` is plain frozen data — like the traffic scenarios it
rides in, it JSON-round-trips, so a chaos CI job, a local soak, and a config
file all name the exact same fault workload.  Probabilities are per
*opportunity* (one request through the chaos middleware, one protocol call
through the fault transport); the window bounds when faults fire, so a run
has a clean pre-fault baseline and a post-fault recovery phase the gates
measure against.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class FaultPlan:
    """One fault-injection workload, shared by both injectors.

    The server-side :class:`~repro.faults.middleware.ChaosMiddleware` uses
    ``latency`` and ``error`` (it sits above the router, so resets and
    stream truncation are not its to fake); the client-side
    :class:`~repro.faults.client.FaultyClient` uses all five families.
    """

    seed: int = 0
    latency_ms: float = 0.0
    """Extra latency (milliseconds) an affected call sleeps before running."""
    latency_probability: float = 0.0
    error_probability: float = 0.0
    """Probability of a typed injected failure (the injector raises
    :class:`~repro.exceptions.InternalServiceError` server-side — the
    transient 500 family clients must retry)."""
    reset_probability: float = 0.0
    """Probability the fault transport simulates the connection dying before
    a response arrives (:class:`~repro.exceptions.ConnectionFailedError`)."""
    truncate_probability: float = 0.0
    """Probability a streamed NDJSON response is cut off before its terminal
    ``end`` record (surfaces as the truncation
    :class:`~repro.exceptions.TransportError` the real client raises)."""
    skew_probability: float = 0.0
    """Probability a call is sent with an already-expired deadline (the
    clock-skewed-client workload; the server answers with the typed 504)."""
    window_start_seconds: float = 0.0
    window_stop_seconds: "float | None" = None
    """Faults fire only between ``window_start_seconds`` and
    ``window_stop_seconds`` after the injector is armed; ``None`` keeps the
    window open forever."""

    def __post_init__(self) -> None:
        for name in (
            "latency_probability",
            "error_probability",
            "reset_probability",
            "truncate_probability",
            "skew_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"FaultPlan.{name} must be in [0, 1], got {value}"
                )
        if self.latency_ms < 0:
            raise ConfigurationError(
                f"FaultPlan.latency_ms must be >= 0, got {self.latency_ms}"
            )
        if self.window_start_seconds < 0:
            raise ConfigurationError(
                f"FaultPlan.window_start_seconds must be >= 0, got "
                f"{self.window_start_seconds}"
            )
        if (
            self.window_stop_seconds is not None
            and self.window_stop_seconds <= self.window_start_seconds
        ):
            raise ConfigurationError(
                f"FaultPlan.window_stop_seconds ({self.window_stop_seconds}) "
                f"must exceed window_start_seconds ({self.window_start_seconds})"
            )

    @property
    def any_faults(self) -> bool:
        """True when at least one fault family can fire."""
        return any(
            getattr(self, name) > 0.0
            for name in (
                "latency_probability",
                "error_probability",
                "reset_probability",
                "truncate_probability",
                "skew_probability",
            )
        )

    def to_json(self) -> "dict[str, Any]":
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(payload: "Mapping[str, Any]") -> "FaultPlan":
        try:
            return FaultPlan(**dict(payload))
        except TypeError as exc:
            raise ConfigurationError(f"Malformed fault plan: {exc}") from exc
