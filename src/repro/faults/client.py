"""Client-side fault injection: :class:`FaultyClient`.

Wraps any :class:`~repro.server.protocol.SeeSawClientProtocol` and makes it
misbehave the way a real network does, per the plan's probabilities.  All
five fault families live here (the server-side
:class:`~repro.faults.middleware.ChaosMiddleware` can only honestly fake
latency and 500s):

* **latency** — sleeps before the call, simulating a slow path;
* **error** — raises :class:`~repro.exceptions.InternalServiceError`
  without touching the wrapped client, as if the server's envelope decoded
  to a 500;
* **reset** — raises :class:`~repro.exceptions.ConnectionFailedError`; the
  opportunity index's parity decides ``request_sent``, so the run exercises
  both retry branches (pre-send resets are always retryable, mid-flight
  resets only for idempotent calls);
* **truncate** — for streaming calls, yields a strict prefix of the real
  batch then raises the same "truncated response"
  :class:`~repro.exceptions.TransportError` the HTTP client raises when an
  NDJSON stream stops without its terminal ``end`` record (non-streaming
  calls treat a truncate draw as a reset that happened mid-read);
* **skew** — runs the call under an already-expired
  :func:`~repro.server.deadlines.deadline_scope`, modelling a clock-skewed
  client shipping a dead budget: the layer below (HTTP header or in-process
  contextvar) must surface the typed
  :class:`~repro.exceptions.DeadlineExceededError`, never do the work.

Faults are injected *around* the wrapped client, so a retry policy wired
into that client sees and absorbs them exactly like real failures.  Probe
surfaces (``capabilities``/``healthz``/``metrics``) pass through untouched
— the harness reads those to judge the run.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, Sequence, TypeVar

from repro.exceptions import (
    ConnectionFailedError,
    InternalServiceError,
    ReproError,
    TransportError,
)
from repro.faults.inject import (
    KIND_ERROR,
    KIND_RESET,
    KIND_SKEW,
    KIND_TRUNCATE,
    FaultDecider,
    FaultOutcome,
)
from repro.faults.plan import FaultPlan
from repro.obs import MetricsRegistry, get_registry
from repro.server.api import (
    FeedbackRequest,
    NextResultsResponse,
    ResultItem,
    SessionInfo,
    SessionPage,
    StartSessionRequest,
)
from repro.server.deadlines import Deadline, deadline_scope
from repro.server.protocol import SeeSawClientProtocol

_T = TypeVar("_T")


class FaultyClient(SeeSawClientProtocol):
    """A protocol client whose transport suffers the plan's faults."""

    def __init__(
        self,
        inner: SeeSawClientProtocol,
        plan: FaultPlan,
        clock: "Callable[[], float]" = time.monotonic,
        sleep: "Callable[[float], None]" = time.sleep,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.decider = FaultDecider(plan, clock=clock)
        self._sleep = sleep
        self._registry = registry

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def arm(self) -> None:
        """Restart the plan's fault window from now (see :meth:`FaultDecider.arm`)."""
        self.decider.arm()

    def in_window(self) -> bool:
        return self.decider.in_window()

    # ------------------------------------------------------------------
    # injection plumbing
    # ------------------------------------------------------------------
    def _count(self, kind: str) -> None:
        self.registry.counter(
            "seesaw_faults_injected_total",
            "Faults injected by the chaos layer, by kind.",
            labels=("kind",),
        ).labels(kind).inc()

    def _raise_for(self, outcome: FaultOutcome) -> None:
        """Raise the typed failure for a non-truncate fault kind."""
        if outcome.kind == KIND_ERROR:
            self._count("error")
            raise InternalServiceError(
                f"chaos: injected client-observed 500 (opportunity {outcome.index})"
            )
        if outcome.kind == KIND_RESET:
            self._count("reset")
            raise ConnectionFailedError(
                f"chaos: injected connection reset (opportunity {outcome.index})",
                request_sent=outcome.index % 2 == 1,
            )

    def _call(self, fn: "Callable[[], _T]") -> _T:
        outcome = self.decider.decide()
        if outcome.latency_seconds > 0.0:
            self._count("latency")
            self._sleep(outcome.latency_seconds)
        if outcome.kind == KIND_SKEW:
            # A zero budget is the skewed-clock wire shape: the header (or
            # contextvar) arrives already expired and the layer below must
            # answer with the typed 504.
            self._count("skew")
            with deadline_scope(Deadline(0.0)):
                return fn()
        if outcome.kind == KIND_TRUNCATE:
            # No stream to cut short on a unary call: the closest honest
            # failure is a connection that died mid-read of the response.
            self._count("truncate")
            raise ConnectionFailedError(
                f"chaos: connection lost mid-response (opportunity {outcome.index})",
                request_sent=True,
            )
        self._raise_for(outcome)
        return fn()

    # ------------------------------------------------------------------
    # probe surfaces: never perturbed
    # ------------------------------------------------------------------
    def capabilities(self) -> "dict[str, Any]":
        return self.inner.capabilities()

    def healthz(self) -> "dict[str, Any]":
        return self.inner.healthz()

    def metrics_json(self) -> "dict[str, Any]":
        return self.inner.metrics_json()

    def metrics_text(self) -> str:
        return self.inner.metrics_text()

    # ------------------------------------------------------------------
    # the faulted surface
    # ------------------------------------------------------------------
    def start_session(self, request: StartSessionRequest) -> SessionInfo:
        return self._call(lambda: self.inner.start_session(request))

    def session_info(self, session_id: str) -> SessionInfo:
        return self._call(lambda: self.inner.session_info(session_id))

    def list_sessions(
        self, cursor: "str | None" = None, limit: "int | None" = None
    ) -> SessionPage:
        return self._call(
            lambda: self.inner.list_sessions(cursor=cursor, limit=limit)
        )

    def close_session(self, session_id: str) -> None:
        self._call(lambda: self.inner.close_session(session_id))

    def next_results(
        self, session_id: str, count: "int | None" = None
    ) -> NextResultsResponse:
        return self._call(lambda: self.inner.next_results(session_id, count))

    def stream_next_results(
        self, session_id: str, count: "int | None" = None
    ) -> "Iterator[ResultItem]":
        outcome = self.decider.decide()
        if outcome.latency_seconds > 0.0:
            self._count("latency")
            self._sleep(outcome.latency_seconds)
        self._raise_for(outcome)
        if outcome.kind == KIND_SKEW:
            self._count("skew")
            with deadline_scope(Deadline(0.0)):
                # Materialize inside the scope so the typed 504 raises here,
                # not lazily after the scope closed.
                yield from list(self.inner.stream_next_results(session_id, count))
            return
        if outcome.kind == KIND_TRUNCATE:
            self._count("truncate")
            items = list(self.inner.stream_next_results(session_id, count))
            yield from items[: max(0, len(items) - 1)]
            raise TransportError(
                "NDJSON stream ended without the terminal 'end' record "
                "(truncated response)"
            )
        yield from self.inner.stream_next_results(session_id, count)

    def batch_next(
        self, requests: "Sequence[tuple[str, int | None]]"
    ) -> "list[NextResultsResponse | ReproError]":
        return self._call(lambda: self.inner.batch_next(requests))

    def give_feedback(
        self, request: FeedbackRequest, idempotency_key: "str | None" = None
    ) -> SessionInfo:
        return self._call(
            lambda: self.inner.give_feedback(request, idempotency_key=idempotency_key)
        )

    # -- live datasets (faulted like any other mutating surface) --------
    def list_datasets(self) -> "list[dict[str, Any]]":
        return self._call(self.inner.list_datasets)

    def describe_dataset(self, name: str) -> "dict[str, Any]":
        return self._call(lambda: self.inner.describe_dataset(name))

    def upsert_images(
        self, name: str, images: "Sequence[Any]"
    ) -> "dict[str, Any]":
        return self._call(lambda: self.inner.upsert_images(name, images))

    def delete_images(
        self, name: str, image_ids: "Sequence[int]"
    ) -> "dict[str, Any]":
        return self._call(lambda: self.inner.delete_images(name, image_ids))

    def merge_dataset(self, name: str) -> "dict[str, Any]":
        return self._call(lambda: self.inner.merge_dataset(name))

    def close(self) -> None:
        self.inner.close()
