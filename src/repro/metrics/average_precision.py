"""Average Precision as the paper defines it (§5.1).

The benchmark task is to find 10 relevant images within 60 inspected images.
AP is the mean of the precision values measured at each relevant result, with
``R = min(10, number of relevant images in the dataset)`` terms; relevant
results that were never reached contribute a precision of 0.  AP is 1 when
the first ten shown images are all relevant and 0 when none are found within
the 60-image budget.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import BenchmarkError


def precision_at_k(relevance: Sequence[bool], k: int) -> float:
    """Precision over the first ``k`` results."""
    if k < 1:
        raise BenchmarkError("k must be >= 1")
    head = list(relevance)[:k]
    if not head:
        return 0.0
    return sum(1.0 for flag in head if flag) / float(k)


def average_precision_at_cutoff(
    relevance: Sequence[bool],
    total_relevant: int,
    target_results: int = 10,
    max_images: int = 60,
) -> float:
    """Paper-style AP for one ordered sequence of shown results.

    Parameters
    ----------
    relevance:
        Relevance judgements of the shown images, in display order.
    total_relevant:
        Number of relevant images present in the whole dataset (``R`` is the
        minimum of this and ``target_results``).
    target_results:
        The task's target number of results (10 in the paper).
    max_images:
        The inspection budget (60 in the paper); results past it are ignored.
    """
    if total_relevant < 0:
        raise BenchmarkError("total_relevant must be >= 0")
    if target_results < 1 or max_images < 1:
        raise BenchmarkError("target_results and max_images must be >= 1")
    expected = min(total_relevant, target_results)
    if expected == 0:
        return 0.0
    precisions: list[float] = []
    found = 0
    for position, flag in enumerate(list(relevance)[:max_images], start=1):
        if flag:
            found += 1
            precisions.append(found / position)
            if found >= target_results:
                break
    while len(precisions) < expected:
        precisions.append(0.0)
    return float(np.mean(precisions[:expected]))


def average_precision_full(scores: np.ndarray, labels: np.ndarray) -> float:
    """Classic (uncut) Average Precision of a scored ranking.

    Used for the ideal-vs-initial query analysis (Figure 4), where the paper
    ranks the entire dataset rather than running the interactive task.
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if scores.shape != labels.shape:
        raise BenchmarkError("scores and labels must have the same length")
    relevant_total = float(labels.sum())
    if relevant_total == 0:
        return 0.0
    order = np.argsort(-scores)
    ordered = labels[order]
    cumulative_hits = np.cumsum(ordered)
    ranks = np.arange(1, ordered.size + 1)
    precisions = cumulative_hits / ranks
    return float(np.sum(precisions * ordered) / relevant_total)


def session_average_precision(
    relevance: Iterable[bool],
    total_relevant: int,
    target_results: int = 10,
    max_images: int = 60,
) -> float:
    """Convenience wrapper matching :meth:`SearchSession.relevance_sequence`."""
    return average_precision_at_cutoff(
        list(relevance),
        total_relevant=total_relevant,
        target_results=target_results,
        max_images=max_images,
    )
