"""Aggregations over per-query AP values: mAP, ΔAP, CDFs, the hard subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import BenchmarkError

HARD_SUBSET_THRESHOLD = 0.5
"""Queries whose zero-shot AP falls below this value form the "hard subset"
the paper reports separately (Figure 1, Table 2, Table 3)."""


def mean_average_precision(values: Sequence[float]) -> float:
    """Mean AP over queries (NaNs, from unevaluable queries, are dropped)."""
    array = np.asarray(list(values), dtype=np.float64)
    array = array[np.isfinite(array)]
    if array.size == 0:
        return float("nan")
    return float(array.mean())


def delta_ap(
    method_ap: Mapping[str, float], baseline_ap: Mapping[str, float]
) -> "dict[str, float]":
    """Per-query AP change of a method relative to a baseline (ΔAP, Figure 5)."""
    missing = set(method_ap) - set(baseline_ap)
    if missing:
        raise BenchmarkError(f"baseline is missing queries: {sorted(missing)[:5]}")
    return {
        query: float(method_ap[query] - baseline_ap[query]) for query in method_ap
    }


def hard_subset(
    baseline_ap: Mapping[str, float], threshold: float = HARD_SUBSET_THRESHOLD
) -> "list[str]":
    """Queries whose baseline (zero-shot) AP is below ``threshold``."""
    return sorted(query for query, value in baseline_ap.items() if value < threshold)


def cumulative_distribution(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a set of values: returns (sorted values, fractions)."""
    array = np.asarray(list(values), dtype=np.float64)
    array = array[np.isfinite(array)]
    if array.size == 0:
        return np.zeros(0), np.zeros(0)
    ordered = np.sort(array)
    fractions = np.arange(1, ordered.size + 1, dtype=np.float64) / ordered.size
    return ordered, fractions


def quantile_interval(
    values: Sequence[float], low: float = 0.1, high: float = 0.9
) -> tuple[float, float]:
    """The [low, high] quantile interval (the grey band in Figure 5)."""
    array = np.asarray(list(values), dtype=np.float64)
    array = array[np.isfinite(array)]
    if array.size == 0:
        return (float("nan"), float("nan"))
    return (float(np.quantile(array, low)), float(np.quantile(array, high)))


@dataclass
class ApDistribution:
    """Summary of a per-query AP distribution for one dataset and method."""

    dataset: str
    method: str
    per_query: "dict[str, float]"

    @property
    def mean(self) -> float:
        """Mean AP over all queries."""
        return mean_average_precision(list(self.per_query.values()))

    @property
    def median(self) -> float:
        """Median AP over all queries."""
        values = np.asarray(list(self.per_query.values()), dtype=np.float64)
        values = values[np.isfinite(values)]
        return float(np.median(values)) if values.size else float("nan")

    def fraction_below(self, threshold: float = HARD_SUBSET_THRESHOLD) -> float:
        """Fraction of queries with AP below ``threshold`` (Figure 1 annotation)."""
        values = np.asarray(list(self.per_query.values()), dtype=np.float64)
        values = values[np.isfinite(values)]
        if values.size == 0:
            return float("nan")
        return float(np.mean(values < threshold))

    def count_below(self, threshold: float = HARD_SUBSET_THRESHOLD) -> int:
        """Number of queries with AP below ``threshold``."""
        values = np.asarray(list(self.per_query.values()), dtype=np.float64)
        return int(np.sum(values[np.isfinite(values)] < threshold))

    def restricted_to(self, queries: Sequence[str]) -> "ApDistribution":
        """The same distribution restricted to a subset of queries."""
        wanted = set(queries)
        return ApDistribution(
            dataset=self.dataset,
            method=self.method,
            per_query={q: v for q, v in self.per_query.items() if q in wanted},
        )
