"""Evaluation metrics: the paper's Average Precision and its aggregates."""

from repro.metrics.aggregates import (
    ApDistribution,
    cumulative_distribution,
    delta_ap,
    hard_subset,
    mean_average_precision,
    quantile_interval,
)
from repro.metrics.average_precision import (
    average_precision_at_cutoff,
    average_precision_full,
    precision_at_k,
    session_average_precision,
)

__all__ = [
    "average_precision_at_cutoff",
    "average_precision_full",
    "precision_at_k",
    "session_average_precision",
    "mean_average_precision",
    "delta_ap",
    "hard_subset",
    "cumulative_distribution",
    "quantile_interval",
    "ApDistribution",
]
