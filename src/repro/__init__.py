"""Reproduction of "SeeSaw: Interactive Ad-hoc Search Over Image Databases".

The public API is re-exported here.  The most common entry points are:

* :func:`repro.data.load_dataset` — generate one of the four synthetic
  evaluation datasets (COCO / LVIS / ObjectNet / BDD profiles).
* :class:`repro.embedding.SyntheticClip` — the CLIP stand-in embedding.
* :class:`repro.core.SeeSawIndex` — preprocessing: multiscale embedding,
  vector store, kNN graph, and the DB-alignment matrix for a dataset.
* :class:`repro.core.SeeSawQueryAligner` — the query-alignment algorithm
  (CLIP alignment + DB alignment, Equation 5).
* :class:`repro.core.SearchSession` — the interactive loop of Listing 1.
* :mod:`repro.bench` — the benchmark harness regenerating every table and
  figure of the paper's evaluation.
"""

from repro.config import (
    PAPER_DEFAULT_CONFIG,
    BenchmarkTaskConfig,
    KnnGraphConfig,
    LossWeights,
    MultiscaleConfig,
    OptimizerConfig,
    SeeSawConfig,
)
from repro.version import __version__

__all__ = [
    "__version__",
    "SeeSawConfig",
    "LossWeights",
    "KnnGraphConfig",
    "MultiscaleConfig",
    "OptimizerConfig",
    "BenchmarkTaskConfig",
    "PAPER_DEFAULT_CONFIG",
]
